"""Multi-cycle patching: the attack surface over a year of monthly cycles.

The paper analyses a single patch cycle and defers "monthly patch of 3
months" to future work.  This example runs twelve consecutive cycles
with a synthetic disclosure feed and compares the critical-only policy
against patch-everything: criticals-only keeps up with the severe
vulnerabilities but accumulates a medium-severity backlog that steadily
inflates NoEV and ASP.

Usage::

    python examples/multi_cycle_patching.py
"""

from __future__ import annotations

from repro.enterprise import paper_case_study, paper_designs
from repro.patching import (
    CriticalVulnerabilityPolicy,
    PatchAllPolicy,
    SyntheticDisclosureFeed,
    simulate_patch_lifecycle,
)

CYCLES = 12
RATE = 1.5  # expected new disclosures per product per month
SEED = 2017


def run(policy, label: str) -> None:
    case_study = paper_case_study()
    design = paper_designs()[0]  # 1 DNS + 1 WEB + 1 APP + 1 DB
    feed = SyntheticDisclosureFeed(rate_per_product=RATE, seed=SEED)
    outcomes = simulate_patch_lifecycle(
        case_study, design, policy, cycles=CYCLES, feed=feed
    )
    print(f"== {label} ==")
    print("cycle  new  patched  backlog   NoEV before->after   ASP after")
    for outcome in outcomes:
        print(
            f"{outcome.cycle:5d}  {outcome.disclosed:3d}  {outcome.patched:7d}"
            f"  {outcome.backlog:7d}"
            f"   {outcome.before.number_of_exploitable_vulnerabilities:4d}"
            f" -> {outcome.after.number_of_exploitable_vulnerabilities:4d}"
            f"        {outcome.after.attack_success_probability:8.4f}"
        )
    final = outcomes[-1]
    print(
        f"after {CYCLES} cycles: backlog {final.backlog} records,"
        f" NoEV {final.after.number_of_exploitable_vulnerabilities},"
        f" ASP {final.after.attack_success_probability:.4f}"
    )
    print()


def main() -> None:
    run(CriticalVulnerabilityPolicy(), "critical-only policy (the paper's)")
    run(PatchAllPolicy(), "patch-everything policy")
    print("the critical-only policy controls the worst exploits but lets the")
    print("medium-severity surface grow without bound; complete patching")
    print("holds the surface at zero at the cost of longer patch downtime")
    print("each cycle (cf. examples/patch_schedule_study.py).")


if __name__ == "__main__":
    main()

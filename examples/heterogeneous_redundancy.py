"""Heterogeneous redundancy: diverse software stacks within a tier.

The paper evaluates identical replicas and defers heterogeneous
redundancy to future work.  This example compares three web-tier
strategies on the paper's network — single Apache, dual Apache
(the paper's third design), and Apache + nginx diversity — plus a
diverse database tier, reporting the security metrics and COA for each.

It then shows the unified ``DesignSpec`` pipeline: the sweep engine
evaluates the whole diversity design space (every variant-count
assignment over the paper's variant pools) next to the homogeneous
replica-count space, and ranks the *mixed* population on one
(ASP, COA) Pareto front — the ``repro sweep --variants`` CLI does the
same from the command line.

Usage::

    python examples/heterogeneous_redundancy.py
"""

from __future__ import annotations

from repro.enterprise import (
    HeterogeneousDesign,
    build_heterogeneous_harm,
    heterogeneous_availability_model,
    paper_case_study,
    paper_variant_space,
    paper_variants,
)
from repro.evaluation import SweepEngine, enumerate_designs, pareto_front
from repro.evaluation.sweep import enumerate_heterogeneous_designs
from repro.harm import evaluate_security
from repro.patching import CriticalVulnerabilityPolicy
from repro.vulnerability.diversity import diversity_database


def main() -> None:
    case_study = paper_case_study()
    database = diversity_database()
    policy = CriticalVulnerabilityPolicy()
    variants = paper_variants()

    def base_tiers():
        return {
            "dns": {variants["dns_ms"]: 1},
            "app": {variants["app_weblogic"]: 1},
            "db": {variants["db_mysql"]: 1},
        }

    designs = {
        "single Apache web": HeterogeneousDesign(
            {**base_tiers(), "web": {variants["web_apache"]: 1}}
        ),
        "dual Apache web": HeterogeneousDesign(
            {**base_tiers(), "web": {variants["web_apache"]: 2}}
        ),
        "Apache + nginx web": HeterogeneousDesign(
            {**base_tiers(), "web": {variants["web_apache"]: 1,
                                     variants["web_nginx"]: 1}}
        ),
        "diverse web + diverse db": HeterogeneousDesign(
            {
                "dns": {variants["dns_ms"]: 1},
                "app": {variants["app_weblogic"]: 1},
                "web": {variants["web_apache"]: 1, variants["web_nginx"]: 1},
                "db": {variants["db_mysql"]: 1, variants["db_postgres"]: 1},
            }
        ),
    }

    print("after-patch comparison (critical-vulnerability policy):")
    print(
        f"{'strategy':<26} {'ASP':>7} {'NoEV':>5} {'NoAP':>5} {'uCVE':>5}"
        f" {'COA':>9} {'sysA':>9}"
    )
    for name, design in designs.items():
        harm = build_heterogeneous_harm(case_study, design, database, policy)
        metrics = evaluate_security(harm)
        model = heterogeneous_availability_model(
            case_study, design, database, policy
        )
        print(
            f"{name:<26}"
            f" {metrics.attack_success_probability:7.4f}"
            f" {metrics.number_of_exploitable_vulnerabilities:5d}"
            f" {metrics.number_of_attack_paths:5d}"
            f" {metrics.unique_cve_count:5d}"
            f" {model.capacity_oriented_availability():9.6f}"
            f" {model.system_availability():9.6f}"
        )

    print()
    print("observations:")
    print(" - any second web replica (identical or diverse) lifts COA and")
    print("   system availability by removing the web single point of failure;")
    print(" - identical replicas add attack paths using the *same* exploits,")
    print("   while diverse replicas force the attacker to hold distinct")
    print("   exploits per stack (see the unique-CVE column);")
    print(" - diversity is not free: each extra stack contributes its own")
    print("   exploitable vulnerabilities to the attack surface.")

    # -- the unified sweep: replica counts AND stacks on one front --------
    roles = ["dns", "web", "app", "db"]
    engine = SweepEngine(database=database)
    mixed = list(enumerate_designs(roles, max_replicas=2))
    mixed += list(
        enumerate_heterogeneous_designs(
            roles, paper_variant_space(), max_replicas=2
        )
    )
    evaluations = engine.evaluate(mixed)
    front = pareto_front(evaluations)
    print()
    print(
        f"unified sweep: {len(evaluations)} designs "
        f"({sum(isinstance(e.design, HeterogeneousDesign) for e in evaluations)}"
        " heterogeneous), Pareto front on (ASP down, COA up):"
    )
    for evaluation in front:
        after = evaluation.after
        print(
            f"  ASP={after.security.attack_success_probability:.4f}"
            f" COA={after.coa:.6f}  {evaluation.label}"
        )
    print("(the CLI equivalent: python -m repro sweep --variants --json)")


if __name__ == "__main__":
    main()

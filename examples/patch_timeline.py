"""Patch-timeline study: how designs ride out a patch campaign.

Generalises the paper's before/after-patch snapshots (Figs. 6-7) into
time-resolved curves for the five paper designs plus two heterogeneous
(software-diversity) variants:

1. availability-vs-time: the expected COA from the moment the campaign
   starts (all servers up, all unpatched),
2. campaign progress: probability the whole campaign has completed and
   the expected fraction of servers still unpatched,
3. security exposure: the ASP curve decaying from its before-patch to
   its after-patch value as servers get patched,
4. the time-to-patch-completion ranking of all seven designs.

Every design's curves come from one batched uniformisation pass
(`BatchTransientSolver`), fanned out through `evaluate_timelines`.

Usage::

    python examples/patch_timeline.py
"""

from __future__ import annotations

from repro.enterprise import HeterogeneousDesign, paper_designs, paper_variant_space
from repro.evaluation import default_time_grid, evaluate_timelines
from repro.vulnerability.diversity import diversity_database


def spark(values, lo, hi, width=40) -> str:
    """A one-line ASCII bar for a 0..1-ish value range."""
    blocks = " .:-=+*#%@"
    span = max(hi - lo, 1e-12)
    return "".join(
        blocks[min(int((value - lo) / span * (len(blocks) - 1)), len(blocks) - 1)]
        for value in values
    )


def main() -> None:
    space = paper_variant_space()
    diverse_web = HeterogeneousDesign(
        {
            "dns": {space["dns"][0]: 1},
            "web": {space["web"][0]: 1, space["web"][1]: 1},
            "app": {space["app"][0]: 1},
            "db": {space["db"][0]: 1},
        }
    )
    diverse_db = HeterogeneousDesign(
        {
            "dns": {space["dns"][0]: 1},
            "web": {space["web"][0]: 1},
            "app": {space["app"][0]: 1},
            "db": {space["db"][0]: 1, space["db"][1]: 1},
        }
    )
    designs = [*paper_designs(), diverse_web, diverse_db]
    times = default_time_grid(2160.0, 37)  # three monthly cycles, 60 h steps
    timelines = evaluate_timelines(designs, times, database=diversity_database())

    print("== COA during the patch campaign (0 .. 2160 h, 60 h per column) ==")
    lo = min(timeline.min_coa for timeline in timelines)
    for timeline in timelines:
        print(f"  {timeline.label:<52} |{spark(timeline.coa, lo, 1.0)}|")
    print(f"  (darker = closer to 1.0; scale {lo:.6f} .. 1.0)")

    print("\n== campaign progress: P(all servers patched by t) ==")
    for timeline in timelines:
        print(
            f"  {timeline.label:<52} |{spark(timeline.completion_probability, 0.0, 1.0)}|"
        )

    print("\n== security exposure: ASP decaying toward the after-patch value ==")
    for timeline in timelines:
        curve = timeline.security_curve("ASP")
        print(f"  {timeline.label:<52} |{spark(curve, 0.0, max(curve))}|")

    print("\n== time to patch completion ==")
    print(f"  {'design':<52} {'servers':>7} {'MTTPC (h)':>10} {'min COA':>9}")
    for timeline in sorted(timelines, key=lambda t: t.mean_time_to_completion):
        print(
            f"  {timeline.label:<52} {timeline.design.total_servers:>7} "
            f"{timeline.mean_time_to_completion:>10.1f} {timeline.min_coa:>9.6f}"
        )
    print(
        "\nEvery extra replica lengthens the campaign (one more patch clock "
        "must fire) while raising the COA floor — the timeline view shows "
        "both sides of the redundancy trade the paper's steady-state "
        "snapshots can only hint at."
    )


if __name__ == "__main__":
    main()

"""Quickstart: score one redundancy design on security and availability.

Runs the full pipeline of the paper on a single design choice —
build the HARM, patch the critical vulnerabilities, solve the
availability model — and prints the before/after snapshot.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.enterprise import example_network_design
from repro.evaluation import evaluate_design


def main() -> None:
    design = example_network_design()  # 1 DNS + 2 WEB + 2 APP + 1 DB
    evaluation = evaluate_design(design)

    print(f"design: {evaluation.label}")
    print(f"servers deployed: {design.total_servers}")
    print()
    print("security metrics (before -> after monthly critical patch):")
    before = evaluation.before.security.as_dict()
    after = evaluation.after.security.as_dict()
    for metric in ("AIM", "ASP", "NoEV", "NoAP", "NoEP"):
        b, a = before[metric], after[metric]
        if isinstance(b, float):
            print(f"  {metric:<5} {b:8.3f} -> {a:8.3f}")
        else:
            print(f"  {metric:<5} {b:8d} -> {a:8d}")
    print()
    print(f"capacity oriented availability: {evaluation.after.coa:.6f}")
    print("(the paper reports ~0.99707 for this design)")


if __name__ == "__main__":
    main()

"""Span-trace a process-pool sweep and inspect the merged telemetry.

Runs one design-space sweep through the process executor with tracing
enabled, writes the merged Chrome trace (parent engine spans plus the
worker-side solver spans shipped back with each chunk) and prints the
registry counters the sweep accrued — explorations, steady solves by
path, cache lookups by tier.

Open the trace file in https://ui.perfetto.dev (or chrome://tracing):
each worker process gets its own ``repro-worker-<pid>`` track.

Usage::

    python examples/trace_sweep.py [trace.json]
"""

from __future__ import annotations

import sys

from repro.enterprise import paper_case_study
from repro.evaluation import SweepEngine, enumerate_designs
from repro.observability import REGISTRY, tracing, write_chrome_trace
from repro.patching import CriticalVulnerabilityPolicy


def main() -> None:
    trace_path = sys.argv[1] if len(sys.argv) > 1 else "sweep-trace.json"
    designs = list(
        enumerate_designs(["dns", "web", "app"], max_replicas=2)
    )
    print(f"sweeping {len(designs)} designs on the process executor ...")

    tracing.enable()
    tracing.drain()  # start from an empty trace buffer
    before = REGISTRY.state()
    try:
        engine = SweepEngine(
            case_study=paper_case_study(),
            policy=CriticalVulnerabilityPolicy(),
            executor="process",
            max_workers=2,
        )
        evaluations = engine.evaluate(designs)
    finally:
        count = write_chrome_trace(trace_path)
        tracing.disable()
    print(f"evaluated {len(evaluations)} designs; "
          f"wrote {count} span(s) to {trace_path}")

    print("\ncounters accrued by this sweep (workers merged in):")
    for (name, labels), entry in sorted(REGISTRY.delta_since(before).items()):
        if entry["kind"] != "counter":
            continue
        rendered = ",".join(f"{k}={v}" for k, v in labels)
        suffix = f"{{{rendered}}}" if rendered else ""
        print(f"  {name}{suffix} = {entry['value']:g}")


if __name__ == "__main__":
    main()

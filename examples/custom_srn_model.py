"""Using the SRN engine directly: a software-rejuvenation model.

The engine behind the paper's availability analysis is general-purpose.
This example builds a classic two-stage software-aging model — healthy
-> degraded -> failed, with periodic rejuvenation racing the aging
process — and compares steady-state availability with and without
rejuvenation, cross-checking the analytic answer with the discrete-event
simulator.

Usage::

    python examples/custom_srn_model.py
"""

from __future__ import annotations

from repro.srn import StochasticRewardNet, simulate, solve

HOURS = 1.0


def build_rejuvenation_net(with_rejuvenation: bool) -> StochasticRewardNet:
    """Aging: healthy --0.01/h--> degraded --0.05/h--> failed --repair-->
    healthy.  Rejuvenation: a weekly clock restarts a *degraded* process
    in 6 minutes (a tenth of the 1-hour failure repair)."""
    net = StochasticRewardNet("rejuvenation")
    net.add_place("healthy", tokens=1)
    net.add_place("degraded")
    net.add_place("failed")
    net.add_timed_transition("age", rate=0.01)
    net.add_arc("healthy", "age")
    net.add_arc("age", "degraded")
    net.add_timed_transition("crash", rate=0.05)
    net.add_arc("degraded", "crash")
    net.add_arc("crash", "failed")
    net.add_timed_transition("repair", rate=1.0)
    net.add_arc("failed", "repair")
    net.add_arc("repair", "healthy")

    if with_rejuvenation:
        net.add_place("clock", tokens=1)
        net.add_place("due")
        net.add_timed_transition("tick", rate=1.0 / (7 * 24 * HOURS))
        net.add_arc("clock", "tick")
        net.add_arc("tick", "due")
        # rejuvenate only when degraded; reset the clock either way
        net.add_timed_transition(
            "rejuvenate",
            rate=10.0,
            guard=lambda m: m["degraded"] == 1,
        )
        net.add_arc("due", "rejuvenate")
        net.add_arc("degraded", "rejuvenate")
        net.add_arc("rejuvenate", "healthy")
        net.add_arc("rejuvenate", "clock")
        # if the process is healthy when the clock fires, skip this cycle
        net.add_immediate_transition(
            "skip", guard=lambda m: m["degraded"] == 0 and m["failed"] == 0
        )
        net.add_arc("due", "skip")
        net.add_arc("skip", "clock")
        # a failed process is repaired anyway; rearm the clock
        net.add_immediate_transition(
            "rearm", guard=lambda m: m["failed"] == 1
        )
        net.add_arc("due", "rearm")
        net.add_arc("rearm", "clock")
    return net


def uptime(net: StochasticRewardNet) -> float:
    """P(process not failed) at steady state."""
    return solve(net).probability_of(lambda m: m["failed"] == 0)


def main() -> None:
    plain = build_rejuvenation_net(with_rejuvenation=False)
    rejuvenated = build_rejuvenation_net(with_rejuvenation=True)

    a_plain = uptime(plain)
    a_rejuvenated = uptime(rejuvenated)
    print(f"availability without rejuvenation: {a_plain:.6f}")
    print(f"availability with    rejuvenation: {a_rejuvenated:.6f}")
    print(f"downtime reduction: {(1 - a_plain) / (1 - a_rejuvenated):.2f}x")

    solution = solve(rejuvenated)
    print(
        f"\nstate space: {solution.graph.number_of_states} tangible markings,"
        f" {solution.graph.vanishing_count} vanishing eliminated"
    )

    result = simulate(
        rejuvenated,
        lambda m: float(m["failed"] == 0),
        horizon=500_000.0,
        seed=42,
    )
    low, high = result.confidence_interval
    print(
        f"simulation cross-check: {result.time_averaged_reward:.6f}"
        f" (95% CI [{low:.6f}, {high:.6f}])"
    )
    assert low - 1e-4 <= a_rejuvenated <= high + 1e-4, "simulation disagrees"


if __name__ == "__main__":
    main()

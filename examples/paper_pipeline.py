"""Full paper reproduction: every table and figure from one script.

Walks the three phases of the paper's approach — data input, model
construction, evaluation — over the five redundancy designs and prints
Table I, Table II, Table V, the Table VI COA, the Fig. 6 scatter (ASCII),
the Fig. 7 radar values, and the Eq. (3)/(4) design selections.

Usage::

    python examples/paper_pipeline.py
"""

from __future__ import annotations

from repro.enterprise import (
    example_network_design,
    paper_case_study,
    paper_designs,
)
from repro.evaluation import (
    AvailabilityEvaluator,
    SecurityEvaluator,
    evaluate_designs,
    satisfying_designs,
)
from repro.evaluation.charts import (
    radar_data,
    render_radar_table,
    render_scatter,
    scatter_data,
)
from repro.evaluation.report import (
    aggregated_rates_table,
    design_comparison_table,
    security_metrics_table,
    vulnerability_table,
)
from repro.evaluation.requirements import (
    PAPER_REGION_1_MULTI_METRIC,
    PAPER_REGION_1_TWO_METRIC,
    PAPER_REGION_2_MULTI_METRIC,
    PAPER_REGION_2_TWO_METRIC,
)
from repro.patching import CriticalVulnerabilityPolicy


def heading(text: str) -> None:
    print()
    print("=" * 72)
    print(text)
    print("=" * 72)


def main() -> None:
    # Phase 1: data input -------------------------------------------------
    case_study = paper_case_study()
    policy = CriticalVulnerabilityPolicy()
    example = example_network_design()

    heading("Phase 1 - inputs (Table I: vulnerability information)")
    print(vulnerability_table(case_study))
    print(f"\nattacker model: {case_study.attacker.describe()}")
    print(f"patch schedule: {case_study.schedule}")

    # Phase 2 + 3: security model ------------------------------------------
    heading("Table II - security metrics of the example network")
    security = SecurityEvaluator(case_study)
    print(
        security_metrics_table(
            security.before_patch(example), security.after_patch(example, policy)
        )
    )
    print("(paper: AIM 52.2->42.2, NoAP 8->4, NoEP 3->2; see EXPERIMENTS.md")
    print(" for the documented NoEV/ASP deviations)")

    # Phase 2 + 3: availability model ----------------------------------------
    heading("Table V - aggregated patch/recovery rates (Eqs. 1-2)")
    availability = AvailabilityEvaluator(case_study, policy)
    print(aggregated_rates_table(availability.aggregates_for(example)))

    heading("Table VI - capacity oriented availability")
    coa = availability.coa(example)
    print(f"COA({example.label}) = {coa:.6f}   (paper ~0.99707)")

    # Section IV: the five designs -----------------------------------------
    heading("Section IV - the five redundancy designs, after patch")
    evaluations = evaluate_designs(
        paper_designs(), case_study=case_study, policy=policy
    )
    print(design_comparison_table(evaluations, after_patch=True))

    heading("Fig. 6b - ASP vs COA after patch (ASCII scatter)")
    print(render_scatter(scatter_data(evaluations, after_patch=True)))

    heading("Fig. 7 - radar values")
    print("before patch:")
    print(render_radar_table(radar_data(evaluations, after_patch=False)))
    print("\nafter patch:")
    print(render_radar_table(radar_data(evaluations, after_patch=True)))

    heading("Eq. (3) / Eq. (4) - design selections")
    for name, region in (
        ("Eq.3 region 1 (phi=0.2, psi=0.9962)", PAPER_REGION_1_TWO_METRIC),
        ("Eq.3 region 2 (phi=0.1, psi=0.9961)", PAPER_REGION_2_TWO_METRIC),
        ("Eq.4 region 1 (+xi=9, omega=2, kappa=1)", PAPER_REGION_1_MULTI_METRIC),
        ("Eq.4 region 2 (+xi=7, omega=1, kappa=1)", PAPER_REGION_2_MULTI_METRIC),
    ):
        selected = satisfying_designs(evaluations, region)
        labels = ", ".join(e.label for e in selected) or "(none)"
        print(f"{name}:")
        print(f"    {labels}")


if __name__ == "__main__":
    main()

"""Chaos drill: a design-space sweep that survives injected faults.

Arms a deterministic fault plan — a killed process-pool worker and a
sqlite cache that locks on every retry attempt — then runs the same
sweep twice, clean and faulted, and verifies three things:

1. the faulted run *succeeds* (every fault is absorbed by a recovery
   path: pool recycle and retry, cache degrade to memory-only);
2. its results are identical to the clean run's, metric for metric;
3. the recovery paths really ran, visible in the process metrics
   registry (``repro_pool_recycles_total``, ``repro_cache_degraded``,
   ``repro_breaker_opens_total``, ``repro_faults_injected_total``).

The same drill runs from the shell via ``REPRO_FAULTS`` (see the CI
chaos-smoke job)::

    REPRO_FAULTS="worker.chunk:kill@1" \
        python -m repro sweep --executor process --metrics metrics.json

Usage::

    python examples/chaos_sweep.py
"""

from __future__ import annotations

import os
import tempfile

from repro import observability
from repro.evaluation.engine import SweepEngine
from repro.evaluation.sweep import enumerate_designs
from repro.resilience import RetryPolicy, breaker_states
from repro.resilience import faults


def metric_value(snapshot: dict, family: str) -> float:
    """Sum of all series of *family* in a registry snapshot."""
    series = snapshot.get(family, {}).get("series", [])
    return sum(entry.get("value", 0.0) for entry in series)


def main() -> None:
    roles = ["dns", "web", "app", "db"]
    designs = list(enumerate_designs(roles, max_replicas=2))
    print(f"design space: {len(designs)} designs over {', '.join(roles)}")

    # -- clean baseline ----------------------------------------------------
    clean = SweepEngine().evaluate(designs)
    print(f"clean run:   {len(clean)} evaluations")

    # -- arm the fault plan ------------------------------------------------
    # kill@1:   the first pool worker to enter a chunk dies (os._exit);
    # error@k:  the k-th cache write sees "database is locked" — three
    #           consecutive locks exhaust the retry policy and degrade
    #           the cache to memory-only.
    # Each spec fires exactly once across the whole process tree, so the
    # re-executed work proceeds unfaulted — that's what makes the
    # recovered output reproducible.
    os.environ[faults.ENV_PLAN] = (
        "worker.chunk:kill@1;"
        "cache.write:error@1;cache.write:error@2;cache.write:error@3"
    )
    faults.reset()

    cache_path = os.path.join(tempfile.mkdtemp(prefix="chaos-"), "cache.sqlite")
    engine = SweepEngine(
        executor="process", max_workers=2, cache_path=cache_path
    )
    # No backoff sleeps in the drill: determinism comes from the plan,
    # not the cadence.
    engine.persistent_cache.retry_policy = RetryPolicy(
        attempts=3, base_delay=0.0
    )

    with engine:
        faulted = engine.evaluate(designs)
    print(f"faulted run: {len(faulted)} evaluations (no request failed)")

    # -- the recovered output is identical ---------------------------------
    assert faulted == clean, "chaos run diverged from the clean run"
    print("byte-identical: faulted results == clean results")

    # -- and the recovery paths really ran ---------------------------------
    snapshot = observability.REGISTRY.to_dict()
    recycles = metric_value(snapshot, "repro_pool_recycles_total")
    degraded = metric_value(snapshot, "repro_cache_degraded")
    injected = metric_value(snapshot, "repro_faults_injected_total")
    assert engine.executor.recycle_count == 1, "worker kill not recycled"
    assert engine.persistent_cache.degraded, "cache did not degrade"
    assert recycles >= 1 and degraded >= 1, "recovery metrics did not move"
    print(
        f"recoveries:  {int(recycles)} pool recycle(s), "
        f"cache degraded={engine.persistent_cache.degraded}, "
        f"{int(injected)} fault(s) injected in this process"
    )
    states = breaker_states()
    if not states:
        print(
            "breakers:    none exercised (paper-scale models never route "
            "to the iterative solver; see REPRO_BREAKER_THRESHOLD)"
        )
    for name, state in states.items():
        print(
            f"breaker:     {name}: {state['state']} "
            f"({state['opens']} open(s), {state['failures']} failure(s))"
        )


if __name__ == "__main__":
    main()

"""Staged rollout study: canary-first vs big-bang patch campaigns.

Real fleets rarely patch everything at once: a canary slice goes first,
then a ramp, then the full fleet.  This walkthrough compares three
rollout strategies for the paper's designs under the campaign-aware
timeline subsystem (`evaluate_timelines(..., campaign=...)`):

1. **big-bang** — every server patches at full rate from t = 0 (the
   paper's stationary model; byte-identical to no campaign at all),
2. **canary-then-fleet** — 48 h at 10% patch throughput, a 120 h ramp
   at half rate, then the full fleet,
3. **canary-by-count** — at most one host patching concurrently until a
   quarter of the fleet is expected patched (a completion-fraction
   trigger), then everything.

Each phase is uniformised once and the state vector carried across the
phase boundaries (`transient_piecewise`), so a staged curve costs one
batch pass per phase.  The trade-off the tables show: staging softens
the availability dip of the patch wave but stretches the security
exposure window — the canary fleet stays unpatched (and attackable)
for longer.

Usage::

    python examples/staged_rollout.py
"""

from __future__ import annotations

from repro.enterprise import paper_designs
from repro.evaluation import default_time_grid, evaluate_timelines
from repro.patching import BIG_BANG, CANARY_THEN_FLEET, CampaignPhase, PatchCampaign

CANARY_BY_COUNT = PatchCampaign(
    name="canary-by-count",
    phases=(
        CampaignPhase(
            name="canary",
            rate_multiplier=1.0,
            completion_fraction=0.25,
            canary_hosts=1,
        ),
        CampaignPhase(name="fleet", rate_multiplier=1.0),
    ),
)

CAMPAIGNS = (BIG_BANG, CANARY_THEN_FLEET, CANARY_BY_COUNT)


def spark(values, lo, hi) -> str:
    """A one-line ASCII bar for a value range."""
    blocks = " .:-=+*#%@"
    span = max(hi - lo, 1e-12)
    return "".join(
        blocks[min(int((value - lo) / span * (len(blocks) - 1)), len(blocks) - 1)]
        for value in values
    )


def main() -> None:
    designs = paper_designs()
    times = default_time_grid(1440.0, 25)  # two monthly cycles, 60 h steps

    print("staged rollouts under test:")
    for campaign in CAMPAIGNS:
        print(f"  {campaign}")

    by_campaign = {
        campaign: evaluate_timelines(designs, times, campaign=campaign)
        for campaign in CAMPAIGNS
    }

    print("\n[1] campaign progress: expected unpatched fraction over time")
    print(f"    grid 0..{times[-1]:g} h, {len(times)} points; darker = more exposed")
    for campaign in CAMPAIGNS:
        timeline = by_campaign[campaign][0]
        print(
            f"    {campaign.name:<18} |{spark(timeline.unpatched_fraction, 0.0, 1.0)}|"
        )

    print("\n[2] mean time to patch completion (hours), per design")
    header = "".join(f"{campaign.name:>20}" for campaign in CAMPAIGNS)
    print(f"    {'design':<34}{header}")
    for position, design in enumerate(designs):
        cells = "".join(
            f"{by_campaign[campaign][position].mean_time_to_completion:20.1f}"
            for campaign in CAMPAIGNS
        )
        print(f"    {design.label:<34}{cells}")

    print("\n[3] the trade-off for the first paper design")
    first = designs[0]
    print(f"    design: {first.label}")
    print(
        f"    {'campaign':<18}{'min COA':>12}{'COA @720 h':>12}"
        f"{'ASP @720 h':>12}{'P(done) @720 h':>16}"
    )
    mid = len(times) // 2  # t = 720 h on the two-cycle grid
    for campaign in CAMPAIGNS:
        timeline = by_campaign[campaign][0]
        asp = timeline.security_curve("ASP")
        print(
            f"    {campaign.name:<18}{timeline.min_coa:12.6f}"
            f"{timeline.coa[mid]:12.6f}{asp[mid]:12.4f}"
            f"{timeline.completion_probability[mid]:16.4f}"
        )

    print("\n[4] resolved phase starts (hours) for the first design")
    for campaign in CAMPAIGNS:
        timeline = by_campaign[campaign][0]
        starts = ", ".join(f"{start:g}" for start in timeline.phase_starts)
        print(f"    {campaign.name:<18} {starts}")

    print(
        "\nReading: staging defers the patch wave - mid-campaign COA stays"
        "\nhigher - but leaves the fleet exposed for longer (higher ASP at"
        "\nt = 720 h, later completion).  The completion-fraction canary"
        "\nadapts its boundary to each design's size: larger fleets ramp"
        "\nlater (phase starts differ per design)."
    )


if __name__ == "__main__":
    main()

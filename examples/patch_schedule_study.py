"""Patch-cadence study: availability, exposure, survivability, sensitivity.

Extends the paper's monthly-only analysis along Section V's roadmap:

1. sweeps four patch cadences and reports COA vs the exposure window,
2. computes the time to the first patch-induced whole-tier outage,
3. plots (textually) the transient COA right after a patch cycle starts,
4. runs the one-at-a-time sensitivity scan to rank the availability levers.

Usage::

    python examples/patch_schedule_study.py
"""

from __future__ import annotations

from repro.availability import mean_time_to_outage, transient_coa
from repro.enterprise import example_network_design, paper_case_study
from repro.evaluation import AvailabilityEvaluator, coa_sensitivity
from repro.patching import (
    BIWEEKLY,
    CriticalVulnerabilityPolicy,
    MONTHLY,
    QUARTERLY,
    WEEKLY,
)


def main() -> None:
    design = example_network_design()
    policy = CriticalVulnerabilityPolicy()

    print("== patch-cadence sweep (example network) ==")
    print("schedule    COA        mean exposure (days)  time to outage (h)")
    for schedule in (WEEKLY, BIWEEKLY, MONTHLY, QUARTERLY):
        case_study = paper_case_study(schedule=schedule)
        evaluator = AvailabilityEvaluator(case_study, policy)
        model = evaluator.network_model(design)
        coa = model.capacity_oriented_availability()
        outage = mean_time_to_outage(model)
        print(
            f"{schedule.label:<10}  {coa:.6f}   {schedule.interval_days / 2:5.1f}"
            f"                 {outage:8.1f}"
        )

    print()
    print("== transient COA after all servers start up (monthly cadence) ==")
    case_study = paper_case_study()
    evaluator = AvailabilityEvaluator(case_study, policy)
    model = evaluator.network_model(design)
    # relaxation rate is lambda_eq + mu_eq ~ 1-1.7/h, so the approach to
    # steady state resolves on a scale of hours
    times = [0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0]
    values = transient_coa(model, times)
    steady = model.capacity_oriented_availability()
    for t, value in zip(times, values):
        bar = "#" * int((value - steady) / max(1.0 - steady, 1e-12) * 40)
        print(f"  t={t:5.2f} h   COA={value:.6f}  {bar}")
    print(f"  steady state COA={steady:.6f}")

    print()
    print("== sensitivity: which knob moves COA? (x0.5 / x2 scans) ==")
    entries = coa_sensitivity(case_study, design, policy)
    for entry in entries:
        print(
            f"  {entry.parameter:<24} swing={entry.swing:.6f}"
            f"  [{entry.coa_low:.6f} .. {entry.coa_high:.6f}]"
        )
    print("\nthe patch cadence dominates; component failure rates are")
    print("invisible to COA because the upper-layer model (like the paper's)")
    print("captures patch-induced downtime only.")


if __name__ == "__main__":
    main()

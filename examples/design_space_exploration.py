"""Design-space exploration beyond the paper's five choices.

Enumerates every design with up to three replicas per tier under a
ten-server budget, evaluates all of them with shared model caches, and
reports (a) the Pareto frontier on (ASP, COA), (b) the cheapest design
meeting the paper's region-1 requirements, and (c) a cost ranking using
the operational-cost extension.

Usage::

    python examples/design_space_exploration.py
"""

from __future__ import annotations

from repro.enterprise import paper_case_study
from repro.evaluation import (
    enumerate_designs,
    pareto_front,
    satisfying_designs,
    sweep_designs,
)
from repro.evaluation.cost import CostModel
from repro.evaluation.requirements import PAPER_REGION_1_TWO_METRIC
from repro.patching import CriticalVulnerabilityPolicy


def main() -> None:
    case_study = paper_case_study()
    policy = CriticalVulnerabilityPolicy()
    designs = list(
        enumerate_designs(
            ["dns", "web", "app", "db"], max_replicas=3, max_total=10
        )
    )
    print(f"evaluating {len(designs)} designs (<=3 replicas/tier, <=10 servers)")

    evaluations = sweep_designs(case_study, policy, designs)

    print("\nPareto frontier on (ASP after patch, COA):")
    frontier = pareto_front(evaluations)
    frontier.sort(key=lambda e: e.after.coa)
    for evaluation in frontier:
        security = evaluation.after.security
        print(
            f"  {evaluation.label:<30}"
            f" ASP={security.attack_success_probability:.4f}"
            f" COA={evaluation.after.coa:.6f}"
            f" servers={evaluation.design.total_servers}"
        )

    print("\ncheapest designs satisfying Eq.3 region 1 (phi=0.2, psi=0.9962):")
    feasible = satisfying_designs(evaluations, PAPER_REGION_1_TWO_METRIC)
    feasible.sort(key=lambda e: (e.design.total_servers, -e.after.coa))
    for evaluation in feasible[:5]:
        print(
            f"  {evaluation.label:<30}"
            f" servers={evaluation.design.total_servers}"
            f" COA={evaluation.after.coa:.6f}"
        )
    if not feasible:
        print("  (none)")

    print("\nlowest total monthly cost (hardware + downtime + breach risk):")
    cost_model = CostModel()
    ranked = sorted(evaluations, key=cost_model.total)
    for evaluation in ranked[:5]:
        breakdown = cost_model.breakdown(evaluation)
        print(
            f"  {evaluation.label:<30} total={breakdown.total:9.0f}"
            f" (servers {breakdown.servers:.0f},"
            f" downtime {breakdown.downtime:.0f},"
            f" breach {breakdown.breach_risk:.0f})"
        )


if __name__ == "__main__":
    main()

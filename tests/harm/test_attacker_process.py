"""Tests for the MTTC attacker process."""

from __future__ import annotations

import pytest

from repro.attackgraph import AttackGraph
from repro.attacktree import AttackTree
from repro.attacktree.nodes import LeafNode
from repro.errors import HarmError
from repro.harm import Harm
from repro.harm.attacker_process import attacker_chain, mean_time_to_compromise
from repro.patching import CriticalVulnerabilityPolicy


def tree(name: str, probability=1.0, impact=10.0):
    return AttackTree.single(LeafNode(name, impact, probability))


def chain_harm(probabilities):
    """attacker -> h0 -> h1 -> ... -> target, with given host ASPs."""
    graph = AttackGraph()
    hosts = [f"h{i}" for i in range(len(probabilities))]
    graph.add_entry_point(hosts[0])
    for src, dst in zip(hosts, hosts[1:]):
        graph.add_reachability(src, dst)
    graph.add_target(hosts[-1])
    trees = {
        host: tree(f"v-{host}", probability=p)
        for host, p in zip(hosts, probabilities)
    }
    return Harm(graph, trees)


class TestChainTopologies:
    def test_single_hop_certain_exploit(self):
        harm = chain_harm([1.0])
        assert mean_time_to_compromise(harm, exploit_rate=2.0) == pytest.approx(0.5)

    def test_sequential_hops_add_expectations(self):
        harm = chain_harm([1.0, 0.5, 0.25])
        # E = 1/1 + 1/0.5 + 1/0.25 = 7 at unit exploit rate
        assert mean_time_to_compromise(harm) == pytest.approx(7.0)

    def test_exploit_rate_scales_linearly(self):
        harm = chain_harm([0.5, 0.5])
        slow = mean_time_to_compromise(harm, exploit_rate=1.0)
        fast = mean_time_to_compromise(harm, exploit_rate=4.0)
        assert slow == pytest.approx(4.0 * fast)

    def test_parallel_paths_race(self):
        """Two disjoint one-hop paths halve the expected time."""
        graph = AttackGraph(targets=["t1", "t2"])
        for target in ("t1", "t2"):
            graph.add_entry_point(target)
        harm = Harm(graph, {"t1": tree("a", 1.0), "t2": tree("b", 1.0)})
        assert mean_time_to_compromise(harm) == pytest.approx(0.5)

    def test_dead_end_branch_is_pruned(self):
        graph = AttackGraph(targets=["db"])
        graph.add_entry_point("web")
        graph.add_reachability("web", "db")
        graph.add_reachability("web", "deadend")
        harm = Harm(
            graph,
            {
                "web": tree("v1", 1.0),
                "db": tree("v2", 1.0),
                "deadend": tree("v3", 1.0),
            },
        )
        # the dead end never delays nor absorbs the attacker
        assert mean_time_to_compromise(harm) == pytest.approx(2.0)
        assert "deadend" not in attacker_chain(harm).states

    def test_unreachable_target_raises(self):
        graph = AttackGraph(targets=["db"])
        graph.add_entry_point("web")
        harm = Harm(graph, {"web": tree("v1"), "db": tree("v2")})
        with pytest.raises(HarmError):
            mean_time_to_compromise(harm)

    def test_fully_patched_surface_raises(self):
        graph = AttackGraph(targets=["db"])
        graph.add_entry_point("db")
        harm = Harm(graph, {"db": tree("v")})
        patched = harm.after_patching({"db": ["v"]})
        with pytest.raises(HarmError):
            mean_time_to_compromise(patched)


class TestOnThePaperNetwork:
    def test_patching_slows_the_attacker(
        self, case_study, example_design, critical_policy
    ):
        before = mean_time_to_compromise(case_study.build_harm(example_design))
        after = mean_time_to_compromise(
            case_study.build_harm(example_design, critical_policy)
        )
        assert after > before

    def test_redundancy_speeds_the_attacker(self, case_study, five_designs):
        policy = CriticalVulnerabilityPolicy()
        d1 = mean_time_to_compromise(
            case_study.build_harm(five_designs[0], policy)
        )
        d3 = mean_time_to_compromise(
            case_study.build_harm(five_designs[2], policy)  # 2 WEB
        )
        assert d3 < d1

    def test_dns_redundancy_neutral_after_patch(self, case_study, five_designs):
        policy = CriticalVulnerabilityPolicy()
        d1 = mean_time_to_compromise(
            case_study.build_harm(five_designs[0], policy)
        )
        d2 = mean_time_to_compromise(
            case_study.build_harm(five_designs[1], policy)  # 2 DNS
        )
        assert d2 == pytest.approx(d1)

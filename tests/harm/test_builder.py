"""Tests for HARM construction from vulnerability descriptions."""

from __future__ import annotations

import pytest

from repro.errors import HarmError
from repro.harm import build_harm
from repro.vulnerability import SoftwareLayer, Vulnerability

FULL = "AV:N/AC:L/Au:N/C:C/I:C/A:C"
LOCAL = "AV:L/AC:L/Au:N/C:C/I:C/A:C"


def vuln(cve, product="P", exploitable=True, vector=FULL):
    return Vulnerability(cve, product, SoftwareLayer.APPLICATION, vector, exploitable)


class TestBuildHarm:
    def test_basic_two_host_network(self):
        harm = build_harm(
            {"web": [vuln("CVE-A")], "db": [vuln("CVE-B")]},
            reachability=[("web", "db")],
            entry_hosts=["web"],
            targets=["db"],
        )
        surface = harm.attack_surface()
        assert surface.number_of_attack_paths() == 1
        assert harm.tree_for("web").leaf_names() == ["CVE-A"]

    def test_unexploitable_host_gets_no_tree(self):
        harm = build_harm(
            {
                "web": [vuln("CVE-A")],
                "db": [vuln("CVE-B", exploitable=False)],
            },
            reachability=[("web", "db")],
            entry_hosts=["web"],
            targets=["db"],
        )
        assert "db" not in harm.trees
        assert harm.attack_surface().number_of_attack_paths() == 0

    def test_tree_spec_shapes_the_tree(self):
        harm = build_harm(
            {
                "web": [vuln("CVE-A"), vuln("CVE-B", vector=LOCAL)],
                "db": [vuln("CVE-C")],
            },
            reachability=[("web", "db")],
            entry_hosts=["web"],
            targets=["db"],
            tree_specs={"web": [("CVE-A", "CVE-B")]},
        )
        assert harm.tree_for("web").to_expression() == "(CVE-A & CVE-B)"

    def test_spec_with_unknown_cve_raises(self):
        with pytest.raises(HarmError, match="unknown vulnerabilities"):
            build_harm(
                {"web": [vuln("CVE-A")], "db": [vuln("CVE-C")]},
                reachability=[("web", "db")],
                entry_hosts=["web"],
                targets=["db"],
                tree_specs={"web": ["CVE-A", "CVE-ZZ"]},
            )

    def test_spec_naming_unexploitable_cve_raises(self):
        with pytest.raises(HarmError):
            build_harm(
                {
                    "web": [vuln("CVE-A"), vuln("CVE-B", exploitable=False)],
                    "db": [vuln("CVE-C")],
                },
                reachability=[("web", "db")],
                entry_hosts=["web"],
                targets=["db"],
                tree_specs={"web": ["CVE-A", "CVE-B"]},
            )

    def test_entry_host_without_vulnerability_entry_raises(self):
        with pytest.raises(HarmError, match="entry host"):
            build_harm(
                {"db": [vuln("CVE-B")]},
                reachability=[],
                entry_hosts=["web"],
                targets=["db"],
            )

    def test_flat_or_is_default(self):
        harm = build_harm(
            {"web": [vuln("CVE-A"), vuln("CVE-B", vector=LOCAL)], "db": [vuln("CVE-C")]},
            reachability=[("web", "db")],
            entry_hosts=["web"],
            targets=["db"],
        )
        assert harm.tree_for("web").to_expression() == "(CVE-A | CVE-B)"

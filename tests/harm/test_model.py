"""Tests for the HARM container."""

from __future__ import annotations

import pytest

from repro.attackgraph import AttackGraph
from repro.attacktree import AttackTree
from repro.attacktree.nodes import LeafNode
from repro.errors import HarmError
from repro.harm import Harm


def tree(name: str, impact=10.0, probability=1.0):
    return AttackTree.single(LeafNode(name, impact, probability))


@pytest.fixture
def small_harm():
    graph = AttackGraph(targets=["db"])
    graph.add_entry_point("web")
    graph.add_reachability("web", "db")
    graph.add_host("mgmt")  # no exploitable vulnerabilities
    return Harm(
        graph,
        {"web": tree("v-web"), "db": tree("v-db"), "mgmt": None},
    )


class TestConstruction:
    def test_trees_for_unknown_host_raise(self):
        graph = AttackGraph(targets=["db"])
        graph.add_entry_point("db")
        with pytest.raises(HarmError, match="unknown host"):
            Harm(graph, {"ghost": tree("v")})

    def test_non_graph_rejected(self):
        with pytest.raises(HarmError):
            Harm("not a graph", {})

    def test_none_trees_are_dropped(self, small_harm):
        assert "mgmt" not in small_harm.trees

    def test_tree_for_known_host(self, small_harm):
        assert small_harm.tree_for("web").leaf_names() == ["v-web"]

    def test_tree_for_unexploitable_host_raises(self, small_harm):
        with pytest.raises(HarmError):
            small_harm.tree_for("mgmt")


class TestAttackSurface:
    def test_exploitable_hosts(self, small_harm):
        assert set(small_harm.exploitable_hosts()) == {"web", "db"}

    def test_attack_surface_excludes_unexploitable(self, small_harm):
        surface = small_harm.attack_surface()
        assert not surface.has_host("mgmt")
        assert surface.number_of_attack_paths() == 1

    def test_full_graph_retains_all_hosts(self, small_harm):
        assert small_harm.graph.has_host("mgmt")


class TestPatching:
    def test_after_patching_prunes_leaves(self, small_harm):
        patched = small_harm.after_patching({"web": ["v-web"]})
        assert "web" not in patched.trees
        # web drops off the attack surface entirely
        assert patched.attack_surface().number_of_attack_paths() == 0

    def test_after_patching_keeps_original(self, small_harm):
        small_harm.after_patching({"web": ["v-web"]})
        assert "web" in small_harm.trees

    def test_after_patching_unknown_names_noop(self, small_harm):
        patched = small_harm.after_patching({"web": ["nothing"]})
        assert patched.tree_for("web").leaf_names() == ["v-web"]

    def test_after_patching_empty_map(self, small_harm):
        patched = small_harm.after_patching({})
        assert patched.exploitable_hosts() == small_harm.exploitable_hosts()

"""Tests for HARM security metrics."""

from __future__ import annotations

import pytest

from repro.attackgraph import AttackGraph
from repro.attacktree import AttackTree
from repro.attacktree.nodes import LeafNode
from repro.harm import Harm, PathAggregation, evaluate_security


def tree(name: str, impact=10.0, probability=1.0):
    return AttackTree.single(LeafNode(name, impact, probability))


@pytest.fixture
def two_path_harm():
    """A -> web1/web2 -> db, each host one vulnerability (p=0.5)."""
    graph = AttackGraph(targets=["db"])
    for web in ("web1", "web2"):
        graph.add_entry_point(web)
        graph.add_reachability(web, "db")
    return Harm(
        graph,
        {
            "web1": tree("v1", impact=3.0, probability=0.5),
            "web2": tree("v2", impact=7.0, probability=0.5),
            "db": tree("v3", impact=10.0, probability=0.5),
        },
    )


class TestPathMetrics:
    def test_attack_impact_is_max_path_sum(self, two_path_harm):
        metrics = evaluate_security(two_path_harm)
        assert metrics.attack_impact == pytest.approx(17.0)  # web2 + db

    def test_path_probabilities_multiply(self, two_path_harm):
        metrics = evaluate_security(two_path_harm)
        assert sorted(metrics.path_probabilities) == [
            pytest.approx(0.25),
            pytest.approx(0.25),
        ]

    def test_worst_case_network_asp(self, two_path_harm):
        metrics = evaluate_security(
            two_path_harm, aggregation=PathAggregation.WORST_CASE
        )
        assert metrics.attack_success_probability == pytest.approx(0.25)

    def test_independent_paths_network_asp(self, two_path_harm):
        metrics = evaluate_security(
            two_path_harm, aggregation=PathAggregation.INDEPENDENT_PATHS
        )
        assert metrics.attack_success_probability == pytest.approx(
            1 - (1 - 0.25) ** 2
        )

    def test_independent_paths_at_least_worst_case(self, two_path_harm):
        worst = evaluate_security(
            two_path_harm, aggregation=PathAggregation.WORST_CASE
        )
        independent = evaluate_security(
            two_path_harm, aggregation=PathAggregation.INDEPENDENT_PATHS
        )
        assert (
            independent.attack_success_probability
            >= worst.attack_success_probability
        )


class TestCountMetrics:
    def test_counts(self, two_path_harm):
        metrics = evaluate_security(two_path_harm)
        assert metrics.number_of_exploitable_vulnerabilities == 3
        assert metrics.number_of_attack_paths == 2
        assert metrics.number_of_entry_points == 2
        assert metrics.unique_cve_count == 3

    def test_as_dict_keys(self, two_path_harm):
        assert set(evaluate_security(two_path_harm).as_dict()) == {
            "AIM",
            "ASP",
            "NoEV",
            "NoAP",
            "NoEP",
        }

    def test_extras(self, two_path_harm):
        metrics = evaluate_security(two_path_harm)
        assert metrics.shortest_attack_path == 2
        assert metrics.mean_path_length == pytest.approx(2.0)
        assert metrics.max_path_probability == pytest.approx(0.25)
        assert metrics.total_risk == pytest.approx(0.25 * 13.0 + 0.25 * 17.0)


class TestDegenerateCases:
    def test_unreachable_target(self):
        graph = AttackGraph(targets=["db"])
        graph.add_entry_point("web")
        harm = Harm(graph, {"web": tree("v1"), "db": tree("v2")})
        metrics = evaluate_security(harm)
        assert metrics.number_of_attack_paths == 0
        assert metrics.attack_success_probability == 0.0
        assert metrics.attack_impact == 0.0

    def test_fully_patched_network(self):
        graph = AttackGraph(targets=["db"])
        graph.add_entry_point("web")
        graph.add_reachability("web", "db")
        harm = Harm(graph, {"web": None, "db": None})
        metrics = evaluate_security(harm)
        assert metrics.number_of_exploitable_vulnerabilities == 0
        assert metrics.number_of_attack_paths == 0
        assert metrics.number_of_entry_points == 0

    def test_target_unexploitable_breaks_paths(self):
        graph = AttackGraph(targets=["db"])
        graph.add_entry_point("web")
        graph.add_reachability("web", "db")
        harm = Harm(graph, {"web": tree("v1"), "db": None})
        metrics = evaluate_security(harm)
        assert metrics.number_of_attack_paths == 0

    def test_max_path_length_bounds_enumeration(self, two_path_harm):
        metrics = evaluate_security(two_path_harm, max_path_length=1)
        assert metrics.number_of_attack_paths == 0

"""Tests for attack-tree node types."""

from __future__ import annotations

import pytest

from repro.attacktree import Gate
from repro.attacktree.nodes import GateNode, LeafNode
from repro.errors import AttackTreeError, ValidationError


class TestLeafNode:
    def test_valid_leaf(self):
        leaf = LeafNode("CVE-1", impact=10.0, probability=0.39)
        assert leaf.is_leaf
        assert leaf.impact == 10.0

    def test_rejects_empty_name(self):
        with pytest.raises(ValidationError):
            LeafNode("", 1.0, 0.5)

    def test_rejects_negative_impact(self):
        with pytest.raises(ValidationError):
            LeafNode("x", -1.0, 0.5)

    def test_rejects_impact_above_ten(self):
        with pytest.raises(AttackTreeError):
            LeafNode("x", 10.5, 0.5)

    def test_rejects_probability_above_one(self):
        with pytest.raises(ValidationError):
            LeafNode("x", 5.0, 1.5)

    def test_leaves_are_hashable_and_equal_by_value(self):
        assert LeafNode("x", 1.0, 0.5) == LeafNode("x", 1.0, 0.5)
        assert hash(LeafNode("x", 1.0, 0.5)) == hash(LeafNode("x", 1.0, 0.5))


class TestGateNode:
    def test_valid_gate(self):
        leaf = LeafNode("x", 1.0, 0.5)
        gate = GateNode(Gate.AND, (leaf, leaf))
        assert not gate.is_leaf
        assert len(gate.children) == 2

    def test_rejects_empty_children(self):
        with pytest.raises(AttackTreeError):
            GateNode(Gate.OR, ())

    def test_rejects_non_gate_type(self):
        leaf = LeafNode("x", 1.0, 0.5)
        with pytest.raises(AttackTreeError):
            GateNode("or", (leaf,))

    def test_rejects_bad_child(self):
        with pytest.raises(AttackTreeError):
            GateNode(Gate.OR, ("not-a-node",))

    def test_nested_gates(self):
        leaf = LeafNode("x", 1.0, 0.5)
        inner = GateNode(Gate.AND, (leaf, leaf))
        outer = GateNode(Gate.OR, (leaf, inner))
        assert outer.children[1] is inner

    def test_gate_str(self):
        assert str(Gate.AND) == "and"
        assert str(Gate.OR) == "or"

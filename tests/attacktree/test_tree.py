"""Tests for attack-tree construction, evaluation and pruning."""

from __future__ import annotations

import pytest

from repro.attacktree import AttackTree, PROBABILISTIC, WORST_CASE
from repro.attacktree.nodes import LeafNode
from repro.errors import AttackTreeError
from repro.vulnerability import SoftwareLayer, Vulnerability


def leaves(**metrics):
    return {
        name: LeafNode(name, impact, probability)
        for name, (impact, probability) in metrics.items()
    }


@pytest.fixture
def web_tree():
    """The paper's web-server tree: v1|v2|v3|(v4 & v5)."""
    pool = leaves(
        v1=(10.0, 1.0),
        v2=(10.0, 1.0),
        v3=(10.0, 1.0),
        v4=(2.9, 1.0),
        v5=(10.0, 0.39),
    )
    return AttackTree.from_branches(pool, ["v1", "v2", "v3", ("v4", "v5")])


class TestConstruction:
    def test_single_leaf_tree(self):
        tree = AttackTree.single(LeafNode("v", 5.0, 0.5))
        assert tree.impact() == 5.0
        assert tree.probability() == 0.5
        assert tree.size() == 1
        assert tree.depth() == 1

    def test_from_branches_shape(self, web_tree):
        assert web_tree.to_expression() == "(v1 | v2 | v3 | (v4 & v5))"
        assert web_tree.size() == 7  # root + 3 leaves + AND gate + 2 leaves
        assert web_tree.depth() == 3

    def test_singleton_and_group_collapses(self):
        pool = leaves(a=(1.0, 0.5), b=(2.0, 0.5))
        tree = AttackTree.from_branches(pool, ["a", ("b",)])
        assert tree.to_expression() == "(a | b)"

    def test_single_branch_tree_has_no_gate(self):
        pool = leaves(a=(1.0, 0.5))
        tree = AttackTree.from_branches(pool, ["a"])
        assert tree.to_expression() == "a"

    def test_unknown_leaf_in_spec_raises(self):
        pool = leaves(a=(1.0, 0.5))
        with pytest.raises(AttackTreeError, match="unknown leaf"):
            AttackTree.from_branches(pool, ["a", "zz"])

    def test_empty_branches_raises(self):
        with pytest.raises(AttackTreeError):
            AttackTree.from_branches(leaves(a=(1.0, 0.5)), [])

    def test_empty_and_group_raises(self):
        with pytest.raises(AttackTreeError):
            AttackTree.from_branches(leaves(a=(1.0, 0.5)), [()])

    def test_from_vulnerabilities_flat_or(self):
        vulns = [
            Vulnerability(
                "CVE-A", "P", SoftwareLayer.APPLICATION,
                "AV:N/AC:L/Au:N/C:C/I:C/A:C", True,
            ),
            Vulnerability(
                "CVE-B", "P", SoftwareLayer.APPLICATION,
                "AV:L/AC:L/Au:N/C:C/I:C/A:C", True,
            ),
        ]
        tree = AttackTree.from_vulnerabilities(vulns)
        assert tree.to_expression() == "(CVE-A | CVE-B)"
        assert tree.probability() == 1.0

    def test_from_zero_vulnerabilities_raises(self):
        with pytest.raises(AttackTreeError):
            AttackTree.from_vulnerabilities([])


class TestEvaluation:
    def test_paper_web_impact(self, web_tree):
        # max(10, 10, 10, 2.9 + 10) = 12.9
        assert web_tree.impact() == pytest.approx(12.9)

    def test_paper_web_probability(self, web_tree):
        # max(1, 1, 1, 1 * 0.39) = 1.0
        assert web_tree.probability() == 1.0

    def test_and_gate_probability_multiplies(self):
        pool = leaves(a=(1.0, 0.5), b=(1.0, 0.4))
        tree = AttackTree.from_branches(pool, [("a", "b")])
        assert tree.probability() == pytest.approx(0.2)
        assert tree.impact() == pytest.approx(2.0)

    def test_probabilistic_or(self):
        pool = leaves(a=(1.0, 0.5), b=(1.0, 0.5))
        tree = AttackTree.from_branches(pool, ["a", "b"])
        assert tree.probability(WORST_CASE) == 0.5
        assert tree.probability(PROBABILISTIC) == pytest.approx(0.75)

    def test_probabilistic_impact_unchanged(self, web_tree):
        assert web_tree.impact(PROBABILISTIC) == web_tree.impact(WORST_CASE)

    def test_risk_is_product(self, web_tree):
        assert web_tree.risk() == pytest.approx(12.9 * 1.0)

    def test_leaf_names_depth_first(self, web_tree):
        assert web_tree.leaf_names() == ["v1", "v2", "v3", "v4", "v5"]


class TestPruning:
    def test_pruning_or_branch(self, web_tree):
        pruned = web_tree.without_leaves(["v1"])
        assert pruned.to_expression() == "(v2 | v3 | (v4 & v5))"

    def test_pruning_and_member_removes_gate(self, web_tree):
        pruned = web_tree.without_leaves(["v5"])
        assert pruned.to_expression() == "(v1 | v2 | v3)"

    def test_paper_after_patch_web(self, web_tree):
        pruned = web_tree.without_leaves(["v1", "v2", "v3"])
        assert pruned.to_expression() == "(v4 & v5)"
        assert pruned.impact() == pytest.approx(12.9)
        assert pruned.probability() == pytest.approx(0.39)

    def test_pruning_everything_returns_none(self, web_tree):
        assert web_tree.without_leaves(["v1", "v2", "v3", "v4"]) is None

    def test_pruning_unknown_names_is_noop(self, web_tree):
        pruned = web_tree.without_leaves(["zz"])
        assert pruned.to_expression() == web_tree.to_expression()

    def test_pruning_single_survivor_collapses(self):
        pool = leaves(a=(1.0, 0.5), b=(2.0, 0.5))
        tree = AttackTree.from_branches(pool, ["a", "b"])
        assert tree.without_leaves(["a"]).to_expression() == "b"

    def test_pruning_never_increases_metrics(self, web_tree):
        base_impact = web_tree.impact()
        base_prob = web_tree.probability()
        for name in web_tree.leaf_names():
            pruned = web_tree.without_leaves([name])
            if pruned is None:
                continue
            assert pruned.impact() <= base_impact + 1e-12
            assert pruned.probability() <= base_prob + 1e-12

    def test_db_tree_after_patch(self):
        """The paper's db tree keeps impact 12.9 after patching v1/v2."""
        pool = leaves(
            v1=(10.0, 1.0),
            v2=(10.0, 1.0),
            v3=(2.9, 0.86),
            v4=(10.0, 0.39),
            v5=(10.0, 0.39),
        )
        tree = AttackTree.from_branches(pool, ["v1", "v2", ("v3", "v4"), "v5"])
        assert tree.impact() == pytest.approx(12.9)
        pruned = tree.without_leaves(["v1", "v2"])
        assert pruned.impact() == pytest.approx(12.9)
        assert pruned.probability() == pytest.approx(0.39)

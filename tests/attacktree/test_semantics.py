"""Tests for gate-combination semantics."""

from __future__ import annotations

import pytest

from repro.attacktree import GateSemantics, PROBABILISTIC, WORST_CASE
from repro.errors import AttackTreeError


class TestWorstCase:
    def test_or_probability_is_max(self):
        assert WORST_CASE.combine_probability(False, [0.2, 0.9, 0.5]) == 0.9

    def test_and_probability_is_product(self):
        assert WORST_CASE.combine_probability(True, [0.5, 0.4]) == pytest.approx(0.2)

    def test_or_impact_is_max(self):
        assert WORST_CASE.combine_impact(False, [1.0, 7.0]) == 7.0

    def test_and_impact_is_sum(self):
        assert WORST_CASE.combine_impact(True, [2.9, 10.0]) == pytest.approx(12.9)


class TestProbabilistic:
    def test_or_probability_is_independent(self):
        result = PROBABILISTIC.combine_probability(False, [0.5, 0.5])
        assert result == pytest.approx(0.75)

    def test_and_probability_still_product(self):
        assert PROBABILISTIC.combine_probability(True, [0.5, 0.5]) == pytest.approx(
            0.25
        )

    def test_impact_combinators_match_worst_case(self):
        values = [1.0, 2.0, 3.0]
        for is_and in (True, False):
            assert PROBABILISTIC.combine_impact(
                is_and, values
            ) == WORST_CASE.combine_impact(is_and, values)

    def test_probabilistic_or_dominates_max(self):
        values = [0.3, 0.6]
        assert PROBABILISTIC.combine_probability(
            False, values
        ) >= WORST_CASE.combine_probability(False, values)


class TestEdgeCases:
    def test_empty_values_raise(self):
        with pytest.raises(AttackTreeError):
            WORST_CASE.combine_probability(False, [])
        with pytest.raises(AttackTreeError):
            WORST_CASE.combine_impact(True, [])

    def test_singleton_is_identity(self):
        for semantics in (WORST_CASE, PROBABILISTIC):
            for is_and in (True, False):
                assert semantics.combine_probability(is_and, [0.37]) == pytest.approx(
                    0.37
                )
                assert semantics.combine_impact(is_and, [4.2]) == pytest.approx(4.2)

    def test_custom_semantics(self):
        semantics = GateSemantics(
            name="min",
            or_probability=min,
            and_probability=min,
            or_impact=min,
            and_impact=min,
        )
        assert semantics.combine_probability(False, [0.2, 0.8]) == 0.2
        assert semantics.name == "min"

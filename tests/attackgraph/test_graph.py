"""Tests for the attack graph (HARM upper layer)."""

from __future__ import annotations

import pytest

from repro.attackgraph import ATTACKER, AttackGraph
from repro.errors import HarmError


@pytest.fixture
def paper_graph():
    """Upper layer of the paper's example network (1 dns, 2 web, 2 app, 1 db)."""
    graph = AttackGraph(targets=["db1"])
    graph.add_entry_point("dns1")
    for web in ("web1", "web2"):
        graph.add_entry_point(web)
        graph.add_reachability("dns1", web)
        for app in ("app1", "app2"):
            graph.add_reachability(web, app)
            graph.add_reachability(app, "db1")
    return graph


class TestConstruction:
    def test_hosts_exclude_attacker(self, paper_graph):
        assert ATTACKER not in paper_graph.hosts
        assert paper_graph.number_of_hosts() == 6

    def test_reserved_attacker_name_rejected(self):
        graph = AttackGraph()
        with pytest.raises(HarmError):
            graph.add_host(ATTACKER)

    def test_empty_host_name_rejected(self):
        graph = AttackGraph()
        with pytest.raises(HarmError):
            graph.add_host("")

    def test_add_target_registers_host(self):
        graph = AttackGraph()
        graph.add_target("db")
        assert graph.has_host("db")
        assert graph.targets == ["db"]

    def test_duplicate_target_not_repeated(self):
        graph = AttackGraph()
        graph.add_target("db")
        graph.add_target("db")
        assert graph.targets == ["db"]

    def test_remove_host(self, paper_graph):
        paper_graph.remove_host("dns1")
        assert not paper_graph.has_host("dns1")
        assert paper_graph.number_of_entry_points() == 2

    def test_remove_unknown_host_raises(self, paper_graph):
        with pytest.raises(HarmError):
            paper_graph.remove_host("nope")


class TestAnalysis:
    def test_entry_points(self, paper_graph):
        assert paper_graph.entry_points() == ["dns1", "web1", "web2"]
        assert paper_graph.number_of_entry_points() == 3

    def test_paper_network_has_eight_attack_paths(self, paper_graph):
        assert paper_graph.number_of_attack_paths() == 8

    def test_paths_exclude_attacker_node(self, paper_graph):
        for path in paper_graph.attack_paths():
            assert ATTACKER not in path
            assert path[-1] == "db1"

    def test_longest_path_is_the_paper_ap1(self, paper_graph):
        paths = paper_graph.attack_paths()
        longest = max(paths, key=len)
        assert len(longest) == 4
        assert longest[0] == "dns1"

    def test_no_targets_yields_no_paths(self):
        graph = AttackGraph()
        graph.add_entry_point("a")
        assert graph.attack_paths() == []

    def test_reachable_hosts(self, paper_graph):
        assert paper_graph.reachable_hosts("dns1") == ["web1", "web2"]

    def test_max_length_limits_paths(self, paper_graph):
        short = paper_graph.attack_paths(max_length=3)
        # only web -> app -> db paths fit in three hops from the attacker
        assert len(short) == 4


class TestRestriction:
    def test_restricted_to_drops_hosts(self, paper_graph):
        restricted = paper_graph.restricted_to(
            ["web1", "web2", "app1", "app2", "db1"]
        )
        assert restricted.number_of_entry_points() == 2
        assert restricted.number_of_attack_paths() == 4
        # the original is untouched
        assert paper_graph.number_of_attack_paths() == 8

    def test_restriction_drops_missing_targets(self, paper_graph):
        restricted = paper_graph.restricted_to(["dns1", "web1"])
        assert restricted.targets == []

    def test_to_digraph_is_a_copy(self, paper_graph):
        digraph = paper_graph.to_digraph()
        digraph.remove_node("db1")
        assert paper_graph.has_host("db1")

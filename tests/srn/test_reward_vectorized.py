"""Parity tests: vectorized reward evaluation vs the reference loop.

The vectorized path (cached per-marking reward vectors reduced with a
numpy dot product) must reproduce the original per-marking Python loop
to 1e-12 on the paper's server SRN and on randomized small nets, and the
family solver must match independent solves.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.availability.server import build_server_srn, solve_server
from repro.errors import SrnError
from repro.srn import SrnSolution, StochasticRewardNet, solve, solve_family

TOLERANCE = 1e-12


def _random_ring_net(rng: random.Random, places: int, tokens: int) -> StochasticRewardNet:
    """A live ring net: tokens circulate with marking-dependent rates."""
    net = StochasticRewardNet("ring")
    names = [f"p{i}" for i in range(places)]
    net.add_place(names[0], tokens=tokens)
    for name in names[1:]:
        net.add_place(name)
    for i, name in enumerate(names):
        rate = rng.uniform(0.1, 5.0)
        net.add_timed_transition(
            f"t{i}", rate=lambda m, _r=rate, _p=name: _r * m[_p]
        )
        net.add_arc(name, f"t{i}")
        net.add_arc(f"t{i}", names[(i + 1) % places])
    return net


@pytest.fixture(scope="module")
def server_solution(case_study, critical_policy):
    """Steady-state solution of the paper's web-server SRN."""
    parameters = case_study.server_parameters("web", critical_policy)
    return solve_server(parameters)


@pytest.fixture(scope="module")
def server_net(case_study, critical_policy):
    parameters = case_study.server_parameters("web", critical_policy)
    return build_server_srn(parameters)


class TestServerSrnParity:
    def test_expected_reward_matches_loop(self, server_solution):
        rewards = [
            lambda m: float(m["Psvcup"]),
            lambda m: float(m["Phwup"] and m["Posup"] and m["Psvcup"]),
            lambda m: sum(m.tokens) ** 2 / 7.0,
            lambda m: float(m["Posrp"] + 2 * m["Psvcrp"]),
        ]
        for reward in rewards:
            vectorized = server_solution.expected_reward(reward)
            loop = server_solution.expected_reward_loop(reward)
            assert abs(vectorized - loop) < TOLERANCE

    def test_probability_of_matches_loop(self, server_solution):
        predicates = [
            lambda m: m["Psvcup"] >= 1,
            lambda m: m["Phwd"] >= 1,
            lambda m: m["Pclock"] + m["Pdue"] >= 1,
        ]
        for predicate in predicates:
            vectorized = server_solution.probability_of(predicate)
            loop = sum(
                probability
                for marking, probability in zip(
                    server_solution.markings, server_solution.probabilities
                )
                if predicate(marking)
            )
            assert abs(vectorized - float(loop)) < TOLERANCE

    def test_expected_tokens_matches_loop(self, server_solution):
        for place in server_solution.markings[0].places():
            vectorized = server_solution.expected_tokens(place)
            loop = server_solution.expected_reward_loop(lambda m: m[place])
            assert abs(vectorized - loop) < TOLERANCE

    def test_throughput_matches_loop(self, server_solution, server_net):
        transition = server_net.transition("Thwd")
        vectorized = server_solution.throughput("Thwd", server_net)
        loop = sum(
            probability * transition.rate_in(marking)
            for marking, probability in zip(
                server_solution.markings, server_solution.probabilities
            )
            if transition.is_enabled(marking)
        )
        assert abs(vectorized - float(loop)) < TOLERANCE

    def test_probability_of_truthy_non_bool_predicate(self, server_solution):
        # A token count is a valid (truthy) predicate result; it must be
        # counted as satisfying, not used as a weight.
        truthy = server_solution.probability_of(lambda m: m["Pclock"])
        boolean = server_solution.probability_of(lambda m: m["Pclock"] >= 1)
        assert abs(truthy - boolean) < TOLERANCE
        assert truthy <= 1.0 + TOLERANCE

    def test_reward_vector_is_cached(self, server_solution):
        reward = lambda m: float(m["Psvcup"])  # noqa: E731
        first = server_solution.reward_vector(reward)
        second = server_solution.reward_vector(reward)
        assert first is second
        assert not first.flags.writeable

    def test_reward_cache_is_bounded(self, server_solution):
        from repro.srn.solver import _REWARD_CACHE_SIZE

        for scale in range(_REWARD_CACHE_SIZE + 10):
            server_solution.expected_reward(lambda m, s=scale: s * m["Psvcup"])
        assert len(server_solution._reward_cache) <= _REWARD_CACHE_SIZE


class TestRandomNetParity:
    def test_random_rings_match_loop(self):
        rng = random.Random(20170629)
        for _ in range(8):
            places = rng.randint(2, 5)
            net = _random_ring_net(rng, places=places, tokens=rng.randint(1, 3))
            solution = solve(net)
            coefficients = [rng.uniform(-2.0, 2.0) for _ in range(places)]
            reward = lambda m, c=coefficients: sum(  # noqa: E731
                weight * count for weight, count in zip(c, m.tokens)
            )
            assert abs(
                solution.expected_reward(reward)
                - solution.expected_reward_loop(reward)
            ) < TOLERANCE
            assert abs(
                solution.probability_of(lambda m: m["p0"] >= 1)
                - solution.expected_reward_loop(lambda m: float(m["p0"] >= 1))
            ) < TOLERANCE

    def test_partial_reward_skips_zero_probability_markings(self):
        # expected_reward must keep the legacy loop's guarantee: the
        # reward function is never evaluated where the probability is 0.
        rng = random.Random(7)
        solution = solve(_random_ring_net(rng, places=3, tokens=2))
        probabilities = solution.probabilities.copy()
        probabilities[0] = 0.0
        probabilities /= probabilities.sum()
        masked = SrnSolution(
            graph=solution.graph,
            chain=solution.chain,
            probabilities=probabilities,
        )
        transient_marking = masked.markings[0]

        def reward(marking):
            assert marking != transient_marking, "evaluated on a transient marking"
            return 1.0

        assert abs(
            masked.expected_reward(reward) - masked.expected_reward_loop(reward)
        ) < TOLERANCE

    def test_solve_family_rejects_absorbing_member(self):
        def make(repair_rate):
            net = StochasticRewardNet("two-state")
            net.add_place("up", tokens=1)
            net.add_place("down")
            net.add_timed_transition("fail", rate=1.0)
            net.add_arc("up", "fail")
            net.add_arc("fail", "down")
            net.add_timed_transition("rep", rate=lambda m, _r=repair_rate: _r)
            net.add_arc("down", "rep")
            net.add_arc("rep", "up")
            return net

        with pytest.raises(SrnError, match="absorbing"):
            solve_family([make(2.0), make(0.0)])

    def test_solve_family_matches_independent_solves(self):
        rng = random.Random(42)
        base_rates = [[rng.uniform(0.2, 4.0) for _ in range(4)] for _ in range(5)]

        def make(rates):
            net = StochasticRewardNet("fam")
            names = [f"p{i}" for i in range(4)]
            net.add_place(names[0], tokens=2)
            for name in names[1:]:
                net.add_place(name)
            for i, name in enumerate(names):
                net.add_timed_transition(
                    f"t{i}", rate=lambda m, _r=rates[i], _p=name: _r * m[_p]
                )
                net.add_arc(name, f"t{i}")
                net.add_arc(f"t{i}", names[(i + 1) % 4])
            return net

        nets = [make(rates) for rates in base_rates]
        family = solve_family(nets)
        independent = [solve(net) for net in nets]
        assert len(family) == len(independent)
        for fam, solo in zip(family, independent):
            assert fam.markings == solo.markings
            assert np.max(np.abs(fam.probabilities - solo.probabilities)) < 1e-10
            reward = lambda m: float(m["p0"])  # noqa: E731
            assert abs(
                fam.expected_reward(reward) - solo.expected_reward_loop(reward)
            ) < TOLERANCE

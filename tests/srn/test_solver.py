"""Tests for the SRN solution facade."""

from __future__ import annotations

import pytest

from repro.errors import SrnError
from repro.srn import StochasticRewardNet, solve


def updown_net(failure=2.0, repair=8.0):
    net = StochasticRewardNet()
    net.add_place("up", tokens=1)
    net.add_place("down")
    net.add_timed_transition("fail", rate=failure)
    net.add_arc("up", "fail")
    net.add_arc("fail", "down")
    net.add_timed_transition("repair", rate=repair)
    net.add_arc("down", "repair")
    net.add_arc("repair", "up")
    return net


class TestSteadyState:
    def test_availability(self):
        solution = solve(updown_net())
        assert solution.expected_tokens("up") == pytest.approx(0.8)

    def test_probability_of(self):
        solution = solve(updown_net())
        assert solution.probability_of(lambda m: m["down"] == 1) == pytest.approx(0.2)

    def test_expected_reward(self):
        solution = solve(updown_net())
        value = solution.expected_reward(lambda m: 3.0 if m["up"] else 1.0)
        assert value == pytest.approx(0.8 * 3 + 0.2 * 1)

    def test_throughput_balance(self):
        net = updown_net()
        solution = solve(net)
        # in steady state, flow up->down equals flow down->up
        assert solution.throughput("fail", net) == pytest.approx(
            solution.throughput("repair", net)
        )
        assert solution.throughput("fail", net) == pytest.approx(0.8 * 2.0)

    def test_absorbing_net_rejected(self):
        net = StochasticRewardNet()
        net.add_place("a", tokens=1)
        net.add_place("b")
        net.add_timed_transition("t", rate=1.0)
        net.add_arc("a", "t")
        net.add_arc("t", "b")
        with pytest.raises(SrnError, match="absorbing"):
            solve(net)

    def test_custom_initial_marking(self):
        net = updown_net()
        solution = solve(net, initial=net.marking({"down": 1}))
        # steady state is independent of the start for irreducible nets
        assert solution.expected_tokens("up") == pytest.approx(0.8)


class TestTransientReward:
    def test_transient_starts_at_initial_reward(self):
        solution = solve(updown_net())
        values = solution.transient_reward(lambda m: float(m["up"]), [0.0])
        assert values[0] == pytest.approx(1.0)

    def test_transient_converges_to_steady(self):
        solution = solve(updown_net())
        values = solution.transient_reward(lambda m: float(m["up"]), [100.0])
        assert values[0] == pytest.approx(0.8, abs=1e-8)

    def test_transient_monotone_decay_for_two_state(self):
        solution = solve(updown_net())
        times = [0.0, 0.1, 0.3, 1.0, 3.0]
        values = solution.transient_reward(lambda m: float(m["up"]), times)
        assert all(values[i] >= values[i + 1] - 1e-12 for i in range(len(values) - 1))

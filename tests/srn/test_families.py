"""Tests for signature-keyed family solving (solve_families et al.)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SrnError
from repro.srn import (
    StochasticRewardNet,
    family_signature,
    solve,
    solve_families,
    transient_families,
)
from repro.srn.reachability import exploration_count


def _birth_death_net(name: str, tokens: int, up_rate: float, down_rate: float):
    net = StochasticRewardNet(name)
    net.add_place("Pup", tokens=tokens)
    net.add_place("Pdown")

    def down(m, _r=down_rate):
        return _r * m["Pup"]

    def up(m, _r=up_rate):
        return _r * m["Pdown"]

    net.add_timed_transition("Td", rate=down)
    net.add_arc("Pup", "Td")
    net.add_arc("Td", "Pdown")
    net.add_timed_transition("Tu", rate=up)
    net.add_arc("Pdown", "Tu")
    net.add_arc("Tu", "Pup")
    return net


class TestFamilySignature:
    def test_rate_values_do_not_affect_signature(self):
        a = _birth_death_net("a", 2, 1.0, 3.0)
        b = _birth_death_net("b", 2, 9.0, 0.5)
        assert family_signature(a) == family_signature(b)

    def test_token_counts_affect_signature(self):
        a = _birth_death_net("a", 2, 1.0, 3.0)
        b = _birth_death_net("b", 3, 1.0, 3.0)
        assert family_signature(a) != family_signature(b)


class TestSolveFamilies:
    def test_bitwise_equal_to_per_net_solve(self):
        nets = [
            _birth_death_net("a", 2, 1.0, 3.0),
            _birth_death_net("b", 3, 2.0, 5.0),
            _birth_death_net("c", 2, 7.0, 0.25),
            _birth_death_net("d", 3, 0.1, 11.0),
        ]
        grouped = solve_families(nets)
        for net, solution in zip(nets, grouped):
            reference = solve(net)
            assert (
                solution.probabilities.tobytes()
                == reference.probabilities.tobytes()
            )
            assert solution.markings == reference.markings

    def test_one_exploration_per_family(self):
        nets = [
            _birth_death_net(f"n{i}", tokens, 1.0 + i, 2.0 + i)
            for i, tokens in enumerate([2, 3, 2, 3, 2])
        ]
        before = exploration_count()
        solve_families(nets)
        assert exploration_count() - before == 2  # two distinct signatures

    def test_results_in_input_order(self):
        nets = [
            _birth_death_net("a", 3, 1.0, 1.0),
            _birth_death_net("b", 2, 1.0, 1.0),
            _birth_death_net("c", 3, 2.0, 2.0),
        ]
        solutions = solve_families(nets)
        assert [len(s.markings) for s in solutions] == [4, 3, 4]

    def test_empty_population(self):
        assert solve_families([]) == []

    def test_absorbing_member_rejected(self):
        # A zero up-rate makes the all-down marking absorbing.
        nets = [
            _birth_death_net("ok", 2, 1.0, 1.0),
            _birth_death_net("absorbing", 2, 0.0, 1.0),
        ]
        with pytest.raises(SrnError):
            solve_families(nets)


class TestTransientFamilies:
    def test_bitwise_equal_to_per_net_transient(self):
        times = [0.0, 0.5, 2.0, 10.0]
        nets = [
            _birth_death_net("a", 2, 1.0, 3.0),
            _birth_death_net("b", 3, 2.0, 5.0),
            _birth_death_net("c", 2, 7.0, 0.25),
        ]

        def reward(marking):
            return float(marking["Pup"])

        grouped = transient_families(nets, reward, times)
        for net, curve in zip(nets, grouped):
            solution = solve(net)
            reference = solution.transient_reward(reward, times)
            assert curve.tobytes() == reference.tobytes()

    def test_exploration_shared_across_members(self):
        times = [0.0, 1.0]
        nets = [
            _birth_death_net(f"n{i}", 2, 1.0 + i, 2.0) for i in range(4)
        ]
        before = exploration_count()
        transient_families(nets, lambda m: 1.0, times)
        assert exploration_count() - before == 1

    def test_results_align_with_inputs(self):
        times = [0.0]
        nets = [
            _birth_death_net("a", 2, 1.0, 1.0),
            _birth_death_net("b", 4, 1.0, 1.0),
        ]
        curves = transient_families(nets, lambda m: float(m["Pup"]), times)
        assert curves[0][0] == pytest.approx(2.0)
        assert curves[1][0] == pytest.approx(4.0)
        assert all(isinstance(c, np.ndarray) for c in curves)

"""Tests for transient analysis over families of structurally identical nets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SrnError
from repro.srn import StochasticRewardNet, solve, transient_family


def updown_net(failure: float, repair: float, servers: int = 2):
    net = StochasticRewardNet(f"updown-{failure}-{repair}")
    net.add_place("up", tokens=servers)
    net.add_place("down")
    net.add_timed_transition("fail", rate=lambda m, _r=failure: _r * m["up"])
    net.add_arc("up", "fail")
    net.add_arc("fail", "down")
    net.add_timed_transition("repair", rate=lambda m, _r=repair: _r * m["down"])
    net.add_arc("down", "repair")
    net.add_arc("repair", "up")
    return net


def death_net(rate: float, tokens: int = 3):
    """An absorbing net: steady-state analysis is ill-posed on it."""
    net = StochasticRewardNet(f"death-{rate}")
    net.add_place("alive", tokens=tokens)
    net.add_place("dead")
    net.add_timed_transition("die", rate=lambda m, _r=rate: _r * m["alive"])
    net.add_arc("alive", "die")
    net.add_arc("die", "dead")
    return net


class TestTransientFamily:
    def test_matches_per_net_solution_curves(self):
        nets = [updown_net(1.0, 4.0), updown_net(2.0, 4.0), updown_net(1.0, 9.0)]
        times = [0.0, 0.3, 1.5, 80.0]
        reward = lambda m: float(m["up"])  # noqa: E731
        family = transient_family(nets, reward, times)
        for net, curve in zip(nets, family):
            direct = solve(net).transient_reward(reward, times)
            assert curve == pytest.approx(direct, abs=1e-9)

    def test_multiple_rewards_share_one_pass(self):
        nets = [updown_net(1.0, 4.0), updown_net(3.0, 2.0)]
        rewards = [
            lambda m: float(m["up"]),
            lambda m: float(m["down"]),
            lambda m: float(m["up"] == 2),
        ]
        curves = transient_family(nets, rewards, [0.0, 1.0])
        for curve in curves:
            assert curve.shape == (2, 3)
            # token conservation: up + down == 2 at every time
            assert curve[:, 0] + curve[:, 1] == pytest.approx([2.0, 2.0])
            assert curve[0, 2] == pytest.approx(1.0)  # starts all-up

    def test_absorbing_family_allowed(self):
        # solve() refuses absorbing nets; transient_family must not.
        nets = [death_net(0.5), death_net(2.0)]
        with pytest.raises(SrnError):
            solve(nets[0])
        done = lambda m: float(m["alive"] == 0)  # noqa: E731
        curves = transient_family(nets, done, [0.0, 1.0, 500.0])
        for curve in curves:
            assert curve[0] == 0.0
            assert np.all(np.diff(curve) >= -1e-12)
            assert curve[-1] == pytest.approx(1.0, abs=1e-8)
        # the faster death absorbs more mass at t = 1
        assert curves[1][1] > curves[0][1]

    def test_long_horizon_matches_steady_state(self):
        nets = [updown_net(1.0, 4.0), updown_net(2.0, 3.0)]
        reward = lambda m: float(m["up"])  # noqa: E731
        curves = transient_family(nets, reward, [5000.0])
        for net, curve in zip(nets, curves):
            steady = solve(net).expected_reward(reward)
            assert curve[0] == pytest.approx(steady, abs=1e-8)

    def test_structure_mismatch_rejected(self):
        other = StochasticRewardNet("different")
        other.add_place("up", tokens=2)
        other.add_timed_transition("noop", rate=1.0)
        other.add_arc("up", "noop")
        other.add_arc("noop", "up")
        with pytest.raises(SrnError):
            transient_family(
                [updown_net(1.0, 4.0), other], lambda m: 1.0, [0.0]
            )

    def test_empty_family(self):
        assert transient_family([], lambda m: 1.0, [0.0]) == []

    def test_no_rewards_rejected(self):
        with pytest.raises(SrnError):
            transient_family([updown_net(1.0, 4.0)], [], [0.0])

    def test_vanishing_fallback(self):
        def with_immediate(weight: float):
            net = StochasticRewardNet(f"vanishing-{weight}")
            net.add_place("start", tokens=1)
            net.add_place("a")
            net.add_place("b")
            net.add_immediate_transition("choose_a", weight=weight)
            net.add_arc("start", "choose_a")
            net.add_arc("choose_a", "a")
            net.add_immediate_transition("choose_b", weight=1.0)
            net.add_arc("start", "choose_b")
            net.add_arc("choose_b", "b")
            net.add_timed_transition("swap", rate=1.0)
            net.add_arc("a", "swap")
            net.add_arc("swap", "b")
            net.add_timed_transition("back", rate=1.0)
            net.add_arc("b", "back")
            net.add_arc("back", "a")
            return net

        nets = [with_immediate(1.0), with_immediate(3.0)]
        reward = lambda m: float(m["a"])  # noqa: E731
        curves = transient_family(nets, reward, [0.0])
        # initial vanishing marking splits mass by immediate weights
        assert curves[0][0] == pytest.approx(0.5)
        assert curves[1][0] == pytest.approx(0.75)

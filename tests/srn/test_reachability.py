"""Tests for reachability generation and vanishing-marking elimination."""

from __future__ import annotations

import pytest

from repro.errors import SrnError, StateSpaceError
from repro.srn import StochasticRewardNet, explore


def updown_net():
    net = StochasticRewardNet()
    net.add_place("up", tokens=1)
    net.add_place("down")
    net.add_timed_transition("fail", rate=2.0)
    net.add_arc("up", "fail")
    net.add_arc("fail", "down")
    net.add_timed_transition("repair", rate=8.0)
    net.add_arc("down", "repair")
    net.add_arc("repair", "up")
    return net


class TestTangibleOnly:
    def test_two_states(self):
        graph = explore(updown_net())
        assert graph.number_of_states == 2
        assert graph.vanishing_count == 0

    def test_rates_preserved(self):
        graph = explore(updown_net())
        chain = graph.to_ctmc()
        up = next(m for m in graph.tangible if m["up"] == 1)
        down = next(m for m in graph.tangible if m["down"] == 1)
        assert chain.rate(up, down) == 2.0
        assert chain.rate(down, up) == 8.0

    def test_initial_distribution_on_tangible_start(self):
        graph = explore(updown_net())
        assert graph.initial_distribution[0] == 1.0

    def test_token_counting_birth_death(self):
        net = StochasticRewardNet()
        net.add_place("up", tokens=3)
        net.add_place("down")
        net.add_timed_transition("fail", rate=lambda m: 1.0 * m["up"])
        net.add_arc("up", "fail")
        net.add_arc("fail", "down")
        net.add_timed_transition("repair", rate=lambda m: 2.0 * m["down"])
        net.add_arc("down", "repair")
        net.add_arc("repair", "up")
        graph = explore(net)
        assert graph.number_of_states == 4  # up in {0,1,2,3}

    def test_max_markings_enforced(self):
        net = updown_net()
        with pytest.raises(StateSpaceError):
            explore(net, max_markings=1)


class TestVanishingElimination:
    def test_weighted_branch(self):
        """a --1.0--> b; b branches 3:1 to c and d (immediate)."""
        net = StochasticRewardNet()
        for name in ("a", "b", "c", "d"):
            net.add_place(name, tokens=1 if name == "a" else 0)
        net.add_timed_transition("t", rate=1.0)
        net.add_arc("a", "t")
        net.add_arc("t", "b")
        net.add_immediate_transition("i1", weight=3.0)
        net.add_arc("b", "i1")
        net.add_arc("i1", "c")
        net.add_immediate_transition("i2", weight=1.0)
        net.add_arc("b", "i2")
        net.add_arc("i2", "d")
        net.add_timed_transition("back1", rate=1.0)
        net.add_arc("c", "back1")
        net.add_arc("back1", "a")
        net.add_timed_transition("back2", rate=1.0)
        net.add_arc("d", "back2")
        net.add_arc("back2", "a")

        graph = explore(net)
        assert graph.vanishing_count == 1
        chain = graph.to_ctmc()
        a = next(m for m in graph.tangible if m["a"] == 1)
        c = next(m for m in graph.tangible if m["c"] == 1)
        d = next(m for m in graph.tangible if m["d"] == 1)
        assert chain.rate(a, c) == pytest.approx(0.75)
        assert chain.rate(a, d) == pytest.approx(0.25)

    def test_immediate_chain(self):
        """Two immediates in sequence collapse into one effective rate."""
        net = StochasticRewardNet()
        for name, tokens in (("a", 1), ("b", 0), ("c", 0), ("d", 0)):
            net.add_place(name, tokens=tokens)
        net.add_timed_transition("t", rate=5.0)
        net.add_arc("a", "t")
        net.add_arc("t", "b")
        net.add_immediate_transition("i1")
        net.add_arc("b", "i1")
        net.add_arc("i1", "c")
        net.add_immediate_transition("i2")
        net.add_arc("c", "i2")
        net.add_arc("i2", "d")
        net.add_timed_transition("back", rate=1.0)
        net.add_arc("d", "back")
        net.add_arc("back", "a")
        graph = explore(net)
        assert graph.vanishing_count == 2
        chain = graph.to_ctmc()
        a = next(m for m in graph.tangible if m["a"] == 1)
        d = next(m for m in graph.tangible if m["d"] == 1)
        assert chain.rate(a, d) == pytest.approx(5.0)

    def test_vanishing_cycle_with_exit(self):
        """Immediate cycle b <-> c with a weighted exit still resolves."""
        net = StochasticRewardNet()
        for name, tokens in (("a", 1), ("b", 0), ("c", 0), ("d", 0)):
            net.add_place(name, tokens=tokens)
        net.add_timed_transition("t", rate=2.0)
        net.add_arc("a", "t")
        net.add_arc("t", "b")
        # b -> c (weight 1); c -> b (weight 1) and c -> d (weight 1)
        net.add_immediate_transition("bc", weight=1.0)
        net.add_arc("b", "bc")
        net.add_arc("bc", "c")
        net.add_immediate_transition("cb", weight=1.0)
        net.add_arc("c", "cb")
        net.add_arc("cb", "b")
        net.add_immediate_transition("cd", weight=1.0)
        net.add_arc("c", "cd")
        net.add_arc("cd", "d")
        net.add_timed_transition("back", rate=1.0)
        net.add_arc("d", "back")
        net.add_arc("back", "a")
        graph = explore(net)
        chain = graph.to_ctmc()
        a = next(m for m in graph.tangible if m["a"] == 1)
        d = next(m for m in graph.tangible if m["d"] == 1)
        # the cycle always eventually exits to d, so the full rate arrives
        assert chain.rate(a, d) == pytest.approx(2.0)

    def test_timeless_trap_detected(self):
        """An immediate cycle with no exit must raise."""
        net = StochasticRewardNet()
        for name, tokens in (("a", 1), ("b", 0), ("c", 0)):
            net.add_place(name, tokens=tokens)
        net.add_timed_transition("t", rate=1.0)
        net.add_arc("a", "t")
        net.add_arc("t", "b")
        net.add_immediate_transition("bc")
        net.add_arc("b", "bc")
        net.add_arc("bc", "c")
        net.add_immediate_transition("cb")
        net.add_arc("c", "cb")
        net.add_arc("cb", "b")
        with pytest.raises(SrnError):
            explore(net)

    def test_vanishing_initial_marking(self):
        """An immediate enabled at t=0 spreads the initial distribution."""
        net = StochasticRewardNet()
        for name, tokens in (("start", 1), ("left", 0), ("right", 0)):
            net.add_place(name, tokens=tokens)
        net.add_immediate_transition("go_left", weight=1.0)
        net.add_arc("start", "go_left")
        net.add_arc("go_left", "left")
        net.add_immediate_transition("go_right", weight=3.0)
        net.add_arc("start", "go_right")
        net.add_arc("go_right", "right")
        net.add_timed_transition("swap1", rate=1.0)
        net.add_arc("left", "swap1")
        net.add_arc("swap1", "right")
        net.add_timed_transition("swap2", rate=1.0)
        net.add_arc("right", "swap2")
        net.add_arc("swap2", "left")
        graph = explore(net)
        assert graph.initial_distribution == pytest.approx([0.25, 0.75])


class TestSparseGenerator:
    """``ReachabilityGraph.generator()`` builds the CSR generator
    directly from the rate table; it must be exactly the matrix the
    ``to_ctmc()`` round-trip produces."""

    def _parity(self, net):
        import numpy as np

        graph = explore(net)
        direct = graph.generator().toarray()
        via_chain = graph.to_ctmc().generator().toarray()
        assert np.array_equal(direct, via_chain)

    def test_updown_parity(self):
        self._parity(updown_net())

    def test_birth_death_parity(self):
        net = StochasticRewardNet()
        net.add_place("up", tokens=4)
        net.add_place("down")
        net.add_timed_transition("fail", rate=lambda m: 0.7 * m["up"])
        net.add_arc("up", "fail")
        net.add_arc("fail", "down")
        net.add_timed_transition("repair", rate=lambda m: 1.9 * m["down"])
        net.add_arc("down", "repair")
        net.add_arc("repair", "up")
        self._parity(net)

    def test_generator_rows_sum_to_zero(self):
        import numpy as np

        graph = explore(updown_net())
        q = graph.generator()
        rows = np.asarray(q.sum(axis=1)).ravel()
        np.testing.assert_allclose(rows, 0.0, atol=0.0)

"""Tests for SRN definition and firing semantics."""

from __future__ import annotations

import pytest

from repro.errors import SrnError
from repro.srn import StochasticRewardNet


def updown_net():
    net = StochasticRewardNet("updown")
    net.add_place("up", tokens=1)
    net.add_place("down")
    net.add_timed_transition("fail", rate=2.0)
    net.add_arc("up", "fail")
    net.add_arc("fail", "down")
    net.add_timed_transition("repair", rate=8.0)
    net.add_arc("down", "repair")
    net.add_arc("repair", "up")
    return net


class TestConstruction:
    def test_duplicate_place_rejected(self):
        net = StochasticRewardNet()
        net.add_place("p")
        with pytest.raises(SrnError):
            net.add_place("p")

    def test_duplicate_transition_rejected(self):
        net = StochasticRewardNet()
        net.add_place("p")
        net.add_timed_transition("t", 1.0)
        with pytest.raises(SrnError):
            net.add_immediate_transition("t")

    def test_place_transition_namespace_shared(self):
        net = StochasticRewardNet()
        net.add_place("x")
        with pytest.raises(SrnError):
            net.add_timed_transition("x", 1.0)
        net.add_timed_transition("t", 1.0)
        with pytest.raises(SrnError):
            net.add_place("t")

    def test_arc_requires_place_and_transition(self):
        net = StochasticRewardNet()
        net.add_place("p")
        net.add_place("q")
        net.add_timed_transition("t", 1.0)
        with pytest.raises(SrnError):
            net.add_arc("p", "q")  # place -> place
        with pytest.raises(SrnError):
            net.add_arc("t", "t")  # transition -> transition

    def test_zero_rate_rejected(self):
        from repro.errors import ValidationError

        net = StochasticRewardNet()
        net.add_place("p")
        with pytest.raises(ValidationError):
            net.add_timed_transition("t", 0.0)

    def test_initial_marking(self):
        net = updown_net()
        assert net.initial_marking().nonzero() == {"up": 1}

    def test_marking_from_dict(self):
        net = updown_net()
        marking = net.marking({"down": 1})
        assert marking["down"] == 1
        assert marking["up"] == 0

    def test_marking_unknown_place_rejected(self):
        with pytest.raises(SrnError):
            updown_net().marking({"ghost": 1})

    def test_validate_catches_arcless_transition(self):
        net = StochasticRewardNet()
        net.add_place("p", tokens=1)
        net.add_timed_transition("t", 1.0)
        with pytest.raises(SrnError, match="no arcs"):
            net.validate()

    def test_transition_lookup(self):
        net = updown_net()
        assert net.transition("fail").name == "fail"
        with pytest.raises(SrnError):
            net.transition("ghost")


class TestEnabling:
    def test_enabled_transitions_in_initial_marking(self):
        net = updown_net()
        enabled = net.enabled_transitions(net.initial_marking())
        assert [t.name for t in enabled] == ["fail"]

    def test_guard_disables(self):
        net = StochasticRewardNet()
        net.add_place("p", tokens=1)
        net.add_timed_transition("t", 1.0, guard=lambda m: m["p"] >= 2)
        net.add_arc("p", "t")
        net.add_arc("t", "p")
        assert net.enabled_transitions(net.initial_marking()) == []

    def test_inhibitor_arc_disables(self):
        net = StochasticRewardNet()
        net.add_place("p", tokens=1)
        net.add_place("blocker", tokens=1)
        net.add_place("q")
        net.add_timed_transition("t", 1.0)
        net.add_arc("p", "t")
        net.add_arc("t", "q")
        net.add_inhibitor_arc("blocker", "t")
        assert net.enabled_transitions(net.initial_marking()) == []

    def test_inhibitor_multiplicity(self):
        net = StochasticRewardNet()
        net.add_place("p", tokens=1)
        net.add_place("blocker", tokens=1)
        net.add_place("q")
        net.add_timed_transition("t", 1.0)
        net.add_arc("p", "t")
        net.add_arc("t", "q")
        net.add_inhibitor_arc("blocker", "t", multiplicity=2)
        assert [t.name for t in net.enabled_transitions(net.initial_marking())] == ["t"]

    def test_immediate_priority_filtering(self):
        net = StochasticRewardNet()
        net.add_place("p", tokens=1)
        net.add_place("q")
        net.add_place("r")
        net.add_immediate_transition("low", priority=0)
        net.add_arc("p", "low")
        net.add_arc("low", "q")
        net.add_immediate_transition("high", priority=5)
        net.add_arc("p", "high")
        net.add_arc("high", "r")
        enabled = net.enabled_transitions(net.initial_marking())
        assert [t.name for t in enabled] == ["high"]

    def test_immediate_preempts_timed(self):
        net = StochasticRewardNet()
        net.add_place("p", tokens=1)
        net.add_place("q")
        net.add_timed_transition("slow", 1.0)
        net.add_arc("p", "slow")
        net.add_arc("slow", "q")
        net.add_immediate_transition("now")
        net.add_arc("p", "now")
        net.add_arc("now", "q")
        enabled = net.enabled_transitions(net.initial_marking())
        assert [t.name for t in enabled] == ["now"]
        assert net.is_vanishing(net.initial_marking())

    def test_arc_multiplicity(self):
        net = StochasticRewardNet()
        net.add_place("p", tokens=1)
        net.add_place("q")
        net.add_timed_transition("t", 1.0)
        net.add_arc("p", "t", multiplicity=2)
        net.add_arc("t", "q")
        assert net.enabled_transitions(net.initial_marking()) == []
        assert [
            t.name for t in net.enabled_transitions(net.marking({"p": 2}))
        ] == ["t"]


class TestFiring:
    def test_fire_moves_tokens(self):
        net = updown_net()
        marking = net.initial_marking()
        after = net.fire(marking, net.transition("fail"))
        assert after.nonzero() == {"down": 1}

    def test_fire_disabled_raises(self):
        net = updown_net()
        with pytest.raises(SrnError):
            net.fire(net.initial_marking(), net.transition("repair"))

    def test_marking_dependent_rate(self):
        net = StochasticRewardNet()
        net.add_place("p", tokens=3)
        net.add_place("q")
        net.add_timed_transition("t", rate=lambda m: 2.0 * m["p"])
        net.add_arc("p", "t")
        net.add_arc("t", "q")
        assert net.transition("t").rate_in(net.initial_marking()) == 6.0

    def test_invalid_dynamic_rate_raises(self):
        net = StochasticRewardNet()
        net.add_place("p", tokens=1)
        net.add_place("q")
        net.add_timed_transition("t", rate=lambda m: -1.0)
        net.add_arc("p", "t")
        net.add_arc("t", "q")
        with pytest.raises(SrnError):
            net.transition("t").rate_in(net.initial_marking())

    def test_rate_of_immediate_raises(self):
        net = StochasticRewardNet()
        net.add_place("p", tokens=1)
        net.add_place("q")
        net.add_immediate_transition("i")
        net.add_arc("p", "i")
        net.add_arc("i", "q")
        with pytest.raises(SrnError):
            net.transition("i").rate_in(net.initial_marking())

"""Tests for markings."""

from __future__ import annotations

import pytest

from repro.errors import SrnError
from repro.srn import Marking

INDEX = {"a": 0, "b": 1, "c": 2}


class TestAccess:
    def test_by_name(self):
        marking = Marking(INDEX, (1, 0, 2))
        assert marking["a"] == 1
        assert marking["c"] == 2

    def test_by_position(self):
        marking = Marking(INDEX, (1, 0, 2))
        assert marking[1] == 0

    def test_unknown_place_raises(self):
        marking = Marking(INDEX, (1, 0, 2))
        with pytest.raises(SrnError):
            marking["zz"]

    def test_get_with_default(self):
        marking = Marking(INDEX, (1, 0, 2))
        assert marking.get("zz", 7) == 7
        assert marking.get("a") == 1

    def test_length_mismatch_rejected(self):
        with pytest.raises(SrnError):
            Marking(INDEX, (1, 0))

    def test_as_dict_and_nonzero(self):
        marking = Marking(INDEX, (1, 0, 2))
        assert marking.as_dict() == {"a": 1, "b": 0, "c": 2}
        assert marking.nonzero() == {"a": 1, "c": 2}

    def test_places_in_index_order(self):
        marking = Marking(INDEX, (0, 0, 0))
        assert marking.places() == ["a", "b", "c"]

    def test_iteration_and_len(self):
        marking = Marking(INDEX, (1, 0, 2))
        assert list(marking) == [1, 0, 2]
        assert len(marking) == 3


class TestIdentity:
    def test_equality_by_tokens(self):
        assert Marking(INDEX, (1, 0, 2)) == Marking(INDEX, (1, 0, 2))
        assert Marking(INDEX, (1, 0, 2)) != Marking(INDEX, (1, 0, 3))

    def test_hashable(self):
        seen = {Marking(INDEX, (1, 0, 2))}
        assert Marking(INDEX, (1, 0, 2)) in seen

    def test_not_equal_to_tuple(self):
        assert Marking(INDEX, (1, 0, 2)) != (1, 0, 2)


class TestDelta:
    def test_with_delta(self):
        marking = Marking(INDEX, (1, 0, 2))
        moved = marking.with_delta((-1, 1, 0))
        assert moved.tokens == (0, 1, 2)
        assert marking.tokens == (1, 0, 2)  # immutable

    def test_negative_tokens_rejected(self):
        marking = Marking(INDEX, (1, 0, 2))
        with pytest.raises(SrnError):
            marking.with_delta((-2, 0, 0))

    def test_repr_shows_nonzero(self):
        assert "a=1" in repr(Marking(INDEX, (1, 0, 0)))

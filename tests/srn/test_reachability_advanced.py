"""Advanced reachability cases: multi-token nets, guards, multiplicities."""

from __future__ import annotations

import pytest

from repro.ctmc import birth_death_steady_state
from repro.srn import StochasticRewardNet, explore, solve


class TestMultiToken:
    def test_marking_dependent_birth_death_matches_closed_form(self):
        """N tokens with rate k*lambda down / k*mu up == binomial chain."""
        n, lam, mu = 3, 0.4, 2.0
        net = StochasticRewardNet()
        net.add_place("up", tokens=n)
        net.add_place("down")
        net.add_timed_transition("fail", rate=lambda m: lam * m["up"])
        net.add_arc("up", "fail")
        net.add_arc("fail", "down")
        net.add_timed_transition("repair", rate=lambda m: mu * m["down"])
        net.add_arc("down", "repair")
        net.add_arc("repair", "up")
        solution = solve(net)

        births = [lam * (n - k) for k in range(n)]  # down-count increases
        deaths = [mu * (k + 1) for k in range(n)]
        pi = birth_death_steady_state(births, deaths)
        for down_count, expected in enumerate(pi):
            actual = solution.probability_of(
                lambda m, dc=down_count: m["down"] == dc
            )
            assert actual == pytest.approx(expected, abs=1e-10)

    def test_two_independent_tiers_factorise(self):
        """The joint steady state of independent tiers is a product."""
        net = StochasticRewardNet()
        for tier, (lam, mu) in {"a": (0.3, 1.0), "b": (0.7, 2.0)}.items():
            net.add_place(f"{tier}_up", tokens=1)
            net.add_place(f"{tier}_down")
            net.add_timed_transition(f"{tier}_fail", rate=lam)
            net.add_arc(f"{tier}_up", f"{tier}_fail")
            net.add_arc(f"{tier}_fail", f"{tier}_down")
            net.add_timed_transition(f"{tier}_repair", rate=mu)
            net.add_arc(f"{tier}_down", f"{tier}_repair")
            net.add_arc(f"{tier}_repair", f"{tier}_up")
        solution = solve(net)
        p_a = 1.0 / (1.0 + 0.3)
        p_b = 2.0 / (2.0 + 0.7)
        joint = solution.probability_of(
            lambda m: m["a_up"] == 1 and m["b_up"] == 1
        )
        assert joint == pytest.approx(p_a * p_b, abs=1e-10)


class TestArcMultiplicity:
    def test_batch_consumption(self):
        """A transition consuming two tokens at once halves the up-count
        granularity: states are up in {0, 2} plus the repair ladder."""
        net = StochasticRewardNet()
        net.add_place("up", tokens=2)
        net.add_place("down")
        net.add_timed_transition("double_fail", rate=1.0)
        net.add_arc("up", "double_fail", multiplicity=2)
        net.add_arc("double_fail", "down", multiplicity=2)
        net.add_timed_transition("repair", rate=lambda m: 3.0 * m["down"])
        net.add_arc("down", "repair")
        net.add_arc("repair", "up")
        graph = explore(net)
        up_counts = sorted({m["up"] for m in graph.tangible})
        assert up_counts == [0, 1, 2]
        # double_fail needs two tokens, so from up == 1 the only move is
        # a repair back to up == 2 — never a drop to up == 0
        chain = graph.to_ctmc()
        one_up = next(m for m in graph.tangible if m["up"] == 1)
        zero_up = next(m for m in graph.tangible if m["up"] == 0)
        assert chain.rate(one_up, zero_up) == 0.0

    def test_guard_prunes_state_space(self):
        net = StochasticRewardNet()
        net.add_place("p", tokens=2)
        net.add_place("q")
        net.add_timed_transition(
            "move", rate=1.0, guard=lambda m: m["q"] == 0
        )
        net.add_arc("p", "move")
        net.add_arc("move", "q")
        net.add_timed_transition("back", rate=1.0)
        net.add_arc("q", "back")
        net.add_arc("back", "p")
        graph = explore(net)
        # q can never exceed 1 because the guard blocks the second move
        assert all(m["q"] <= 1 for m in graph.tangible)


class TestCustomInitialMarking:
    def test_initial_distribution_respects_override(self):
        net = StochasticRewardNet()
        net.add_place("a", tokens=1)
        net.add_place("b")
        net.add_timed_transition("ab", rate=1.0)
        net.add_arc("a", "ab")
        net.add_arc("ab", "b")
        net.add_timed_transition("ba", rate=1.0)
        net.add_arc("b", "ba")
        net.add_arc("ba", "a")
        graph = explore(net, initial=net.marking({"b": 1}))
        assert graph.tangible[0].nonzero() == {"b": 1}
        assert graph.initial_distribution[0] == 1.0

"""Simulation cross-validates the analytic pipeline."""

from __future__ import annotations

import pytest

from repro.errors import SrnError
from repro.srn import StochasticRewardNet, simulate, solve


def updown_net(failure=2.0, repair=8.0):
    net = StochasticRewardNet()
    net.add_place("up", tokens=1)
    net.add_place("down")
    net.add_timed_transition("fail", rate=failure)
    net.add_arc("up", "fail")
    net.add_arc("fail", "down")
    net.add_timed_transition("repair", rate=repair)
    net.add_arc("down", "repair")
    net.add_arc("repair", "up")
    return net


class TestAgainstAnalytic:
    def test_two_state_availability(self):
        net = updown_net()
        result = simulate(net, lambda m: float(m["up"]), horizon=3000.0, seed=7)
        assert result.time_averaged_reward == pytest.approx(0.8, abs=0.02)

    def test_confidence_interval_brackets_analytic(self):
        net = updown_net()
        result = simulate(net, lambda m: float(m["up"]), horizon=5000.0, seed=3)
        low, high = result.confidence_interval
        assert low <= 0.8 <= high

    def test_net_with_immediates(self):
        net = StochasticRewardNet()
        for name, tokens in (("a", 1), ("b", 0), ("c", 0)):
            net.add_place(name, tokens=tokens)
        net.add_timed_transition("t1", rate=1.0)
        net.add_arc("a", "t1")
        net.add_arc("t1", "b")
        net.add_immediate_transition("i", weight=1.0)
        net.add_arc("b", "i")
        net.add_arc("i", "c")
        net.add_timed_transition("t2", rate=1.0)
        net.add_arc("c", "t2")
        net.add_arc("t2", "a")
        analytic = solve(net).expected_tokens("a")
        simulated = simulate(
            net, lambda m: float(m["a"]), horizon=4000.0, seed=11
        ).time_averaged_reward
        assert simulated == pytest.approx(analytic, abs=0.02)

    def test_deterministic_with_seed(self):
        net = updown_net()
        first = simulate(net, lambda m: float(m["up"]), horizon=100.0, seed=5)
        second = simulate(net, lambda m: float(m["up"]), horizon=100.0, seed=5)
        assert first.time_averaged_reward == second.time_averaged_reward
        assert first.transitions_fired == second.transitions_fired


class TestInterface:
    def test_zero_horizon_rejected(self):
        with pytest.raises(SrnError):
            simulate(updown_net(), lambda m: 1.0, horizon=0.0)

    def test_bad_batches_rejected(self):
        with pytest.raises(SrnError):
            simulate(updown_net(), lambda m: 1.0, horizon=10.0, batches=0)

    def test_warmup_excluded(self):
        net = updown_net()
        result = simulate(
            net, lambda m: float(m["up"]), horizon=2000.0, seed=1, warmup=10.0
        )
        assert result.time_averaged_reward == pytest.approx(0.8, abs=0.03)

    def test_batches_reported(self):
        result = simulate(
            updown_net(), lambda m: float(m["up"]), horizon=500.0, seed=2, batches=5
        )
        assert len(result.batches) == 5

    def test_dead_marking_freezes_reward(self):
        net = StochasticRewardNet()
        net.add_place("a", tokens=1)
        net.add_place("b")
        net.add_timed_transition("t", rate=100.0)
        net.add_arc("a", "t")
        net.add_arc("t", "b")
        result = simulate(net, lambda m: float(m["b"]), horizon=50.0, seed=0)
        # the system is absorbed in b almost immediately
        assert result.time_averaged_reward == pytest.approx(1.0, abs=0.01)

    def test_timeless_trap_detected(self):
        net = StochasticRewardNet()
        net.add_place("a", tokens=1)
        net.add_place("b")
        net.add_immediate_transition("i1")
        net.add_arc("a", "i1")
        net.add_arc("i1", "b")
        net.add_immediate_transition("i2")
        net.add_arc("b", "i2")
        net.add_arc("i2", "a")
        with pytest.raises(SrnError, match="immediate"):
            simulate(net, lambda m: 1.0, horizon=1.0)

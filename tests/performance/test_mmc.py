"""Tests for the M/M/c queue against textbook results."""

from __future__ import annotations

import pytest

from repro.errors import EvaluationError, ValidationError
from repro.performance import MmcQueue


class TestMm1:
    """M/M/1 closed forms: W = 1/(mu - lambda), Lq = rho^2/(1-rho)."""

    def test_response_time(self):
        queue = MmcQueue(arrival_rate=8.0, service_rate=10.0, servers=1)
        assert queue.mean_response_time() == pytest.approx(1.0 / (10.0 - 8.0))

    def test_queue_length(self):
        queue = MmcQueue(arrival_rate=8.0, service_rate=10.0, servers=1)
        rho = 0.8
        assert queue.mean_queue_length() == pytest.approx(rho**2 / (1 - rho))

    def test_erlang_c_equals_rho_for_single_server(self):
        queue = MmcQueue(arrival_rate=3.0, service_rate=10.0, servers=1)
        assert queue.erlang_c() == pytest.approx(0.3)

    def test_littles_law(self):
        queue = MmcQueue(arrival_rate=8.0, service_rate=10.0, servers=1)
        assert queue.mean_jobs_in_system() == pytest.approx(
            queue.arrival_rate * queue.mean_response_time()
        )


class TestMmc:
    def test_mm2_textbook_case(self):
        """lambda=3, mu=2, c=2: rho=0.75, C(2, 1.5) = 0.6428..."""
        queue = MmcQueue(arrival_rate=3.0, service_rate=2.0, servers=2)
        # Erlang C closed form: ((a^c/c!)/(1-rho)) / (sum + tail)
        assert queue.erlang_c() == pytest.approx(9.0 / 14.0, abs=1e-9)
        expected_wq = (9.0 / 14.0) / (2 * 2.0 - 3.0)
        assert queue.mean_waiting_time() == pytest.approx(expected_wq, abs=1e-9)

    def test_more_servers_reduce_waiting(self):
        waits = [
            MmcQueue(arrival_rate=8.0, service_rate=10.0, servers=c).mean_waiting_time()
            for c in (1, 2, 3)
        ]
        assert waits[0] > waits[1] > waits[2]

    def test_response_time_bounded_below_by_service_time(self):
        queue = MmcQueue(arrival_rate=1.0, service_rate=10.0, servers=4)
        assert queue.mean_response_time() >= 1.0 / 10.0


class TestStability:
    def test_unstable_queue_flagged(self):
        queue = MmcQueue(arrival_rate=25.0, service_rate=10.0, servers=2)
        assert not queue.is_stable
        with pytest.raises(EvaluationError):
            queue.mean_response_time()

    def test_boundary_unstable(self):
        queue = MmcQueue(arrival_rate=20.0, service_rate=10.0, servers=2)
        assert not queue.is_stable

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValidationError):
            MmcQueue(arrival_rate=0.0, service_rate=1.0, servers=1)
        with pytest.raises(ValidationError):
            MmcQueue(arrival_rate=1.0, service_rate=1.0, servers=0)

"""Tests for availability-weighted queueing performance."""

from __future__ import annotations

import pytest

from repro.errors import EvaluationError
from repro.performance import MmcQueue, expected_response_time


@pytest.fixture(scope="module")
def web_model(availability_evaluator, example_design):
    return availability_evaluator.network_model(example_design)


class TestExpectedResponseTime:
    def test_close_to_full_capacity_value(self, web_model):
        """With COA ~0.997 the mixture sits near the all-up response time."""
        result = expected_response_time(
            web_model, "web", arrival_rate=100.0, service_rate=80.0
        )
        full = MmcQueue(100.0, 80.0, 2).mean_response_time()
        assert result.mean_response_time == pytest.approx(full, rel=0.05)

    def test_degraded_state_is_slower_or_outage(self, web_model):
        result = expected_response_time(
            web_model, "web", arrival_rate=100.0, service_rate=80.0
        )
        # one web server cannot carry rho = 100/80 > 1: it's an outage state
        assert 1 not in result.per_state
        assert result.outage_probability > 0.0

    def test_light_load_counts_single_server_state(self, web_model):
        result = expected_response_time(
            web_model, "web", arrival_rate=10.0, service_rate=80.0
        )
        assert set(result.per_state) == {1, 2}
        assert result.per_state[1] > result.per_state[2]

    def test_outage_probability_small_for_paper_rates(self, web_model):
        result = expected_response_time(
            web_model, "web", arrival_rate=10.0, service_rate=80.0
        )
        assert result.outage_probability < 1e-5

    def test_describe_mentions_service(self, web_model):
        result = expected_response_time(
            web_model, "web", arrival_rate=10.0, service_rate=80.0
        )
        assert "web" in result.describe()

    def test_always_unusable_rejected(self, web_model):
        with pytest.raises(EvaluationError):
            expected_response_time(
                web_model, "web", arrival_rate=1000.0, service_rate=1.0
            )

    def test_bad_rates_rejected(self, web_model):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            expected_response_time(web_model, "web", arrival_rate=0.0, service_rate=1.0)

"""Tests for heterogeneous (diverse-software) redundancy."""

from __future__ import annotations

import pytest

from repro.enterprise import (
    HeterogeneousDesign,
    build_heterogeneous_harm,
    heterogeneous_availability_model,
    paper_variants,
)
from repro.errors import EvaluationError, ValidationError
from repro.harm import evaluate_security
from repro.vulnerability.diversity import diversity_database


@pytest.fixture(scope="module")
def variants():
    return paper_variants()


@pytest.fixture(scope="module")
def diversity_db():
    return diversity_database()


@pytest.fixture(scope="module")
def diverse_design(variants):
    return HeterogeneousDesign(
        {
            "dns": {variants["dns_ms"]: 1},
            "web": {variants["web_apache"]: 1, variants["web_nginx"]: 1},
            "app": {variants["app_weblogic"]: 1},
            "db": {variants["db_mysql"]: 1},
        }
    )


@pytest.fixture(scope="module")
def homogeneous_design(variants):
    return HeterogeneousDesign(
        {
            "dns": {variants["dns_ms"]: 1},
            "web": {variants["web_apache"]: 2},
            "app": {variants["app_weblogic"]: 1},
            "db": {variants["db_mysql"]: 1},
        }
    )


class TestHeterogeneousDesign:
    def test_total_servers(self, diverse_design):
        assert diverse_design.total_servers == 5

    def test_instances_per_variant(self, diverse_design):
        hosts = diverse_design.instances("web")
        assert set(hosts) == {"web_apache1", "web_nginx1"}

    def test_label_mentions_variants(self, diverse_design):
        assert "web_nginx" in diverse_design.label

    def test_duplicate_variant_name_rejected(self, variants):
        with pytest.raises(ValidationError):
            HeterogeneousDesign(
                {
                    "web": {variants["web_apache"]: 1},
                    "db": {variants["web_apache"]: 1},
                }
            )

    def test_zero_count_rejected(self, variants):
        with pytest.raises(ValidationError):
            HeterogeneousDesign({"web": {variants["web_apache"]: 0}})

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            HeterogeneousDesign({})


class TestHeterogeneousHarm:
    def test_variant_hosts_in_graph(self, case_study, diversity_db, diverse_design):
        harm = build_heterogeneous_harm(case_study, diverse_design, diversity_db)
        assert harm.graph.has_host("web_nginx1")
        assert harm.graph.has_host("web_apache1")

    def test_variants_have_distinct_trees(
        self, case_study, diversity_db, diverse_design
    ):
        harm = build_heterogeneous_harm(case_study, diverse_design, diversity_db)
        apache = harm.tree_for("web_apache1").leaf_names()
        nginx = harm.tree_for("web_nginx1").leaf_names()
        assert not set(apache) & set(nginx)

    def test_nginx_tree_mirrors_paper_shape(
        self, case_study, diversity_db, diverse_design
    ):
        harm = build_heterogeneous_harm(case_study, diverse_design, diversity_db)
        assert harm.tree_for("web_nginx1").to_expression() == (
            "(SYN-NGINX-2016-0001 | (SYN-NGINX-2016-0002 & SYN-UBUNTU-2016-0001))"
        )

    def test_patching_prunes_per_variant(
        self, case_study, diversity_db, diverse_design, critical_policy
    ):
        harm = build_heterogeneous_harm(
            case_study, diverse_design, diversity_db, critical_policy
        )
        # both web variants keep their AND chains after critical patching
        assert harm.tree_for("web_nginx1").to_expression() == (
            "(SYN-NGINX-2016-0002 & SYN-UBUNTU-2016-0001)"
        )
        assert "dns_ms1" not in harm.trees

    def test_diverse_vs_homogeneous_noev(
        self,
        case_study,
        diversity_db,
        diverse_design,
        homogeneous_design,
        critical_policy,
    ):
        """Diversity changes the attack-surface composition: the attacker
        needs distinct exploits per variant."""
        diverse = evaluate_security(
            build_heterogeneous_harm(
                case_study, diverse_design, diversity_db, critical_policy
            )
        )
        uniform = evaluate_security(
            build_heterogeneous_harm(
                case_study, homogeneous_design, diversity_db, critical_policy
            )
        )
        # same path counts, but the diverse web tier exposes distinct CVEs
        assert diverse.number_of_attack_paths == uniform.number_of_attack_paths
        assert diverse.unique_cve_count > uniform.unique_cve_count

    def test_unknown_role_rejected(self, case_study, diversity_db, variants):
        design = HeterogeneousDesign({"cache": {variants["web_nginx"]: 1}})
        with pytest.raises(ValidationError):
            build_heterogeneous_harm(case_study, design, diversity_db)


class TestHeterogeneousAvailability:
    def test_model_solves(self, case_study, diversity_db, diverse_design, critical_policy):
        model = heterogeneous_availability_model(
            case_study, diverse_design, diversity_db, critical_policy
        )
        coa = model.capacity_oriented_availability()
        assert 0.99 < coa < 1.0

    def test_variant_groups_in_tiers(
        self, case_study, diversity_db, diverse_design, critical_policy
    ):
        model = heterogeneous_availability_model(
            case_study, diverse_design, diversity_db, critical_policy
        )
        assert set(model.tiers["web"]) == {"web_apache", "web_nginx"}
        assert model.total_servers == 5

    def test_diverse_web_beats_single_web(
        self, case_study, diversity_db, variants, critical_policy
    ):
        """Two diverse web replicas still beat one web server on COA."""
        single = HeterogeneousDesign(
            {
                "dns": {variants["dns_ms"]: 1},
                "web": {variants["web_apache"]: 1},
                "app": {variants["app_weblogic"]: 1},
                "db": {variants["db_mysql"]: 1},
            }
        )
        diverse = HeterogeneousDesign(
            {
                "dns": {variants["dns_ms"]: 1},
                "web": {variants["web_apache"]: 1, variants["web_nginx"]: 1},
                "app": {variants["app_weblogic"]: 1},
                "db": {variants["db_mysql"]: 1},
            }
        )
        coa_single = heterogeneous_availability_model(
            case_study, single, diversity_db, critical_policy
        ).system_availability()
        coa_diverse = heterogeneous_availability_model(
            case_study, diverse, diversity_db, critical_policy
        ).system_availability()
        assert coa_diverse > coa_single

    def test_missing_aggregate_rejected(self):
        from repro.availability import HeterogeneousAvailabilityModel

        with pytest.raises(EvaluationError):
            HeterogeneousAvailabilityModel({"web": {"ghost": 1}}, {})

    def test_variant_in_two_tiers_rejected(
        self, availability_evaluator, example_design
    ):
        from repro.availability import HeterogeneousAvailabilityModel

        aggregates = availability_evaluator.aggregates_for(example_design)
        with pytest.raises(EvaluationError):
            HeterogeneousAvailabilityModel(
                {"a": {"web": 1}, "b": {"web": 1}}, aggregates
            )

"""Tests for server roles."""

from __future__ import annotations

import pytest

from repro.enterprise import ServerRole
from repro.errors import ValidationError


class TestServerRole:
    def test_valid_role(self):
        role = ServerRole("web", "RHEL", "Apache")
        assert role.products == ("RHEL", "Apache")

    def test_instance_names(self):
        role = ServerRole("web", "RHEL", "Apache")
        assert role.instance_name(1) == "web1"
        assert role.instance_name(3) == "web3"

    def test_instance_index_must_be_positive(self):
        with pytest.raises(ValidationError):
            ServerRole("web", "RHEL", "Apache").instance_name(0)

    def test_name_must_be_identifier(self):
        with pytest.raises(ValidationError):
            ServerRole("web server", "RHEL", "Apache")

    def test_empty_products_rejected(self):
        with pytest.raises(ValidationError):
            ServerRole("web", "", "Apache")

    def test_tree_spec_is_optional(self):
        role = ServerRole("web", "RHEL", "Apache", attack_tree_spec=("CVE-1",))
        assert role.attack_tree_spec == ("CVE-1",)
        assert ServerRole("db", "OS", "App").attack_tree_spec is None

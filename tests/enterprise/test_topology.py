"""Tests for role-level topology."""

from __future__ import annotations

import pytest

from repro.enterprise import NetworkTopology
from repro.errors import ValidationError


@pytest.fixture
def three_tier():
    topology = NetworkTopology(["web", "app", "db"])
    topology.add_entry_role("web")
    topology.add_role_reachability("web", "app")
    topology.add_role_reachability("app", "db")
    topology.add_target_role("db")
    return topology


class TestConstruction:
    def test_roles_registered(self, three_tier):
        assert three_tier.roles == ["web", "app", "db"]

    def test_duplicate_role_idempotent(self, three_tier):
        three_tier.add_role("web")
        assert three_tier.roles.count("web") == 1

    def test_edges(self, three_tier):
        assert three_tier.role_edges() == [("web", "app"), ("app", "db")]
        assert three_tier.reachable_roles("web") == ["app"]

    def test_unknown_role_in_edge_rejected(self, three_tier):
        with pytest.raises(ValidationError):
            three_tier.add_role_reachability("web", "cache")

    def test_entry_and_targets(self, three_tier):
        assert three_tier.entry_roles == ["web"]
        assert three_tier.target_roles == ["db"]

    def test_duplicate_entry_not_repeated(self, three_tier):
        three_tier.add_entry_role("web")
        assert three_tier.entry_roles == ["web"]


class TestValidation:
    def test_valid_topology_passes(self, three_tier):
        three_tier.validate()

    def test_missing_entry_rejected(self):
        topology = NetworkTopology(["a"])
        topology.add_target_role("a")
        with pytest.raises(ValidationError, match="entry"):
            topology.validate()

    def test_missing_target_rejected(self):
        topology = NetworkTopology(["a"])
        topology.add_entry_role("a")
        with pytest.raises(ValidationError, match="target"):
            topology.validate()

    def test_cycle_rejected(self, three_tier):
        three_tier.add_role_reachability("db", "web")
        with pytest.raises(ValidationError, match="cycle"):
            three_tier.validate()

    def test_empty_topology_rejected(self):
        with pytest.raises(ValidationError):
            NetworkTopology().validate()

"""Tests for the scaled case-study generator (large-state-space designs)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.enterprise import paper_case_study, scaled_case_study
from repro.enterprise.scaled import scaled_design
from repro.errors import ValidationError
from repro.evaluation import AvailabilityEvaluator
from repro.patching import CriticalVulnerabilityPolicy


class TestShapes:
    def test_tier_names_and_counts(self):
        case_study, design = scaled_case_study(hosts_per_tier=3, tiers=5)
        assert list(case_study.roles) == [
            "tier01",
            "tier02",
            "tier03",
            "tier04",
            "tier05",
        ]
        assert design.counts == {name: 3 for name in case_study.roles}

    def test_roles_cycle_paper_stacks(self):
        paper = paper_case_study()
        case_study, _ = scaled_case_study(hosts_per_tier=2, tiers=6)
        # tier05 wraps around to the dns stack, tier06 to web.
        dns = paper.roles["dns"]
        wrapped = case_study.roles["tier05"]
        assert wrapped.name == "tier05"
        assert wrapped.products == dns.products

    def test_chain_topology(self):
        case_study, _ = scaled_case_study(hosts_per_tier=2, tiers=4)
        topology = case_study.topology
        assert list(topology.entry_roles) == ["tier01"]
        assert list(topology.target_roles) == ["tier04"]
        assert case_study.attacker.goal_roles == ("tier04",)

    def test_scaled_design_helper(self):
        case_study, _ = scaled_case_study(hosts_per_tier=2, tiers=3)
        design = scaled_design(case_study, 7)
        assert design.counts == {f"tier{k:02d}": 7 for k in (1, 2, 3)}


class TestValidation:
    @pytest.mark.parametrize("tiers", [0, -1, 2.5, "four"])
    def test_bad_tiers_rejected(self, tiers):
        with pytest.raises(ValidationError, match="tiers"):
            scaled_case_study(hosts_per_tier=2, tiers=tiers)

    @pytest.mark.parametrize("hosts", [0, -3, 1.5, "six"])
    def test_bad_hosts_rejected(self, hosts):
        with pytest.raises(ValidationError, match="hosts_per_tier"):
            scaled_case_study(hosts_per_tier=hosts, tiers=2)


class TestStateCounts:
    def test_small_design_state_count(self):
        # (hosts + 1) ** tiers: 2 hosts over 3 tiers -> 27 states.
        case_study, design = scaled_case_study(hosts_per_tier=2, tiers=3)
        evaluator = AvailabilityEvaluator(case_study, CriticalVulnerabilityPolicy())
        structure, _ = evaluator.coa_structure_for(design)
        assert structure.n_states == 27

    def test_paper_dimensions_recover_paper_state_count(self):
        case_study, design = scaled_case_study(hosts_per_tier=6, tiers=4)
        evaluator = AvailabilityEvaluator(case_study, CriticalVulnerabilityPolicy())
        structure, _ = evaluator.coa_structure_for(design)
        assert structure.n_states == 2401


class TestEndToEnd:
    def test_coa_and_timeline_smoke(self):
        case_study, design = scaled_case_study(hosts_per_tier=2, tiers=3)
        evaluator = AvailabilityEvaluator(case_study, CriticalVulnerabilityPolicy())
        coa = evaluator.coa(design)
        assert 0.0 < coa <= 1.0
        curve = evaluator.transient_coa(design, [0.0, 24.0, 720.0])
        assert curve.shape == (3,)
        assert curve[0] == pytest.approx(1.0)
        # the long-horizon point approaches the stationary COA
        assert curve[2] == pytest.approx(coa, abs=1e-3)

    def test_methods_agree_on_scaled_design(self):
        case_study, design = scaled_case_study(hosts_per_tier=2, tiers=3)
        evaluator = AvailabilityEvaluator(case_study, CriticalVulnerabilityPolicy())
        times = [0.0, 24.0, 168.0]
        exact = evaluator.transient_coa(design, times)
        for method in ("krylov", "adaptive", "auto"):
            other = evaluator.transient_coa(design, times, method=method)
            np.testing.assert_allclose(other, exact, rtol=0.0, atol=1e-8)

"""Tests for redundancy designs."""

from __future__ import annotations

import pytest

from repro.enterprise import (
    RedundancyDesign,
    example_network_design,
    paper_designs,
)
from repro.errors import ValidationError


class TestDesign:
    def test_counts_and_total(self):
        design = RedundancyDesign({"dns": 1, "web": 2})
        assert design.counts == {"dns": 1, "web": 2}
        assert design.total_servers == 3

    def test_label(self):
        design = RedundancyDesign({"dns": 1, "web": 2, "app": 2, "db": 1})
        assert design.label == "1 DNS + 2 WEB + 2 APP + 1 DB"

    def test_instances(self):
        design = RedundancyDesign({"web": 3})
        assert design.instances("web") == ["web1", "web2", "web3"]

    def test_all_instances(self):
        design = RedundancyDesign({"dns": 1, "web": 2})
        assert design.all_instances() == {
            "dns1": "dns",
            "web1": "web",
            "web2": "web",
        }

    def test_zero_count_rejected(self):
        with pytest.raises(ValidationError):
            RedundancyDesign({"dns": 0})

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            RedundancyDesign({})

    def test_unknown_role_count_rejected(self):
        design = RedundancyDesign({"dns": 1})
        with pytest.raises(ValidationError):
            design.count_of("web")

    def test_with_extra_replica(self):
        design = RedundancyDesign({"dns": 1, "web": 1})
        bigger = design.with_extra_replica("web")
        assert bigger.count_of("web") == 2
        assert design.count_of("web") == 1

    def test_equality_and_hash(self):
        a = RedundancyDesign({"dns": 1, "web": 2})
        b = RedundancyDesign({"web": 2, "dns": 1})
        assert a == b
        assert hash(a) == hash(b)


class TestPaperDesigns:
    def test_five_designs_in_paper_order(self):
        designs = paper_designs()
        assert len(designs) == 5
        assert designs[0].label == "1 DNS + 1 WEB + 1 APP + 1 DB"
        assert designs[1].label == "2 DNS + 1 WEB + 1 APP + 1 DB"
        assert designs[2].label == "1 DNS + 2 WEB + 1 APP + 1 DB"
        assert designs[3].label == "1 DNS + 1 WEB + 2 APP + 1 DB"
        assert designs[4].label == "1 DNS + 1 WEB + 1 APP + 2 DB"

    def test_example_network(self):
        assert example_network_design().counts == {
            "dns": 1,
            "web": 2,
            "app": 2,
            "db": 1,
        }

"""Tests for the paper's case study assembly."""

from __future__ import annotations

import pytest

from repro.enterprise import RedundancyDesign, ServerRole, paper_case_study
from repro.errors import ValidationError
from repro.patching import MONTHLY, WEEKLY, NoPatchPolicy


class TestRoleViews:
    def test_role_vulnerability_counts(self, case_study):
        assert len(case_study.role_vulnerabilities("dns")) == 3  # 1 CVE + 2 SYN
        assert len(case_study.role_vulnerabilities("web")) == 5
        assert len(case_study.role_vulnerabilities("app")) == 8  # 5 + 3 SYN
        assert len(case_study.role_vulnerabilities("db")) == 8

    def test_role_exploitable_counts(self, case_study):
        expected = {"dns": 1, "web": 5, "app": 5, "db": 5}
        for role, count in expected.items():
            assert len(case_study.role_exploitable(role)) == count, role

    def test_unknown_role_rejected(self, case_study):
        with pytest.raises(ValidationError):
            case_study.role_vulnerabilities("cache")


class TestHarmConstruction:
    def test_instances_expand_with_design(self, case_study):
        design = RedundancyDesign({"dns": 1, "web": 3, "app": 1, "db": 1})
        harm = case_study.build_harm(design)
        assert harm.graph.number_of_hosts() == 6
        for host in ("web1", "web2", "web3"):
            assert harm.graph.has_host(host)

    def test_replicas_share_tree_shape(self, case_study, example_design):
        harm = case_study.build_harm(example_design)
        assert (
            harm.tree_for("web1").to_expression()
            == harm.tree_for("web2").to_expression()
        )

    def test_design_with_unknown_role_rejected(self, case_study):
        with pytest.raises(ValidationError):
            case_study.build_harm(RedundancyDesign({"cache": 1}))

    def test_no_patch_policy_equals_before(self, case_study, example_design):
        before = case_study.build_harm(example_design)
        unpatched = case_study.build_harm(example_design, NoPatchPolicy())
        assert set(before.trees) == set(unpatched.trees)

    def test_dns_drops_after_critical_patch(
        self, case_study, example_design, critical_policy
    ):
        after = case_study.build_harm(example_design, critical_policy)
        assert "dns1" not in after.trees
        assert "web1" in after.trees


class TestAvailabilityParameters:
    def test_parameters_match_table_iv(self, case_study, critical_policy):
        params = case_study.server_parameters("dns", critical_policy)
        assert 60.0 / params.patch.service_patch == pytest.approx(5.0)
        assert 60.0 / params.patch.os_patch == pytest.approx(20.0)
        assert params.patch_interval_hours == 720.0

    def test_schedule_override(self, critical_policy):
        weekly = paper_case_study(schedule=WEEKLY)
        params = weekly.server_parameters("dns", critical_policy)
        assert params.patch_interval_hours == pytest.approx(168.0)

    def test_with_schedule_copies(self, case_study):
        weekly = case_study.with_schedule(WEEKLY)
        assert weekly.schedule == WEEKLY
        assert case_study.schedule == MONTHLY


class TestValidationRules:
    def test_topology_roles_need_definitions(self, case_study):
        from repro.enterprise import EnterpriseCaseStudy, NetworkTopology

        topology = NetworkTopology(["ghost"])
        topology.add_entry_role("ghost")
        topology.add_target_role("ghost")
        with pytest.raises(ValidationError, match="ghost"):
            EnterpriseCaseStudy(
                roles={
                    "web": ServerRole("web", "OS", "App"),
                },
                topology=topology,
                database=case_study.database,
            )

    def test_attacker_description(self, case_study):
        assert "db" in case_study.attacker.describe()

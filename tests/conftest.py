"""Shared fixtures: the paper's case study and evaluated designs.

Session-scoped because the availability pipeline solves four lower-layer
SRNs; every test that needs the paper numbers reuses one evaluation.
"""

from __future__ import annotations

import pytest

from repro.enterprise import (
    example_network_design,
    paper_case_study,
    paper_designs,
)
from repro.evaluation import AvailabilityEvaluator, evaluate_designs
from repro.patching import CriticalVulnerabilityPolicy
from repro.vulnerability import paper_database


@pytest.fixture(scope="session")
def case_study():
    """The paper's example enterprise network."""
    return paper_case_study()


@pytest.fixture(scope="session")
def critical_policy():
    """The paper's patch policy (base score > 8.0)."""
    return CriticalVulnerabilityPolicy()


@pytest.fixture(scope="session")
def vulnerability_db():
    """The embedded Table I catalog."""
    return paper_database()


@pytest.fixture(scope="session")
def example_design():
    """1 DNS + 2 WEB + 2 APP + 1 DB."""
    return example_network_design()


@pytest.fixture(scope="session")
def five_designs():
    """The paper's five design choices, in order."""
    return paper_designs()


@pytest.fixture(scope="session")
def design_evaluations(case_study, critical_policy, five_designs):
    """Before/after snapshots of the five paper designs."""
    return evaluate_designs(
        five_designs, case_study=case_study, policy=critical_policy
    )


@pytest.fixture(scope="session")
def availability_evaluator(case_study, critical_policy):
    """Shared availability evaluator with cached per-role aggregates."""
    return AvailabilityEvaluator(case_study, critical_policy)

"""The exception hierarchy contracts other modules rely on."""

from __future__ import annotations

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "subclass",
        [
            errors.ValidationError,
            errors.ModelError,
            errors.GraphError,
            errors.CvssError,
            errors.VulnerabilityError,
            errors.AttackTreeError,
            errors.HarmError,
            errors.CtmcError,
            errors.SrnError,
            errors.StateSpaceError,
            errors.SolverError,
            errors.EvaluationError,
        ],
    )
    def test_everything_derives_from_repro_error(self, subclass):
        assert issubclass(subclass, errors.ReproError)

    def test_validation_error_is_value_error(self):
        # Callers using plain ValueError handling still catch our input errors.
        assert issubclass(errors.ValidationError, ValueError)

    def test_cvss_error_is_validation_error(self):
        assert issubclass(errors.CvssError, errors.ValidationError)

    def test_state_space_error_is_srn_error(self):
        assert issubclass(errors.StateSpaceError, errors.SrnError)

    def test_solver_error_is_runtime_error(self):
        assert issubclass(errors.SolverError, RuntimeError)

    def test_graph_error_is_model_error(self):
        assert issubclass(errors.GraphError, errors.ModelError)

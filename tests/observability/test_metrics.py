"""Unit tests for the stdlib-only metrics registry."""

import pickle
import threading

import pytest

from repro.observability.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounters:
    def test_starts_at_zero_and_accumulates(self, registry):
        child = registry.counter("r_total", "help").labels()
        assert child.value == 0.0
        child.inc()
        child.inc(2.5)
        assert child.value == 3.5

    def test_negative_increment_rejected(self, registry):
        child = registry.counter("r_total", "help").labels()
        with pytest.raises(ValueError):
            child.inc(-1.0)

    def test_labelled_children_are_independent(self, registry):
        family = registry.counter("r_total", "help")
        family.inc(method="a")
        family.inc(3, method="b")
        assert family.labels(method="a").value == 1.0
        assert family.labels(method="b").value == 3.0

    def test_same_labels_any_order_same_child(self, registry):
        family = registry.counter("r_total", "help")
        one = family.labels(a="1", b="2")
        two = family.labels(b="2", a="1")
        assert one is two

    def test_get_or_create_is_idempotent(self, registry):
        first = registry.counter("r_total", "help")
        second = registry.counter("r_total", "ignored")
        assert first is second

    def test_kind_mismatch_raises(self, registry):
        registry.counter("r_total", "help")
        with pytest.raises(TypeError):
            registry.gauge("r_total", "help")

    def test_invalid_metric_name_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.counter("bad-name", "help")

    def test_invalid_label_name_rejected(self, registry):
        family = registry.counter("r_total", "help")
        with pytest.raises(ValueError):
            family.labels(**{"bad-label": "x"})


class TestGauges:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("r_bytes", "help").labels()
        gauge.set(10.0)
        gauge.inc(5.0)
        gauge.dec(3.0)
        assert gauge.value == 12.0


class TestHistograms:
    def test_observe_updates_all_aggregates(self, registry):
        hist = registry.histogram(
            "r_seconds", "help", buckets=(0.1, 1.0)
        ).labels()
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        assert hist.count == 3
        assert hist.sum == pytest.approx(5.55)
        assert hist.min == pytest.approx(0.05)
        assert hist.max == pytest.approx(5.0)
        # counts are per-bucket (non-cumulative) with a final +Inf slot
        assert hist.counts == [1, 1, 1]

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestSnapshotDeltaMerge:
    def test_delta_contains_only_changes(self, registry):
        counter = registry.counter("r_total", "help").labels()
        other = registry.counter("r_other_total", "help").labels()
        counter.inc(2)
        other.inc(7)
        before = registry.state()
        counter.inc(3)
        delta = registry.delta_since(before)
        keys = {name for (name, _labels) in delta}
        assert keys == {"r_total"}
        ((_, entry),) = delta.items()
        assert entry["value"] == 3.0

    def test_merge_into_fresh_registry_recreates_families(self, registry):
        registry.counter("r_total", "help").inc(4, method="x")
        registry.histogram("r_seconds", "help").observe(0.2)
        delta = registry.delta_since(MetricsRegistry().state())
        target = MetricsRegistry()
        target.merge(delta)
        assert target.counter("r_total", "help").labels(method="x").value == 4.0
        assert target.histogram("r_seconds", "help").labels().count == 1

    def test_merge_is_additive_for_counters(self, registry):
        registry.counter("r_total", "help").inc(2)
        delta = registry.delta_since(MetricsRegistry().state())
        registry.merge(delta)
        assert registry.counter("r_total", "help").labels().value == 4.0

    def test_delta_is_picklable(self, registry):
        registry.counter("r_total", "help").inc()
        registry.histogram("r_seconds", "help").observe(1.0)
        delta = registry.delta_since(MetricsRegistry().state())
        assert pickle.loads(pickle.dumps(delta)) == delta

    def test_reset_zeroes_in_place(self, registry):
        child = registry.counter("r_total", "help").labels()
        child.inc(9)
        registry.reset()
        # The cached child handle stays live and starts over from zero.
        assert child.value == 0.0
        child.inc()
        assert registry.counter("r_total", "help").labels().value == 1.0


class TestExposition:
    def test_to_dict_shape(self, registry):
        registry.counter("r_total", "help text").inc(2, method="a")
        payload = registry.to_dict()
        entry = payload["r_total"]
        assert entry["kind"] == "counter"
        assert entry["help"] == "help text"
        assert entry["series"] == [
            {"labels": {"method": "a"}, "value": 2.0}
        ]

    def test_to_dict_histogram_buckets_are_cumulative(self, registry):
        hist = registry.histogram("r_seconds", "help", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        ((series,),) = [registry.to_dict()["r_seconds"]["series"]]
        assert series["count"] == 2
        assert series["buckets"] == {"0.1": 1, "1": 2, "+Inf": 2}
        assert series["mean"] == pytest.approx(0.275)

    def test_prometheus_text_format(self, registry):
        registry.counter("r_total", 'help with "quotes" and \\slash').inc(
            3, method="a b"
        )
        registry.gauge("r_bytes", "bytes").set(12)
        hist = registry.histogram("r_seconds", "latency", buckets=(0.5,))
        hist.observe(0.1)
        hist.observe(2.0)
        text = registry.to_prometheus()
        lines = text.splitlines()
        assert "# TYPE r_total counter" in lines
        assert 'r_total{method="a b"} 3' in lines
        assert "# TYPE r_bytes gauge" in lines
        assert "r_bytes 12" in lines
        assert "# TYPE r_seconds histogram" in lines
        assert 'r_seconds_bucket{le="0.5"} 1' in lines
        assert 'r_seconds_bucket{le="+Inf"} 2' in lines
        assert "r_seconds_sum 2.1" in lines
        assert "r_seconds_count 2" in lines
        # HELP line escaping
        assert any(
            line.startswith("# HELP r_total ") and "\\\\slash" in line
            for line in lines
        )
        assert text.endswith("\n")

    def test_prometheus_label_value_escaping(self, registry):
        registry.counter("r_total", "help").inc(
            1, path='with"quote', other="line\nbreak"
        )
        text = registry.to_prometheus()
        assert 'path="with\\"quote"' in text
        assert 'other="line\\nbreak"' in text


class TestThreadSafety:
    def test_concurrent_increments_do_not_lose_updates(self, registry):
        family = registry.counter("r_total", "help")

        def work():
            for _ in range(1000):
                family.inc(worker="shared")

        threads = [threading.Thread(target=work) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert family.labels(worker="shared").value == 8000.0

"""Unit tests for span tracing and the Chrome trace exporter."""

import json
import os
import threading
import time

import pytest

from repro.observability import tracing


@pytest.fixture(autouse=True)
def _clean_tracing():
    tracing.disable()
    tracing.drain()
    yield
    tracing.disable()
    tracing.drain()


class TestDisabled:
    def test_no_events_recorded(self):
        with tracing.span("work", n=3) as sp:
            sp.add(more=1)
        assert tracing.events() == []

    def test_disabled_span_is_cheap(self):
        # Not a strict benchmark, just a guard against accidentally
        # reading clocks or appending on the disabled path.
        start = time.perf_counter()
        for _ in range(10_000):
            with tracing.span("work"):
                pass
        elapsed = time.perf_counter() - start
        assert elapsed < 0.5
        assert tracing.events() == []


class TestEnabled:
    def test_event_shape(self):
        tracing.enable()
        with tracing.span("solve", states=10) as sp:
            sp.add(iterations=4)
        (event,) = tracing.events()
        assert event["name"] == "solve"
        assert event["ph"] == "X"
        assert event["cat"] == "repro"
        assert event["pid"] == os.getpid()
        assert event["dur"] >= 0
        assert event["args"]["states"] == 10
        assert event["args"]["iterations"] == 4
        assert event["args"]["depth"] == 1

    def test_nesting_depth(self):
        tracing.enable()
        with tracing.span("outer"):
            with tracing.span("inner"):
                pass
        inner, outer = tracing.events()
        assert inner["name"] == "inner"
        assert inner["args"]["depth"] == 2
        assert outer["args"]["depth"] == 1

    def test_exception_recorded_and_propagated(self):
        tracing.enable()
        with pytest.raises(RuntimeError):
            with tracing.span("boom"):
                raise RuntimeError("nope")
        (event,) = tracing.events()
        assert event["args"]["error"] == "RuntimeError"

    def test_non_jsonable_args_coerced(self):
        tracing.enable()
        with tracing.span("work", what={1, 2}):
            pass
        (event,) = tracing.events()
        assert isinstance(event["args"]["what"], str)

    def test_span_entered_before_disable_still_records(self):
        tracing.enable()
        cm = tracing.span("flip")
        cm.__enter__()
        tracing.disable()
        cm.__exit__(None, None, None)
        assert [e["name"] for e in tracing.events()] == ["flip"]

    def test_threads_record_into_shared_buffer(self):
        tracing.enable()

        def work():
            with tracing.span("thread-work"):
                pass

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(tracing.events()) == 4


class TestBufferOps:
    def test_drain_clears(self):
        tracing.enable()
        with tracing.span("a"):
            pass
        drained = tracing.drain()
        assert [e["name"] for e in drained] == ["a"]
        assert tracing.events() == []

    def test_extend_merges(self):
        tracing.extend([{"name": "w", "ph": "X", "pid": 999, "tid": 1}])
        assert [e["name"] for e in tracing.events()] == ["w"]


class TestChromeExport:
    def test_file_shape(self, tmp_path):
        tracing.enable()
        with tracing.span("solve", states=5):
            pass
        path = tmp_path / "trace.json"
        count = tracing.write_chrome_trace(str(path))
        assert count == 1
        payload = json.loads(path.read_text())
        assert set(payload) == {"traceEvents", "displayTimeUnit"}
        names = {e["name"] for e in payload["traceEvents"]}
        assert names == {"process_name", "solve"}
        meta = next(
            e for e in payload["traceEvents"] if e["name"] == "process_name"
        )
        assert meta["ph"] == "M"
        assert meta["args"]["name"] == "repro"
        # exporting drained the buffer
        assert tracing.events() == []

    def test_worker_pids_get_worker_process_names(self, tmp_path):
        batch = [
            {"name": "w", "ph": "X", "ts": 0, "dur": 1, "pid": 424242, "tid": 1}
        ]
        path = tmp_path / "trace.json"
        tracing.write_chrome_trace(str(path), batch)
        payload = json.loads(path.read_text())
        meta = next(
            e for e in payload["traceEvents"] if e["name"] == "process_name"
        )
        assert meta["args"]["name"] == "repro-worker-424242"

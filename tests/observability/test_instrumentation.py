"""Cross-layer instrumentation tests.

Asserts the observability guarantees the subsystem promises: layer
counters actually tick, sweep/timeline results are byte-identical with
tracing and metrics on or off across all executors, a process-pool
sweep's merged trace contains worker-side solver spans, and the
disabled tracing path costs (near) nothing.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.enterprise import example_network_design
from repro.evaluation import SweepEngine
from repro.evaluation.sweep import enumerate_designs
from repro.observability import REGISTRY, tracing
from repro.srn import StochasticRewardNet, explore
from repro.srn.reachability import exploration_count


@pytest.fixture(autouse=True)
def _clean_tracing():
    tracing.disable()
    tracing.drain()
    yield
    tracing.disable()
    tracing.drain()


@pytest.fixture(scope="module")
def space():
    return list(enumerate_designs(["dns", "web"], max_replicas=2))


def _counter_value(name, **labels):
    return REGISTRY.counter(name).labels(**labels).value


def _updown_net():
    net = StochasticRewardNet()
    net.add_place("up", tokens=1)
    net.add_place("down")
    net.add_timed_transition("fail", rate=2.0)
    net.add_arc("up", "fail")
    net.add_arc("fail", "down")
    net.add_timed_transition("repair", rate=8.0)
    net.add_arc("down", "repair")
    net.add_arc("repair", "up")
    return net


class TestLayerCounters:
    def test_explore_ticks_exploration_counters(self):
        before = exploration_count()
        vanishing_before = _counter_value("repro_srn_vanishing_eliminated_total")
        graph = explore(_updown_net())
        assert exploration_count() == before + 1
        assert (
            _counter_value("repro_srn_vanishing_eliminated_total")
            == vanishing_before + graph.vanishing_count
        )

    def test_sweep_ticks_solver_and_cache_counters(self, case_study, space):
        solves_before = REGISTRY.counter("repro_steady_solves_total")
        total_before = sum(
            child.value for child in solves_before.series().values()
        )
        lookups = REGISTRY.counter("repro_engine_cache_requests_total")
        misses_before = lookups.labels(tier="memo", outcome="miss").value
        hits_before = lookups.labels(tier="memo", outcome="hit").value

        engine = SweepEngine(case_study=case_study)
        engine.evaluate(space)
        total_after = sum(
            child.value for child in solves_before.series().values()
        )
        assert total_after > total_before
        assert (
            lookups.labels(tier="memo", outcome="miss").value
            == misses_before + len(space)
        )
        engine.evaluate(space)
        assert (
            lookups.labels(tier="memo", outcome="hit").value
            == hits_before + len(space)
        )

    def test_transient_solve_ticks_method_counter(
        self, case_study, critical_policy
    ):
        from repro.evaluation.timeline import evaluate_timeline

        family = REGISTRY.counter("repro_transient_solves_total")
        before = family.labels(method="uniformisation").value
        evaluate_timeline(
            example_network_design(),
            (0.0, 24.0),
            case_study=case_study,
            policy=critical_policy,
        )
        assert family.labels(method="uniformisation").value > before


class TestByteIdentityWithInstrumentation:
    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_sweep_identical_tracing_on_vs_off(
        self, case_study, critical_policy, space, executor
    ):
        kwargs = (
            {} if executor == "serial" else {"max_workers": 2, "chunk_size": 2}
        )

        def run():
            return SweepEngine(
                case_study=case_study,
                policy=critical_policy,
                executor=executor,
                **kwargs,
            ).evaluate(space)

        tracing.disable()
        off = run()
        tracing.enable()
        on = run()
        tracing.disable()
        for a, b in zip(off, on):
            assert a.after.coa.hex() == b.after.coa.hex()
            assert a.before == b.before and a.after == b.after

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_timeline_identical_tracing_on_vs_off(
        self, case_study, critical_policy, space, executor
    ):
        designs = space[:4]
        times = (0.0, 120.0, 720.0)
        kwargs = (
            {} if executor == "serial" else {"max_workers": 2, "chunk_size": 2}
        )

        def run():
            return SweepEngine(
                case_study=case_study,
                policy=critical_policy,
                executor=executor,
                **kwargs,
            ).timeline(designs, times)

        tracing.disable()
        off = run()
        tracing.enable()
        on = run()
        tracing.disable()
        for a, b in zip(off, on):
            assert a.coa == b.coa
            assert a.completion_probability == b.completion_probability
            assert a.before == b.before and a.after == b.after


class TestWorkerTelemetryMerge:
    def test_process_sweep_trace_contains_worker_spans(
        self, case_study, critical_policy, space
    ):
        tracing.enable()
        tracing.drain()
        SweepEngine(
            case_study=case_study,
            policy=critical_policy,
            executor="process",
            max_workers=2,
            chunk_size=2,
        ).evaluate(space)
        spans = tracing.drain()
        tracing.disable()
        parent = os.getpid()
        worker_spans = [e for e in spans if e["pid"] != parent]
        assert worker_spans, "no worker-side spans were merged"
        assert any(
            e["name"] in ("ctmc:steady", "srn:explore", "chunk:evaluate")
            for e in worker_spans
        )
        # Parent-side engine spans are present in the same trace.
        assert any(e["name"] == "engine:evaluate" for e in spans)

    def test_process_sweep_merges_worker_counters(
        self, case_study, critical_policy, space
    ):
        # The memo cache is cold, sharing is off and the executor is a
        # process pool, so every exploration happens in a worker; the
        # parent-visible count must still rise via telemetry merge.
        before = exploration_count()
        SweepEngine(
            case_study=case_study,
            policy=critical_policy,
            executor="process",
            max_workers=2,
            chunk_size=2,
            structure_sharing=False,
        ).evaluate(space)
        assert exploration_count() > before

    def test_chunk_queue_wait_observed_for_process_chunks(
        self, case_study, critical_policy, space
    ):
        hist = REGISTRY.histogram("repro_chunk_queue_wait_seconds").labels()
        before = hist.count
        SweepEngine(
            case_study=case_study,
            policy=critical_policy,
            executor="process",
            max_workers=2,
            chunk_size=2,
            structure_sharing=False,
        ).evaluate(space)
        assert hist.count > before


class TestDisabledOverhead:
    def test_disabled_span_overhead_is_negligible(self):
        def bare():
            total = 0
            for i in range(200):
                total += i * i
            return total

        def instrumented():
            with tracing.span("hot"):
                total = 0
                for i in range(200):
                    total += i * i
                return total

        # Warm-up, then measure; generous bound (the contract is <2% on
        # bench_structure_sharing, where spans wrap whole solves, not a
        # 200-iteration toy loop).
        for _ in range(100):
            bare()
            instrumented()
        start = time.perf_counter()
        for _ in range(2000):
            bare()
        bare_s = time.perf_counter() - start
        start = time.perf_counter()
        for _ in range(2000):
            instrumented()
        span_s = time.perf_counter() - start
        assert span_s < bare_s * 2 + 0.05

"""Tests for the shared validation helpers."""

from __future__ import annotations

import math

import pytest

from repro import _validation as v
from repro.errors import ValidationError


class TestRequire:
    def test_passes_on_true(self):
        v.require(True, "never raised")

    def test_raises_on_false(self):
        with pytest.raises(ValidationError, match="boom"):
            v.require(False, "boom")


class TestCheckName:
    def test_accepts_nonempty_string(self):
        assert v.check_name("web1") == "web1"

    def test_rejects_empty_string(self):
        with pytest.raises(ValidationError):
            v.check_name("")

    def test_rejects_non_string(self):
        with pytest.raises(ValidationError):
            v.check_name(42)

    def test_message_mentions_what(self):
        with pytest.raises(ValidationError, match="role"):
            v.check_name(None, "role")


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0, 1])
    def test_accepts_unit_interval(self, value):
        assert v.check_probability(value) == float(value)

    @pytest.mark.parametrize("value", [-0.01, 1.01, 2])
    def test_rejects_out_of_range(self, value):
        with pytest.raises(ValidationError):
            v.check_probability(value)

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            v.check_probability(math.nan)

    def test_rejects_bool(self):
        with pytest.raises(ValidationError):
            v.check_probability(True)


class TestCheckNonNegativeAndPositive:
    def test_non_negative_accepts_zero(self):
        assert v.check_non_negative(0.0) == 0.0

    def test_positive_rejects_zero(self):
        with pytest.raises(ValidationError):
            v.check_positive(0.0)

    def test_positive_accepts_small(self):
        assert v.check_positive(1e-12) == 1e-12

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            v.check_non_negative(-1.0)

    def test_rejects_infinity(self):
        with pytest.raises(ValidationError):
            v.check_positive(math.inf)


class TestCheckInts:
    def test_positive_int_accepts_one(self):
        assert v.check_positive_int(1) == 1

    def test_positive_int_rejects_zero(self):
        with pytest.raises(ValidationError):
            v.check_positive_int(0)

    def test_positive_int_rejects_bool(self):
        with pytest.raises(ValidationError):
            v.check_positive_int(True)

    def test_positive_int_rejects_float(self):
        with pytest.raises(ValidationError):
            v.check_positive_int(2.0)

    def test_non_negative_int_accepts_zero(self):
        assert v.check_non_negative_int(0) == 0

    def test_non_negative_int_rejects_negative(self):
        with pytest.raises(ValidationError):
            v.check_non_negative_int(-1)


class TestCheckIn:
    def test_accepts_member(self):
        assert v.check_in("a", ["a", "b"]) == "a"

    def test_rejects_non_member(self):
        with pytest.raises(ValidationError):
            v.check_in("c", ["a", "b"])


class TestCheckUnique:
    def test_accepts_unique(self):
        v.check_unique([1, 2, 3])

    def test_rejects_duplicates(self):
        with pytest.raises(ValidationError, match="duplicate"):
            v.check_unique([1, 2, 1])

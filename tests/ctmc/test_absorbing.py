"""Tests for absorbing-state analysis."""

from __future__ import annotations

import pytest

from repro.ctmc import (
    Ctmc,
    absorption_probabilities,
    make_absorbing,
    mean_time_to_absorption,
)
from repro.errors import CtmcError


class TestMeanTimeToAbsorption:
    def test_single_exponential_stage(self):
        chain = Ctmc.from_rates({("a", "done"): 2.0})
        assert mean_time_to_absorption(chain, "a") == pytest.approx(0.5)

    def test_two_sequential_stages(self):
        chain = Ctmc.from_rates({("a", "b"): 2.0, ("b", "done"): 4.0})
        assert mean_time_to_absorption(chain, "a") == pytest.approx(0.5 + 0.25)

    def test_with_retries(self):
        """a -> b at rate 1; b returns to a at rate 3 or absorbs at 1.

        Expected absorption time from a: classic first-step analysis
        gives E[a] = 1 + E[b], E[b] = 1/4 + (3/4) E[a]  => E[a] = 5.
        """
        chain = Ctmc.from_rates(
            {("a", "b"): 1.0, ("b", "a"): 3.0, ("b", "done"): 1.0}
        )
        assert mean_time_to_absorption(chain, "a") == pytest.approx(5.0)

    def test_full_table(self):
        chain = Ctmc.from_rates({("a", "b"): 2.0, ("b", "done"): 4.0})
        table = mean_time_to_absorption(chain)
        assert set(table) == {"a", "b"}
        assert table["b"] == pytest.approx(0.25)

    def test_no_absorbing_states_rejected(self):
        chain = Ctmc.from_rates({("a", "b"): 1.0, ("b", "a"): 1.0})
        with pytest.raises(CtmcError):
            mean_time_to_absorption(chain)

    def test_absorbing_start_rejected(self):
        chain = Ctmc.from_rates({("a", "done"): 1.0})
        with pytest.raises(CtmcError):
            mean_time_to_absorption(chain, "done")


class TestAbsorptionProbabilities:
    def test_two_exits_split_by_rate(self):
        chain = Ctmc.from_rates({("a", "left"): 1.0, ("a", "right"): 3.0})
        probabilities = absorption_probabilities(chain, "a")
        assert probabilities["left"] == pytest.approx(0.25)
        assert probabilities["right"] == pytest.approx(0.75)

    def test_probabilities_sum_to_one(self):
        chain = Ctmc.from_rates(
            {
                ("a", "b"): 1.0,
                ("b", "a"): 0.5,
                ("a", "x"): 0.2,
                ("b", "y"): 2.0,
            }
        )
        probabilities = absorption_probabilities(chain, "a")
        assert sum(probabilities.values()) == pytest.approx(1.0)

    def test_start_must_be_transient(self):
        chain = Ctmc.from_rates({("a", "done"): 1.0})
        with pytest.raises(CtmcError):
            absorption_probabilities(chain, "done")


class TestMakeAbsorbing:
    def test_cuts_outgoing_rates(self):
        chain = Ctmc.from_rates({("up", "down"): 1.0, ("down", "up"): 5.0})
        absorbed = make_absorbing(chain, lambda s: s == "down")
        assert absorbed.absorbing_states() == ["down"]
        assert mean_time_to_absorption(absorbed, "up") == pytest.approx(1.0)

    def test_original_untouched(self):
        chain = Ctmc.from_rates({("up", "down"): 1.0, ("down", "up"): 5.0})
        make_absorbing(chain, lambda s: s == "down")
        assert chain.rate("down", "up") == 5.0

    def test_predicate_matching_nothing_rejected(self):
        chain = Ctmc.from_rates({("up", "down"): 1.0})
        with pytest.raises(CtmcError):
            make_absorbing(chain, lambda s: False)

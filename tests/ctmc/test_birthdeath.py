"""Tests for the closed-form birth-death chain."""

from __future__ import annotations

import pytest

from repro.ctmc import Ctmc, birth_death_steady_state, steady_state
from repro.errors import CtmcError


class TestClosedForm:
    def test_two_state(self):
        pi = birth_death_steady_state([2.0], [8.0])
        assert pi == pytest.approx([0.8, 0.2])

    def test_matches_full_solver(self):
        births = [1.0, 2.0, 0.5]
        deaths = [4.0, 3.0, 2.0]
        chain = Ctmc(list(range(4)))
        for k in range(3):
            chain.add_rate(k, k + 1, births[k])
            chain.add_rate(k + 1, k, deaths[k])
        assert birth_death_steady_state(births, deaths) == pytest.approx(
            steady_state(chain), abs=1e-10
        )

    def test_normalised(self):
        pi = birth_death_steady_state([1.0, 1.0, 1.0], [2.0, 2.0, 2.0])
        assert pi.sum() == pytest.approx(1.0)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(CtmcError):
            birth_death_steady_state([1.0], [1.0, 2.0])

    def test_zero_rate_rejected(self):
        with pytest.raises(CtmcError):
            birth_death_steady_state([0.0], [1.0])

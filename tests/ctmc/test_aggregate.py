"""Tests for the Trivedi-style two-state aggregation (Eqs. 1-2)."""

from __future__ import annotations

import pytest

from repro.ctmc import Ctmc, aggregate_two_state
from repro.errors import CtmcError


class TestTwoStateIdentity:
    def test_aggregating_a_two_state_chain_returns_its_rates(self):
        chain = Ctmc.from_rates({("up", "down"): 2.0, ("down", "up"): 8.0})
        aggregate = aggregate_two_state(chain, is_up=lambda s: s == "up")
        assert aggregate.failure_rate == pytest.approx(2.0)
        assert aggregate.repair_rate == pytest.approx(8.0)
        assert aggregate.availability == pytest.approx(0.8)
        assert aggregate.mttf == pytest.approx(0.5)
        assert aggregate.mttr == pytest.approx(0.125)


class TestPipelineAggregation:
    def test_sequential_pipeline_matches_paper_equation(self):
        """up -> s1 -> s2 -> up, collapse the s1/s2 pipeline.

        The equivalent repair rate must be (exit rate of the final stage)
        * P(final stage) / P(down) — the structure of the paper's Eq. 2.
        """
        tau, a, b = 1.0 / 720.0, 3.0, 12.0
        chain = Ctmc.from_rates(
            {("up", "s1"): tau, ("s1", "s2"): a, ("s2", "up"): b}
        )
        aggregate = aggregate_two_state(chain, is_up=lambda s: s == "up")
        assert aggregate.failure_rate == pytest.approx(tau)
        # sojourns: 1/a + 1/b; equivalent rate = 1 / total down time
        assert aggregate.mttr == pytest.approx(1.0 / a + 1.0 / b)

    def test_aggregate_preserves_availability(self):
        chain = Ctmc.from_rates(
            {
                ("up", "d1"): 0.4,
                ("d1", "d2"): 5.0,
                ("d2", "up"): 2.0,
                ("up", "d2"): 0.1,
            }
        )
        aggregate = aggregate_two_state(chain, is_up=lambda s: s == "up")
        # the equivalent two-state chain must reproduce P(up)
        assert aggregate.availability == pytest.approx(aggregate.up_probability)


class TestValidation:
    def test_all_up_rejected(self):
        chain = Ctmc.from_rates({("a", "b"): 1.0, ("b", "a"): 1.0})
        with pytest.raises(CtmcError):
            aggregate_two_state(chain, is_up=lambda s: True)

    def test_all_down_rejected(self):
        chain = Ctmc.from_rates({("a", "b"): 1.0, ("b", "a"): 1.0})
        with pytest.raises(CtmcError):
            aggregate_two_state(chain, is_up=lambda s: False)

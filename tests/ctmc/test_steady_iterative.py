"""Tests for the iterative (Krylov) steady-state path and its dispatch."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ctmc import Ctmc, steady_state, steady_state_iterative
from repro.ctmc.steady import (
    _ITERATIVE_CUTOFF_ENV,
    BatchSteadySolver,
    steady_state_direct,
    steady_state_gth,
    steady_state_power,
)
from repro.errors import SolverError


def updown(failure=2.0, repair=8.0):
    chain = Ctmc(["up", "down"])
    chain.add_rate("up", "down", failure)
    chain.add_rate("down", "up", repair)
    return chain


def cyclic(n=5, rate=3.0):
    chain = Ctmc(list(range(n)))
    for i in range(n):
        chain.add_rate(i, (i + 1) % n, rate)
    return chain


def availability_grid(m=6, failure=0.02, repair=0.5):
    """Structured birth-death chain of the paper's per-tier kind."""
    chain = Ctmc(list(range(m + 1)))
    for i in range(m):
        chain.add_rate(i, i + 1, (m - i) * failure)
        chain.add_rate(i + 1, i, repair)
    return chain


class TestIterativeSolver:
    def test_two_state_closed_form(self):
        pi = steady_state_iterative(updown(2.0, 8.0))
        assert pi[0] == pytest.approx(0.8, abs=1e-9)
        assert pi[1] == pytest.approx(0.2, abs=1e-9)

    def test_cyclic_uniform(self):
        pi = steady_state_iterative(cyclic(7))
        np.testing.assert_allclose(pi, np.full(7, 1.0 / 7.0), atol=1e-9)

    def test_matches_direct_on_structured_chain(self):
        chain = availability_grid(20)
        np.testing.assert_allclose(
            steady_state_iterative(chain),
            steady_state_direct(chain),
            rtol=0.0,
            atol=1e-8,
        )

    def test_matches_gth_on_small_chain(self):
        chain = updown(0.7, 3.1)
        np.testing.assert_allclose(
            steady_state_iterative(chain),
            steady_state_gth(chain),
            rtol=0.0,
            atol=1e-9,
        )

    def test_method_name_accepted(self):
        chain = availability_grid(10)
        np.testing.assert_allclose(
            steady_state(chain, method="iterative"),
            steady_state(chain, method="direct"),
            rtol=0.0,
            atol=1e-8,
        )

    def test_is_a_distribution(self):
        pi = steady_state_iterative(availability_grid(30))
        assert np.all(pi >= 0.0)
        assert pi.sum() == pytest.approx(1.0, abs=1e-12)


class TestAutoDispatch:
    def test_env_cutoff_routes_large_chains_through_iterative(
        self, monkeypatch, caplog
    ):
        import logging

        chain = availability_grid(220)  # 221 states, above the gth cutoff
        reference = steady_state(chain, method="direct")
        monkeypatch.setenv(_ITERATIVE_CUTOFF_ENV, "10")
        with caplog.at_level(logging.DEBUG, logger="repro.ctmc.steady"):
            via_iterative = steady_state(chain, method="auto")
        assert "auto -> iterative" in caplog.text
        np.testing.assert_allclose(via_iterative, reference, rtol=0.0, atol=1e-8)

    def test_invalid_env_value_raises(self, monkeypatch):
        from repro.ctmc.steady import _iterative_cutoff

        monkeypatch.setenv(_ITERATIVE_CUTOFF_ENV, "many")
        with pytest.raises(SolverError, match=_ITERATIVE_CUTOFF_ENV):
            _iterative_cutoff()
        monkeypatch.setenv(_ITERATIVE_CUTOFF_ENV, "0")
        with pytest.raises(SolverError, match=_ITERATIVE_CUTOFF_ENV):
            _iterative_cutoff()

    def test_batch_solver_iterative_method(self):
        chain = availability_grid(12)
        solver = BatchSteadySolver.from_chain(chain)
        rates = solver.rates_of(chain)
        np.testing.assert_allclose(
            solver.solve(rates, method="iterative"),
            solver.solve(rates, method="direct"),
            rtol=0.0,
            atol=1e-8,
        )


class TestPowerResidualReporting:
    def test_non_convergence_reports_achieved_residual(self):
        chain = availability_grid(8, failure=0.9, repair=0.4)
        with pytest.raises(SolverError, match="achieved residual"):
            steady_state_power(chain, max_iterations=2)

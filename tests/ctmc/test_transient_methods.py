"""Tests for the transient solver's method dispatch and backends.

Covers the sparse-first solver paths: dense/sparse threshold overrides
(constructor + ``REPRO_DENSE_THRESHOLD``), boundary parity at
``n == threshold +- 1``, Krylov-vs-uniformisation agreement (including
the 2401-state paper-scale canonical model), adaptive early exit, and
``auto`` size dispatch.
"""

from __future__ import annotations

import logging

import numpy as np
import pytest

from repro.ctmc import Ctmc
from repro.ctmc.transient import (
    _AUTO_CUTOFF_ENV,
    _BLOCK_BUDGET_ENV,
    _DENSE_CUTOFF_ENV,
    BatchTransientSolver,
)
from repro.errors import SolverError

TIMES = [0.0, 0.3, 1.5, 6.0, 40.0]


def birth_death(n, up=1.1, down=2.3):
    rates = {}
    for i in range(n - 1):
        rates[(i, i + 1)] = up + 0.01 * i
        rates[(i + 1, i)] = down + 0.02 * i
    return Ctmc.from_rates(rates)


def initial(n):
    vector = np.zeros(n)
    vector[0] = 1.0
    return vector


class TestThresholdOverrides:
    def test_constructor_override_forces_sparse(self):
        chain = birth_death(10)
        solver = BatchTransientSolver(chain, dense_threshold=5)
        assert solver.backend == "sparse"
        assert solver.dense_threshold == 5

    def test_constructor_override_forces_dense(self):
        chain = birth_death(10)
        solver = BatchTransientSolver(chain, dense_threshold=1000)
        assert solver.backend == "dense"

    def test_env_override(self, monkeypatch):
        chain = birth_death(10)
        monkeypatch.setenv(_DENSE_CUTOFF_ENV, "5")
        assert BatchTransientSolver(chain).backend == "sparse"
        monkeypatch.setenv(_DENSE_CUTOFF_ENV, "50")
        assert BatchTransientSolver(chain).backend == "dense"

    def test_constructor_beats_env(self, monkeypatch):
        chain = birth_death(10)
        monkeypatch.setenv(_DENSE_CUTOFF_ENV, "5")
        solver = BatchTransientSolver(chain, dense_threshold=100)
        assert solver.backend == "dense"

    def test_invalid_env_value_raises(self, monkeypatch):
        chain = birth_death(4)
        monkeypatch.setenv(_DENSE_CUTOFF_ENV, "not-a-number")
        with pytest.raises(SolverError, match=_DENSE_CUTOFF_ENV):
            BatchTransientSolver(chain)

    def test_invalid_constructor_value_raises(self):
        chain = birth_death(4)
        with pytest.raises(SolverError, match="dense_threshold"):
            BatchTransientSolver(chain, dense_threshold=0)

    def test_block_budget_override(self, monkeypatch):
        chain = birth_death(8)
        # A budget of exactly 3*n*n entries caps the power table at 3.
        solver = BatchTransientSolver(chain, block_entry_budget=3 * 64)
        assert solver._block == 3
        monkeypatch.setenv(_BLOCK_BUDGET_ENV, str(2 * 64))
        assert BatchTransientSolver(chain)._block == 2

    def test_chosen_path_is_logged(self, caplog):
        chain = birth_death(6)
        with caplog.at_level(logging.DEBUG, logger="repro.ctmc.transient"):
            BatchTransientSolver(chain, dense_threshold=3)
            BatchTransientSolver(chain, dense_threshold=300)
        text = caplog.text
        assert "backend=sparse" in text
        assert "backend=dense" in text


class TestBoundaryParity:
    """Dense vs sparse around ``n == threshold +- 1``.

    The same path is bit-deterministic (two identical solves agree byte
    for byte); across the dense/sparse boundary the arithmetic orders
    differ, so agreement is asserted at tight tolerance instead.
    """

    @pytest.mark.parametrize("n", [9, 10, 11])
    def test_dispatch_at_boundary(self, n):
        chain = birth_death(n)
        solver = BatchTransientSolver(chain, dense_threshold=10)
        assert solver.backend == ("dense" if n <= 10 else "sparse")

    @pytest.mark.parametrize("n", [9, 10, 11])
    def test_same_path_bit_identical(self, n):
        chain = birth_death(n)
        for threshold in (n - 1, n, n + 1):
            first = BatchTransientSolver(chain, dense_threshold=threshold)
            second = BatchTransientSolver(chain, dense_threshold=threshold)
            a = first.distributions(initial(n), TIMES)
            b = second.distributions(initial(n), TIMES)
            assert np.array_equal(a, b)

    @pytest.mark.parametrize("n", [9, 10, 11])
    def test_cross_path_agreement(self, n):
        chain = birth_death(n)
        dense = BatchTransientSolver(chain, dense_threshold=n)
        sparse = BatchTransientSolver(chain, dense_threshold=n - 1)
        assert dense.backend == "dense"
        assert sparse.backend == "sparse"
        a = dense.distributions(initial(n), TIMES)
        b = sparse.distributions(initial(n), TIMES)
        np.testing.assert_allclose(a, b, rtol=0.0, atol=1e-12)


class TestKrylov:
    def test_matches_uniformisation(self):
        chain = birth_death(30)
        exact = BatchTransientSolver(chain)
        krylov = BatchTransientSolver(chain, method="krylov")
        assert krylov.backend == "krylov"
        a = exact.distributions(initial(30), TIMES)
        b = krylov.distributions(initial(30), TIMES)
        np.testing.assert_allclose(a, b, rtol=0.0, atol=1e-10)

    def test_time_zero_and_duplicates(self):
        chain = birth_death(12)
        krylov = BatchTransientSolver(chain, method="krylov")
        out = krylov.distributions(initial(12), [2.0, 0.0, 2.0])
        assert out[0] == pytest.approx(out[2], abs=0.0)
        assert out[1] == pytest.approx(initial(12), abs=0.0)

    def test_unsorted_times(self):
        chain = birth_death(12)
        exact = BatchTransientSolver(chain)
        krylov = BatchTransientSolver(chain, method="krylov")
        times = [5.0, 0.5, 2.0]
        np.testing.assert_allclose(
            krylov.distributions(initial(12), times),
            exact.distributions(initial(12), times),
            rtol=0.0,
            atol=1e-10,
        )

    def test_rewards_shape(self):
        chain = birth_death(12)
        krylov = BatchTransientSolver(chain, method="krylov")
        rewards = np.linspace(0.0, 1.0, 12)
        out = krylov.rewards(initial(12), rewards, TIMES)
        assert out.shape == (len(TIMES),)


class TestPaperScaleModel:
    """The 2401-state canonical availability model (paper scale)."""

    @pytest.fixture(scope="class")
    def structure(self):
        from repro.availability.grouped import CanonicalLayout, coa_structure

        layout = CanonicalLayout(((6,),) * 4)
        return coa_structure(layout, ((0.02, 0.5),) * 4)

    @pytest.fixture(scope="class")
    def slot_rates(self):
        return (0.02, 0.5) * 4

    def test_krylov_within_tolerance(self, structure, slot_rates):
        times = [0.0, 24.0, 72.0, 168.0]
        exact = structure.transient_coa(slot_rates, times)
        krylov = structure.transient_coa(slot_rates, times, method="krylov")
        assert structure.n_states == 2401
        np.testing.assert_allclose(krylov, exact, rtol=0.0, atol=1e-8)

    def test_adaptive_within_tolerance(self, structure, slot_rates):
        times = [0.0, 24.0, 72.0, 168.0, 720.0]
        exact = structure.transient_coa(slot_rates, times)
        adaptive = structure.transient_coa(slot_rates, times, method="adaptive")
        np.testing.assert_allclose(adaptive, exact, rtol=0.0, atol=1e-10)

    def test_auto_is_bit_identical_at_paper_scale(self, structure, slot_rates):
        # 2401 < the auto cutoff, so dispatch selects the exact path and
        # the result must be byte-for-byte the default's.
        times = [0.0, 24.0, 72.0]
        exact = structure.transient_coa(slot_rates, times)
        auto = structure.transient_coa(slot_rates, times, method="auto")
        solver = structure.transient_solver(slot_rates, method="auto")
        assert solver.resolved_method == "uniformisation"
        assert np.array_equal(auto, exact)


class TestAutoDispatch:
    def test_small_chain_resolves_exact(self):
        solver = BatchTransientSolver(birth_death(20), method="auto")
        assert solver.resolved_method == "uniformisation"

    def test_env_cutoff_switches_to_adaptive(self, monkeypatch):
        monkeypatch.setenv(_AUTO_CUTOFF_ENV, "10")
        solver = BatchTransientSolver(birth_death(20), method="auto")
        assert solver.resolved_method == "adaptive"

    def test_unknown_method_rejected(self):
        with pytest.raises(SolverError, match="unknown transient method"):
            BatchTransientSolver(birth_death(4), method="simpson")

    def test_invalid_atol_rejected(self):
        with pytest.raises(SolverError, match="atol"):
            BatchTransientSolver(birth_death(4), method="adaptive", atol=0.0)


class TestAdaptive:
    def test_early_exit_fires_on_long_horizon(self):
        chain = birth_death(40)
        solver = BatchTransientSolver(
            chain, method="adaptive", dense_threshold=10
        )
        exact = BatchTransientSolver(chain, dense_threshold=10)
        times = [0.0, 5.0, 5000.0]
        a = solver.distributions(initial(40), times)
        b = exact.distributions(initial(40), times)
        assert solver.adaptive_exits >= 1
        assert solver.last_adaptive_exit is not None
        np.testing.assert_allclose(a, b, rtol=0.0, atol=1e-10)

    def test_no_exit_is_bit_identical_to_sparse_stream(self):
        # Without an early exit the adaptive path runs the exact
        # sequential recurrence; a huge atol=default means it can fire,
        # so pin a tiny horizon where the window is too short to fire.
        chain = birth_death(15)
        adaptive = BatchTransientSolver(
            chain, method="adaptive", dense_threshold=5, atol=1e-300
        )
        exact = BatchTransientSolver(chain, dense_threshold=5)
        a = adaptive.distributions(initial(15), TIMES)
        b = exact.distributions(initial(15), TIMES)
        assert adaptive.adaptive_exits == 0
        assert np.array_equal(a, b)

    def test_declared_atol_bounds_error(self):
        chain = birth_death(25)
        atol = 1e-6
        adaptive = BatchTransientSolver(chain, method="adaptive", atol=atol)
        exact = BatchTransientSolver(
            chain, method="uniformisation", dense_threshold=1
        )
        times = [0.0, 1.0, 50.0, 2000.0]
        a = adaptive.distributions(initial(25), times)
        b = exact.distributions(initial(25), times)
        assert np.abs(a - b).max() <= atol


class TestFrozenChain:
    def test_all_methods_serve_pi0(self):
        chain = Ctmc(["a", "b"])  # no transitions at all
        for method in ("uniformisation", "krylov", "adaptive", "auto"):
            solver = BatchTransientSolver(chain, method=method)
            assert solver.backend == "frozen"
            out = solver.distributions({"a": 1.0}, [0.0, 9.0])
            np.testing.assert_array_equal(out, [[1.0, 0.0], [1.0, 0.0]])

"""Tests for piecewise-constant uniformisation (transient_piecewise)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.ctmc import Ctmc
from repro.ctmc.transient import BatchTransientSolver, transient_piecewise
from repro.errors import SolverError


@pytest.fixture(scope="module")
def solvers():
    fast = Ctmc.from_rates({("a", "b"): 2.0, ("b", "a"): 1.0})
    slow = Ctmc.from_rates({("a", "b"): 0.25, ("b", "a"): 3.0}, states=["a", "b"])
    return BatchTransientSolver(fast), BatchTransientSolver(slow)


def oracle(segments, initial, time):
    """Brute-force: re-propagate phase by phase for one single time."""
    carry = initial
    start = 0.0
    for position, (solver, duration) in enumerate(segments):
        last = position == len(segments) - 1
        end = math.inf if last else start + duration
        if start <= time < end:
            return solver.distributions(carry, [time - start])[0]
        if not math.isfinite(duration):
            return solver.distributions(carry, [time - start])[0]
        if duration > 0.0:
            carry = solver.propagate(carry, duration)
        start = end
    raise AssertionError("time not covered")


class TestPropagate:
    def test_propagate_is_single_time_distribution(self, solvers):
        fast, _ = solvers
        assert (
            fast.propagate({"a": 1.0}, 0.7).tobytes()
            == fast.distributions({"a": 1.0}, [0.7])[0].tobytes()
        )

    def test_propagate_zero_duration_is_identity(self, solvers):
        fast, _ = solvers
        out = fast.propagate(np.array([0.25, 0.75]), 0.0)
        assert out.tolist() == [0.25, 0.75]


class TestPiecewise:
    def test_bit_identical_to_per_time_oracle(self, solvers):
        fast, slow = solvers
        segments = [(fast, 0.8), (slow, 1.2), (fast, math.inf)]
        times = [0.0, 0.3, 0.8, 1.5, 2.0, 2.75, 10.0]
        out = transient_piecewise(segments, {"a": 1.0}, times)
        for i, t in enumerate(times):
            assert out[i].tobytes() == oracle(segments, {"a": 1.0}, t).tobytes()

    def test_single_open_segment_equals_plain_batch(self, solvers):
        fast, _ = solvers
        times = [0.0, 0.5, 1.0, 4.0]
        out = transient_piecewise([(fast, math.inf)], {"a": 1.0}, times)
        assert out.tobytes() == fast.distributions({"a": 1.0}, times).tobytes()

    def test_boundary_time_belongs_to_next_segment(self, solvers):
        fast, slow = solvers
        segments = [(fast, 1.0), (slow, math.inf)]
        # t = 1.0 lands exactly on the boundary: it must equal the carried
        # vector (offset 0 in the next segment) and the oracle's value.
        out = transient_piecewise(segments, {"a": 1.0}, [1.0])
        carried = fast.propagate({"a": 1.0}, 1.0)
        assert out[0].tobytes() == carried.tobytes()
        assert out[0].tobytes() == oracle(segments, {"a": 1.0}, 1.0).tobytes()

    def test_zero_duration_segment_is_a_no_op(self, solvers):
        fast, slow = solvers
        times = [0.0, 0.4, 1.7]
        with_zero = transient_piecewise(
            [(slow, 0.0), (fast, 1.0), (slow, 0.0), (slow, math.inf)],
            {"a": 1.0},
            times,
        )
        without = transient_piecewise(
            [(fast, 1.0), (slow, math.inf)], {"a": 1.0}, times
        )
        assert with_zero.tobytes() == without.tobytes()

    def test_non_final_inf_duration_is_terminal(self, solvers):
        fast, slow = solvers
        out = transient_piecewise(
            [(fast, math.inf), (slow, 1.0), (slow, math.inf)],
            {"a": 1.0},
            [0.0, 2.0, 9.0],
        )
        plain = fast.distributions({"a": 1.0}, [0.0, 2.0, 9.0])
        assert out.tobytes() == plain.tobytes()

    def test_unsorted_times_align_with_input_order(self, solvers):
        fast, slow = solvers
        segments = [(fast, 1.0), (slow, math.inf)]
        shuffled = [2.0, 0.3, 1.0, 0.0]
        out = transient_piecewise(segments, {"a": 1.0}, shuffled)
        for i, t in enumerate(shuffled):
            assert out[i].tobytes() == oracle(segments, {"a": 1.0}, t).tobytes()

    def test_return_carries(self, solvers):
        fast, slow = solvers
        out, carries = transient_piecewise(
            [(fast, 0.8), (slow, math.inf)],
            {"a": 1.0},
            [0.0, 2.0],
            return_carries=True,
        )
        assert len(carries) == 2
        assert carries[0].tolist() == [1.0, 0.0]
        assert carries[1].tobytes() == fast.propagate({"a": 1.0}, 0.8).tobytes()

    def test_validation(self, solvers):
        fast, _ = solvers
        three = BatchTransientSolver(
            Ctmc.from_rates({("x", "y"): 1.0, ("y", "z"): 1.0, ("z", "x"): 1.0})
        )
        with pytest.raises(SolverError):
            transient_piecewise([], {"a": 1.0}, [0.0])
        with pytest.raises(SolverError):
            transient_piecewise([(fast, -1.0), (fast, math.inf)], {"a": 1.0}, [0.0])
        with pytest.raises(SolverError):
            transient_piecewise([(fast, 1.0), (three, math.inf)], {"a": 1.0}, [0.0])
        with pytest.raises(SolverError):
            transient_piecewise([(fast, math.inf)], {"a": 1.0}, [-1.0])
        with pytest.raises(SolverError):
            # NaN matches no segment window: must fail loudly, not
            # return an unassigned output row
            transient_piecewise([(fast, math.inf)], {"a": 1.0}, [math.nan])
        with pytest.raises(SolverError):
            transient_piecewise([(fast, math.inf)], {"a": 1.0}, [math.inf])
        with pytest.raises(SolverError):
            transient_piecewise([("nope", math.inf)], {"a": 1.0}, [0.0])


class TestPiecewiseLargeChain:
    def test_sparse_path_matches_oracle(self):
        # A chain above the densification cutoff exercises the sequential
        # iterate recurrence instead of the block-power path.
        size = 450
        rates = {}
        for i in range(size - 1):
            rates[(i, i + 1)] = 1.0 + (i % 3)
            rates[(i + 1, i)] = 0.5
        chain = Ctmc.from_rates(rates, states=list(range(size)))
        a = BatchTransientSolver(chain)
        b = BatchTransientSolver(chain)
        segments = [(a, 0.5), (b, math.inf)]
        initial = {0: 1.0}
        times = [0.0, 0.25, 0.5, 1.5]
        out = transient_piecewise(segments, initial, times)
        for i, t in enumerate(times):
            assert out[i].tobytes() == oracle(segments, initial, t).tobytes()

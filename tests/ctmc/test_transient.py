"""Tests for transient analysis (uniformisation) against closed forms."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.ctmc import Ctmc
from repro.ctmc.transient import transient_distribution, transient_rewards
from repro.errors import SolverError


def updown(failure=2.0, repair=8.0):
    return Ctmc.from_rates({("up", "down"): failure, ("down", "up"): repair})


def two_state_closed_form(t, lam, mu):
    """P(up at t | up at 0) for the two-state availability model."""
    total = lam + mu
    return mu / total + lam / total * math.exp(-total * t)


class TestAgainstClosedForm:
    @pytest.mark.parametrize("t", [0.0, 0.01, 0.1, 0.5, 1.0, 5.0])
    def test_two_state_availability(self, t):
        lam, mu = 2.0, 8.0
        chain = updown(lam, mu)
        pi_t = transient_distribution(chain, {"up": 1.0}, t)
        assert pi_t[0] == pytest.approx(two_state_closed_form(t, lam, mu), abs=1e-8)

    def test_pure_death_poisson(self):
        # A -> B at rate r: P(still in A at t) = exp(-r t).
        chain = Ctmc.from_rates({("a", "b"): 3.0})
        for t in (0.1, 0.4, 1.0):
            pi_t = transient_distribution(chain, {"a": 1.0}, t)
            assert pi_t[0] == pytest.approx(math.exp(-3.0 * t), abs=1e-8)

    def test_long_horizon_converges_to_steady_state(self):
        chain = updown()
        pi_t = transient_distribution(chain, {"down": 1.0}, 100.0)
        assert pi_t == pytest.approx([0.8, 0.2], abs=1e-8)

    def test_time_zero_returns_initial(self):
        chain = updown()
        pi_0 = transient_distribution(chain, {"down": 1.0}, 0.0)
        assert pi_0 == pytest.approx([0.0, 1.0])


class TestInterface:
    def test_vector_initial_distribution(self):
        chain = updown()
        pi_t = transient_distribution(chain, np.array([0.5, 0.5]), 0.0)
        assert pi_t == pytest.approx([0.5, 0.5])

    def test_negative_time_rejected(self):
        with pytest.raises(SolverError):
            transient_distribution(updown(), {"up": 1.0}, -1.0)

    def test_bad_initial_distribution_rejected(self):
        with pytest.raises(SolverError):
            transient_distribution(updown(), np.array([0.7, 0.7]), 1.0)

    def test_wrong_shape_rejected(self):
        with pytest.raises(SolverError):
            transient_distribution(updown(), np.array([1.0]), 1.0)

    def test_frozen_chain(self):
        chain = Ctmc(["a", "b"])
        pi_t = transient_distribution(chain, {"a": 1.0}, 10.0)
        assert pi_t == pytest.approx([1.0, 0.0])

    def test_transient_rewards_series(self):
        chain = updown()
        rewards = np.array([1.0, 0.0])
        values = transient_rewards(chain, {"up": 1.0}, rewards, [0.0, 100.0])
        assert values[0] == pytest.approx(1.0)
        assert values[1] == pytest.approx(0.8, abs=1e-8)

    def test_transient_rewards_shape_mismatch(self):
        with pytest.raises(SolverError):
            transient_rewards(updown(), {"up": 1.0}, np.array([1.0]), [0.0])

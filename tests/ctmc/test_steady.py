"""Tests for steady-state solvers: all methods agree with closed forms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ctmc import Ctmc
from repro.ctmc.steady import (
    steady_state,
    steady_state_direct,
    steady_state_gth,
    steady_state_power,
)
from repro.errors import SolverError

METHODS = [steady_state_direct, steady_state_gth, steady_state_power]


def updown(failure=2.0, repair=8.0):
    return Ctmc.from_rates({("up", "down"): failure, ("down", "up"): repair})


def cyclic(n=5, rate=3.0):
    chain = Ctmc(list(range(n)))
    for i in range(n):
        chain.add_rate(i, (i + 1) % n, rate)
    return chain


class TestAgainstClosedForms:
    @pytest.mark.parametrize("solver", METHODS)
    def test_two_state(self, solver):
        pi = solver(updown())
        assert pi == pytest.approx([0.8, 0.2], abs=1e-9)

    @pytest.mark.parametrize("solver", METHODS)
    def test_uniform_cycle(self, solver):
        pi = solver(cyclic())
        assert pi == pytest.approx([0.2] * 5, abs=1e-9)

    @pytest.mark.parametrize("solver", METHODS)
    def test_birth_death_detailed_balance(self, solver):
        chain = Ctmc(list(range(4)))
        birth, death = 1.0, 2.0
        for i in range(3):
            chain.add_rate(i, i + 1, birth)
            chain.add_rate(i + 1, i, death)
        pi = solver(chain)
        weights = np.array([(birth / death) ** k for k in range(4)])
        assert pi == pytest.approx(weights / weights.sum(), abs=1e-9)

    @pytest.mark.parametrize("solver", METHODS)
    def test_stiff_rates(self, solver):
        # Rates spanning 9 orders of magnitude (hardware vs reboot rates).
        pi = solver(updown(failure=1e-5, repair=1e4))
        expected_down = 1e-5 / (1e-5 + 1e4)
        assert pi[1] == pytest.approx(expected_down, rel=1e-6)

    @pytest.mark.parametrize("solver", METHODS)
    def test_single_state(self, solver):
        assert solver(Ctmc(["only"])) == pytest.approx([1.0])


class TestProperties:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_chains_satisfy_balance(self, seed):
        rng = np.random.default_rng(seed)
        n = 8
        chain = Ctmc(list(range(n)))
        for i in range(n):
            for j in range(n):
                if i != j and rng.random() < 0.5:
                    chain.add_rate(i, j, float(rng.uniform(0.1, 10.0)))
        # ensure irreducibility with a cycle
        for i in range(n):
            chain.add_rate(i, (i + 1) % n, 0.05)
        pi = steady_state(chain)
        assert pi.sum() == pytest.approx(1.0, abs=1e-10)
        assert np.all(pi >= 0)
        residual = pi @ chain.dense_generator()
        assert np.abs(residual).max() < 1e-8

    @pytest.mark.parametrize("seed", range(3))
    def test_methods_agree(self, seed):
        rng = np.random.default_rng(100 + seed)
        n = 6
        chain = Ctmc(list(range(n)))
        for i in range(n):
            chain.add_rate(i, (i + 1) % n, float(rng.uniform(0.5, 5.0)))
            if i >= 1:
                chain.add_rate(i, i - 1, float(rng.uniform(0.5, 5.0)))
        reference = steady_state_gth(chain)
        assert steady_state_direct(chain) == pytest.approx(reference, abs=1e-8)
        assert steady_state_power(chain) == pytest.approx(reference, abs=1e-8)


class TestFailures:
    def test_no_transitions_power_raises(self):
        with pytest.raises(SolverError):
            steady_state_power(Ctmc(["a", "b"]))

    def test_reducible_chain_gth_raises(self):
        chain = Ctmc.from_rates({("a", "b"): 1.0})  # b absorbing
        with pytest.raises(SolverError):
            steady_state_gth(chain)

    def test_unknown_method_raises(self):
        with pytest.raises(SolverError):
            steady_state(updown(), method="magic")

    def test_auto_uses_gth_for_small(self):
        pi = steady_state(updown(), method="auto")
        assert pi == pytest.approx([0.8, 0.2], abs=1e-12)

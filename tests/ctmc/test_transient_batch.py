"""Tests for the batched uniformisation solver.

The contract under test: a batched call over a set of times is
**bit-identical** to the per-time loop (:func:`transient_rewards`), and
both agree with the independent single-time implementation
(:func:`transient_distribution`) to solver tolerance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ctmc import Ctmc, steady_state
from repro.ctmc.transient import (
    BatchTransientSolver,
    _poisson_weights,
    transient_batch,
    transient_distribution,
    transient_rewards,
)
from repro.errors import SolverError


def updown(failure=2.0, repair=8.0):
    return Ctmc.from_rates({("up", "down"): failure, ("down", "up"): repair})


def stiff_chain():
    """A chain whose uniformisation series needs thousands of terms.

    Rates mimic the paper's network model: slow patching (~1/720 h)
    against fast recovery (~1/h), so ``Lambda t`` is large at monthly
    horizons — the regime the batch solver exists for.
    """
    rates = {}
    states = [(i, j) for i in range(3) for j in range(3)]
    for i in range(3):
        for j in range(3):
            if i < 2:
                rates[((i, j), (i + 1, j))] = 0.0014 * (2 - i)
            if i > 0:
                rates[((i, j), (i - 1, j))] = 1.5 * i
            if j < 2:
                rates[((i, j), (i, j + 1))] = 0.0014 * (2 - j)
            if j > 0:
                rates[((i, j), (i, j - 1))] = 0.9 * j
    return Ctmc.from_rates(rates, states=states)


class TestBitIdentityWithPerTimeLoop:
    """The acceptance contract: batch == per-time loop, byte for byte."""

    @pytest.mark.parametrize(
        "times",
        [
            [0.0, 0.5, 1.0, 5.0],
            [720.0, 0.0, 24.0, 168.0, 360.0],  # unsorted, paper horizon
            [1000.0],
            [0.0],
        ],
    )
    def test_stiff_chain(self, times):
        chain = stiff_chain()
        initial = {(2, 2): 1.0}
        rewards = np.array([float(i + j) for i, j in chain.states])
        batch = BatchTransientSolver(chain).rewards(initial, rewards, times)
        oracle = transient_rewards(chain, initial, rewards, times)
        assert batch.tobytes() == oracle.tobytes()

    def test_two_state(self):
        chain = updown()
        times = [0.0, 0.1, 2.0, 100.0]
        rewards = np.array([1.0, 0.0])
        batch = BatchTransientSolver(chain).rewards(chain_initial(chain), rewards, times)
        oracle = transient_rewards(chain, chain_initial(chain), rewards, times)
        assert batch.tobytes() == oracle.tobytes()

    def test_distributions_match_single_time_calls(self):
        chain = stiff_chain()
        initial = {(2, 2): 1.0}
        times = [12.0, 300.0, 720.0]
        solver = BatchTransientSolver(chain)
        together = solver.distributions(initial, times)
        for i, t in enumerate(times):
            alone = solver.distributions(initial, [t])
            assert together[i].tobytes() == alone[0].tobytes()

    def test_sparse_path_bit_identity(self):
        # Force the sparse (sequential) accumulation path via a chain
        # above the dense cutoff equivalent: patch the cutoff boundary
        # by using the from_generator construction on a csr matrix.
        chain = stiff_chain()
        q = chain.generator().tocsr().astype(float)
        solver = BatchTransientSolver.from_generator(q, states=chain.states)
        solver._powers = None  # exercise the sequential branch
        initial = {(2, 2): 1.0}
        times = [3.0, 40.0]
        together = solver.distributions(initial, times)
        for i, t in enumerate(times):
            alone = solver.distributions(initial, [t])
            assert together[i].tobytes() == alone[0].tobytes()


class TestAccuracy:
    def test_matches_transient_distribution(self):
        chain = stiff_chain()
        initial = {(2, 2): 1.0}
        times = [0.0, 1.0, 24.0, 168.0, 720.0]
        dists = BatchTransientSolver(chain).distributions(initial, times)
        for row, t in zip(dists, times):
            reference = transient_distribution(chain, initial, t)
            assert row == pytest.approx(reference, abs=1e-9)

    def test_rows_are_distributions(self):
        chain = stiff_chain()
        dists = BatchTransientSolver(chain).distributions(
            {(2, 2): 1.0}, [0.0, 7.0, 900.0]
        )
        assert np.all(dists >= 0.0)
        assert dists.sum(axis=1) == pytest.approx([1.0, 1.0, 1.0])

    def test_converges_to_steady_state(self):
        chain = updown()
        pi = steady_state(chain)
        dists = BatchTransientSolver(chain).distributions({"down": 1.0}, [1000.0])
        assert dists[0] == pytest.approx(pi, abs=1e-8)

    def test_absorbing_chain_accumulates_mass(self):
        # a -> b -> c (absorbing); steady state is ill-posed, transient is not
        chain = Ctmc.from_rates({("a", "b"): 1.0, ("b", "c"): 2.0})
        dists = BatchTransientSolver(chain).distributions(
            {"a": 1.0}, [0.0, 1.0, 5.0, 200.0]
        )
        absorbed = dists[:, 2]
        assert np.all(np.diff(absorbed) >= -1e-12)  # monotone absorption
        assert absorbed[0] == 0.0
        assert absorbed[-1] == pytest.approx(1.0, abs=1e-9)

    def test_frozen_chain(self):
        chain = Ctmc(["a", "b"])
        dists = BatchTransientSolver(chain).distributions({"a": 1.0}, [0.0, 50.0])
        assert dists[0].tolist() == [1.0, 0.0]
        assert dists[1].tolist() == [1.0, 0.0]


class TestManyRewards:
    def test_reward_matrix_shape_and_values(self):
        chain = updown()
        times = [0.0, 0.5, 3.0]
        rewards = np.array([[1.0, 0.0], [0.0, 1.0], [2.0, 2.0]])
        out = BatchTransientSolver(chain).rewards({"up": 1.0}, rewards, times)
        assert out.shape == (3, 3)
        assert out[:, 0] + out[:, 1] == pytest.approx([1.0, 1.0, 1.0])
        assert out[:, 2] == pytest.approx([2.0, 2.0, 2.0])

    def test_vector_reward_keeps_legacy_shape(self):
        chain = updown()
        out = BatchTransientSolver(chain).rewards(
            {"up": 1.0}, np.array([1.0, 0.0]), [0.0, 100.0]
        )
        assert out.shape == (2,)
        assert out[0] == pytest.approx(1.0)
        assert out[1] == pytest.approx(0.8, abs=1e-8)


class TestValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(SolverError):
            BatchTransientSolver(updown()).distributions({"up": 1.0}, [1.0, -0.5])

    def test_bad_initial_rejected(self):
        with pytest.raises(SolverError):
            BatchTransientSolver(updown()).distributions(np.array([0.7, 0.7]), [1.0])

    def test_bad_reward_shape_rejected(self):
        with pytest.raises(SolverError):
            BatchTransientSolver(updown()).rewards(
                {"up": 1.0}, np.array([1.0, 2.0, 3.0]), [1.0]
            )

    def test_bad_tolerance_rejected(self):
        with pytest.raises(SolverError):
            BatchTransientSolver(updown(), tolerance=0.0)

    def test_mismatched_rows_rejected(self):
        solver = BatchTransientSolver(updown())
        rows = solver.poisson_rows([1.0])
        with pytest.raises(SolverError):
            solver.distributions({"up": 1.0}, [1.0, 2.0], rows=rows)

    def test_from_generator_mapping_needs_states(self):
        q = updown().generator()
        solver = BatchTransientSolver.from_generator(q)
        with pytest.raises(SolverError):
            solver.distributions({"up": 1.0}, [1.0])
        # with labels the mapping works
        labelled = BatchTransientSolver.from_generator(q, states=["up", "down"])
        dists = labelled.distributions({"up": 1.0}, [0.0])
        assert dists[0].tolist() == [1.0, 0.0]


class TestTransientBatchFamily:
    def test_matches_per_chain_solvers(self):
        chains = [updown(2.0, 8.0), updown(1.0, 3.0), updown(2.0, 8.0)]
        times = [0.0, 0.4, 2.5, 60.0]
        rewards = np.array([1.0, 0.0])
        results = transient_batch(chains, {"up": 1.0}, rewards, times)
        assert len(results) == 3
        for chain, result in zip(chains, results):
            direct = transient_rewards(chain, {"up": 1.0}, rewards, times)
            assert result == pytest.approx(direct, abs=1e-9)
        # identical chains give identical curves
        assert results[0].tobytes() == results[2].tobytes()

    def test_per_chain_initials_and_rewards(self):
        chains = [updown(), updown(1.0, 1.0)]
        results = transient_batch(
            chains,
            [{"up": 1.0}, {"down": 1.0}],
            [np.array([1.0, 0.0]), np.array([0.0, 1.0])],
            [0.0],
        )
        assert results[0][0] == pytest.approx(1.0)
        assert results[1][0] == pytest.approx(1.0)

    def test_misaligned_sequences_rejected(self):
        with pytest.raises(SolverError):
            transient_batch([updown()], [{"up": 1.0}, {"up": 1.0}], np.array([1.0, 0.0]), [0.0])
        with pytest.raises(SolverError):
            transient_batch([updown()], {"up": 1.0}, [], [0.0])


class TestPoissonWeights:
    @pytest.mark.parametrize("mean", [0.0, 0.3, 1.0, 7.7, 171.8, 5154.8])
    def test_against_scipy(self, mean):
        from scipy import stats

        weights, left = _poisson_weights(mean, 1e-10)
        reference = stats.poisson.pmf(np.arange(left, left + len(weights)), mean)
        assert weights == pytest.approx(reference, abs=1e-12)
        assert weights.sum() == pytest.approx(1.0)

    def test_zero_mean(self):
        weights, left = _poisson_weights(0.0, 1e-10)
        assert left == 0
        assert weights.tolist() == [1.0]

    def test_covers_requested_mass(self):
        weights, _ = _poisson_weights(50.0, 1e-8)
        assert weights.sum() == pytest.approx(1.0)
        assert len(weights) < 50 + 200  # truncation actually truncates


def chain_initial(chain):
    return {chain.states[0]: 1.0}

"""Tests for reward evaluation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ctmc import Ctmc, expected_reward_rate, reward_vector
from repro.errors import CtmcError


@pytest.fixture
def updown():
    return Ctmc.from_rates({("up", "down"): 2.0, ("down", "up"): 8.0})


class TestRewardVector:
    def test_mapping_with_default_zero(self, updown):
        vector = reward_vector(updown, {"up": 1.0})
        assert vector == pytest.approx([1.0, 0.0])

    def test_callable(self, updown):
        vector = reward_vector(updown, lambda state: len(state))
        assert vector == pytest.approx([2.0, 4.0])

    def test_non_finite_rejected(self, updown):
        with pytest.raises(CtmcError):
            reward_vector(updown, {"up": float("nan")})


class TestExpectedReward:
    def test_availability_reward(self, updown):
        assert expected_reward_rate(updown, {"up": 1.0}) == pytest.approx(0.8)

    def test_weighted_reward(self, updown):
        value = expected_reward_rate(updown, {"up": 10.0, "down": 5.0})
        assert value == pytest.approx(0.8 * 10 + 0.2 * 5)

    def test_with_precomputed_probabilities(self, updown):
        pi = np.array([0.5, 0.5])
        assert expected_reward_rate(updown, {"up": 2.0}, pi) == pytest.approx(1.0)

    def test_shape_mismatch_rejected(self, updown):
        with pytest.raises(CtmcError):
            expected_reward_rate(updown, {"up": 1.0}, np.array([1.0]))

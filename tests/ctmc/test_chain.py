"""Tests for the CTMC container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ctmc import Ctmc
from repro.errors import CtmcError


@pytest.fixture
def updown():
    return Ctmc.from_rates({("up", "down"): 2.0, ("down", "up"): 8.0})


class TestConstruction:
    def test_from_rates_infers_states(self, updown):
        assert updown.states == ["up", "down"]
        assert updown.number_of_states() == 2

    def test_from_rates_extra_states(self):
        chain = Ctmc.from_rates({("a", "b"): 1.0}, states=["a", "b", "c"])
        assert chain.states == ["a", "b", "c"]
        assert chain.absorbing_states() == ["b", "c"]

    def test_duplicate_state_rejected(self):
        with pytest.raises(CtmcError):
            Ctmc(["a", "a"])

    def test_empty_chain_rejected(self):
        with pytest.raises(CtmcError):
            Ctmc([])

    def test_rates_accumulate(self):
        chain = Ctmc(["a", "b"])
        chain.add_rate("a", "b", 1.0)
        chain.add_rate("a", "b", 2.0)
        assert chain.rate("a", "b") == 3.0

    def test_zero_rate_ignored(self):
        chain = Ctmc(["a", "b"])
        chain.add_rate("a", "b", 0.0)
        assert chain.number_of_transitions() == 0

    def test_self_loop_rejected(self):
        chain = Ctmc(["a"])
        with pytest.raises(CtmcError):
            chain.add_rate("a", "a", 1.0)

    def test_negative_rate_rejected(self):
        chain = Ctmc(["a", "b"])
        with pytest.raises(CtmcError):
            chain.add_rate("a", "b", -1.0)

    def test_unknown_state_rejected(self, updown):
        with pytest.raises(CtmcError):
            updown.add_rate("up", "ghost", 1.0)


class TestMatrices:
    def test_generator_rows_sum_to_zero(self, updown):
        q = updown.dense_generator()
        assert np.allclose(q.sum(axis=1), 0.0)

    def test_generator_entries(self, updown):
        q = updown.dense_generator()
        i, j = updown.index_of("up"), updown.index_of("down")
        assert q[i, j] == 2.0
        assert q[i, i] == -2.0
        assert q[j, i] == 8.0

    def test_exit_rate(self, updown):
        assert updown.exit_rate("up") == 2.0

    def test_transitions_listing(self, updown):
        assert sorted(updown.transitions()) == [(0, 1, 2.0), (1, 0, 8.0)]

    def test_empty_generator(self):
        chain = Ctmc(["a", "b"])
        q = chain.dense_generator()
        assert q.shape == (2, 2)
        assert np.all(q == 0.0)

"""Headline reproduction tests: one class per table/figure of the paper.

These tests pin the numbers reported in EXPERIMENTS.md.  Known, documented
deviations (see DESIGN.md):

- NoEV before patch is 26 (the paper prints 25; the after-patch value 11
  confirms per-server-instance counting, so 25 is an arithmetic slip);
- the example network's after-patch ASP is 0.217 under the
  independent-paths aggregation (the paper prints 0.265, unreachable from
  Table I under any standard HARM gate semantics; orderings and region
  selections all reproduce).
"""

from __future__ import annotations

import pytest

from repro.evaluation.requirements import (
    PAPER_REGION_1_MULTI_METRIC,
    PAPER_REGION_1_TWO_METRIC,
    PAPER_REGION_2_MULTI_METRIC,
    PAPER_REGION_2_TWO_METRIC,
    satisfying_designs,
)
from repro.harm import PathAggregation, evaluate_security


class TestTableII:
    """Security metrics of the example network before and after patch."""

    @pytest.fixture(scope="class")
    def before(self, case_study, example_design):
        return evaluate_security(case_study.build_harm(example_design))

    @pytest.fixture(scope="class")
    def after(self, case_study, example_design, critical_policy):
        return evaluate_security(
            case_study.build_harm(example_design, critical_policy)
        )

    def test_aim_before(self, before):
        assert before.attack_impact == pytest.approx(52.2)

    def test_aim_after(self, after):
        assert after.attack_impact == pytest.approx(42.2)

    def test_asp_before(self, before):
        assert before.attack_success_probability == 1.0

    def test_asp_after_drops_sharply(self, after):
        assert after.attack_success_probability == pytest.approx(0.217, abs=5e-4)

    def test_noev(self, before, after):
        assert before.number_of_exploitable_vulnerabilities == 26  # paper: 25
        assert after.number_of_exploitable_vulnerabilities == 11

    def test_noap(self, before, after):
        assert before.number_of_attack_paths == 8
        assert after.number_of_attack_paths == 4

    def test_noep(self, before, after):
        assert before.number_of_entry_points == 3
        assert after.number_of_entry_points == 2

    def test_longest_path_is_dns_web_app_db(self, before):
        longest = max(before.attack_paths, key=len)
        assert [h[:-1] for h in longest] == ["dns", "web", "app", "db"]

    def test_worst_case_single_path_asp(self, case_study, example_design, critical_policy):
        after = evaluate_security(
            case_study.build_harm(example_design, critical_policy),
            aggregation=PathAggregation.WORST_CASE,
        )
        assert after.attack_success_probability == pytest.approx(0.39**3)


class TestSectionIIIExamples:
    """The worked examples of Section III-C."""

    def test_aim_web1_is_12_9(self, case_study, example_design):
        harm = case_study.build_harm(example_design)
        assert harm.tree_for("web1").impact() == pytest.approx(12.9)

    def test_aim_app1_is_16_4(self, case_study, example_design):
        harm = case_study.build_harm(example_design)
        assert harm.tree_for("app1").impact() == pytest.approx(16.4)

    def test_aim_db1_is_12_9(self, case_study, example_design):
        harm = case_study.build_harm(example_design)
        assert harm.tree_for("db1").impact() == pytest.approx(12.9)

    def test_aim_ap1_is_52_2(self, case_study, example_design):
        """aim(ap1) = 10.0 + 12.9 + 16.4 + 12.9 = 52.2."""
        harm = case_study.build_harm(example_design)
        metrics = evaluate_security(harm)
        assert max(metrics.path_impacts) == pytest.approx(52.2)


class TestTableIV:
    """DNS-server SRN inputs."""

    def test_dns_rates(self, case_study, critical_policy):
        params = case_study.server_parameters("dns", critical_policy)
        rates, patch = params.rates, params.patch
        assert 1.0 / rates.hardware_failure == pytest.approx(87600.0)
        assert 1.0 / rates.os_failure == pytest.approx(1440.0)
        assert 1.0 / rates.service_failure == pytest.approx(336.0)
        assert 60.0 / patch.service_patch == pytest.approx(5.0)
        assert 60.0 / patch.os_patch == pytest.approx(20.0)
        assert 60.0 / patch.os_patch_reboot == pytest.approx(10.0)
        assert 60.0 / patch.service_patch_reboot == pytest.approx(5.0)
        assert params.patch_interval_hours == pytest.approx(720.0)


class TestTableV:
    """Aggregated patch/recovery rates per service."""

    EXPECTED = {
        "dns": 1.49992,
        "web": 1.71420,
        "app": 0.99995,
        "db": 1.09085,
    }

    @pytest.mark.parametrize("role", sorted(EXPECTED))
    def test_recovery_rates(self, availability_evaluator, role):
        aggregate = availability_evaluator.aggregate(role)
        assert aggregate.recovery_rate == pytest.approx(
            self.EXPECTED[role], rel=1e-4
        )

    def test_patch_rates_all_equal_tau(self, availability_evaluator):
        for role in self.EXPECTED:
            assert availability_evaluator.aggregate(role).patch_rate == (
                pytest.approx(1.0 / 720.0)
            )

    def test_dns_equation_2_example(self, availability_evaluator):
        """The paper's worked example: mu = 12 * p_prrb / p_pd ~ 1.49992."""
        aggregate = availability_evaluator.aggregate("dns")
        measures = aggregate.measures
        assert measures.patch_down == pytest.approx(0.00092506, rel=3e-3)
        assert measures.patch_ready_to_reboot == pytest.approx(
            0.00011563, rel=3e-3
        )


class TestTableVI:
    """COA of the example network."""

    def test_coa_is_0_99707(self, availability_evaluator, example_design):
        coa = availability_evaluator.coa(example_design)
        assert coa == pytest.approx(0.99707, abs=5e-6)

    def test_srn_and_closed_form_agree(self, availability_evaluator, example_design):
        srn = availability_evaluator.coa(example_design)
        closed = availability_evaluator.coa_closed_form(example_design)
        assert srn == pytest.approx(closed, abs=1e-12)


class TestFigure3:
    """HARM structure before/after patch."""

    def test_before_surface(self, case_study, example_design):
        surface = case_study.build_harm(example_design).attack_surface()
        assert surface.entry_points() == ["dns1", "web1", "web2"]
        assert surface.number_of_attack_paths() == 8

    def test_after_surface_drops_dns(
        self, case_study, example_design, critical_policy
    ):
        surface = case_study.build_harm(
            example_design, critical_policy
        ).attack_surface()
        assert surface.entry_points() == ["web1", "web2"]
        assert surface.number_of_attack_paths() == 4

    def test_tree_shapes_before(self, case_study, example_design):
        harm = case_study.build_harm(example_design)
        assert harm.tree_for("web1").to_expression() == (
            "(CVE-2016-4448 | CVE-2015-4602 | CVE-2015-4603 | "
            "(CVE-2016-4979 & CVE-2016-4805))"
        )

    def test_tree_shapes_after(self, case_study, example_design, critical_policy):
        harm = case_study.build_harm(example_design, critical_policy)
        assert harm.tree_for("web1").to_expression() == (
            "(CVE-2016-4979 & CVE-2016-4805)"
        )
        assert harm.tree_for("db1").to_expression() == (
            "((CVE-2015-3152 & CVE-2016-3471) | CVE-2016-4997)"
        )


class TestFigure6:
    """Scatter comparison and the Eq. (3) regions."""

    EXPECTED_COA = {
        "1 DNS + 1 WEB + 1 APP + 1 DB": 0.995614,
        "2 DNS + 1 WEB + 1 APP + 1 DB": 0.996166,
        "1 DNS + 2 WEB + 1 APP + 1 DB": 0.996097,
        "1 DNS + 1 WEB + 2 APP + 1 DB": 0.996442,
        "1 DNS + 1 WEB + 1 APP + 2 DB": 0.996373,
    }

    def test_per_design_coa(self, design_evaluations):
        for evaluation in design_evaluations:
            assert evaluation.after.coa == pytest.approx(
                self.EXPECTED_COA[evaluation.label], abs=5e-6
            ), evaluation.label

    def test_before_patch_all_asp_one(self, design_evaluations):
        for evaluation in design_evaluations:
            assert evaluation.before.security.attack_success_probability == 1.0

    def test_region_1(self, design_evaluations):
        selected = satisfying_designs(design_evaluations, PAPER_REGION_1_TWO_METRIC)
        assert [e.label for e in selected] == [
            "1 DNS + 1 WEB + 2 APP + 1 DB",
            "1 DNS + 1 WEB + 1 APP + 2 DB",
        ]

    def test_region_2(self, design_evaluations):
        selected = satisfying_designs(design_evaluations, PAPER_REGION_2_TWO_METRIC)
        assert [e.label for e in selected] == ["2 DNS + 1 WEB + 1 APP + 1 DB"]


class TestFigure7:
    """Radar comparison and the Eq. (4) regions."""

    EXPECTED_AFTER = {
        # label: (NoEV, NoAP, NoEP)
        "1 DNS + 1 WEB + 1 APP + 1 DB": (7, 1, 1),
        "2 DNS + 1 WEB + 1 APP + 1 DB": (7, 1, 1),
        "1 DNS + 2 WEB + 1 APP + 1 DB": (9, 2, 2),
        "1 DNS + 1 WEB + 2 APP + 1 DB": (9, 2, 1),
        "1 DNS + 1 WEB + 1 APP + 2 DB": (10, 2, 1),
    }

    EXPECTED_BEFORE = {
        "1 DNS + 1 WEB + 1 APP + 1 DB": (16, 2, 2),
        "2 DNS + 1 WEB + 1 APP + 1 DB": (17, 3, 3),
        "1 DNS + 2 WEB + 1 APP + 1 DB": (21, 4, 3),
        "1 DNS + 1 WEB + 2 APP + 1 DB": (21, 4, 2),
        "1 DNS + 1 WEB + 1 APP + 2 DB": (21, 4, 2),
    }

    def test_count_metrics_after_patch(self, design_evaluations):
        for evaluation in design_evaluations:
            security = evaluation.after.security
            assert (
                security.number_of_exploitable_vulnerabilities,
                security.number_of_attack_paths,
                security.number_of_entry_points,
            ) == self.EXPECTED_AFTER[evaluation.label], evaluation.label

    def test_count_metrics_before_patch(self, design_evaluations):
        for evaluation in design_evaluations:
            security = evaluation.before.security
            assert (
                security.number_of_exploitable_vulnerabilities,
                security.number_of_attack_paths,
                security.number_of_entry_points,
            ) == self.EXPECTED_BEFORE[evaluation.label], evaluation.label

    def test_aim_constant_across_designs(self, design_evaluations):
        """Paper: AIM does not change across design choices."""
        for evaluation in design_evaluations:
            assert evaluation.before.security.attack_impact == pytest.approx(52.2)
            assert evaluation.after.security.attack_impact == pytest.approx(42.2)

    def test_region_1_selects_d4(self, design_evaluations):
        selected = satisfying_designs(
            design_evaluations, PAPER_REGION_1_MULTI_METRIC
        )
        assert [e.label for e in selected] == ["1 DNS + 1 WEB + 2 APP + 1 DB"]

    def test_region_2_selects_d2(self, design_evaluations):
        selected = satisfying_designs(
            design_evaluations, PAPER_REGION_2_MULTI_METRIC
        )
        assert [e.label for e in selected] == ["2 DNS + 1 WEB + 1 APP + 1 DB"]


class TestPaperObservations:
    """Section IV-C: the qualitative design guidance."""

    def test_duplicating_slowest_recovery_tier_maximises_coa(
        self, design_evaluations
    ):
        best = max(design_evaluations[1:], key=lambda e: e.after.coa)
        assert "2 APP" in best.label

    def test_unexploitable_redundancy_is_free_security(self, design_evaluations):
        """Duplicating the (patched) DNS tier leaves every after-patch
        security metric unchanged while improving COA."""
        d1, d2 = design_evaluations[0], design_evaluations[1]
        assert d2.after.security.as_dict() == d1.after.security.as_dict()
        assert d2.after.coa > d1.after.coa

"""Tests for graph traversal utilities."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.graphs import (
    DiGraph,
    bfs_order,
    dfs_order,
    has_cycle,
    reachable_from,
    reaches,
    topological_sort,
)


@pytest.fixture
def chain_with_branch():
    graph = DiGraph()
    graph.add_edge("a", "b")
    graph.add_edge("b", "c")
    graph.add_edge("a", "d")
    graph.add_node("isolated")
    return graph


class TestBfsDfs:
    def test_bfs_level_order(self, chain_with_branch):
        assert bfs_order(chain_with_branch, "a") == ["a", "b", "d", "c"]

    def test_dfs_preorder(self, chain_with_branch):
        assert dfs_order(chain_with_branch, "a") == ["a", "b", "c", "d"]

    def test_unknown_source_raises(self, chain_with_branch):
        with pytest.raises(GraphError):
            bfs_order(chain_with_branch, "zz")
        with pytest.raises(GraphError):
            dfs_order(chain_with_branch, "zz")

    def test_single_node(self):
        graph = DiGraph()
        graph.add_node("only")
        assert bfs_order(graph, "only") == ["only"]


class TestReachability:
    def test_reachable_from_single(self, chain_with_branch):
        assert reachable_from(chain_with_branch, "b") == {"b", "c"}

    def test_reachable_from_multiple_sources(self, chain_with_branch):
        assert reachable_from(chain_with_branch, ["b", "d"]) == {"b", "c", "d"}

    def test_isolated_not_reachable(self, chain_with_branch):
        assert "isolated" not in reachable_from(chain_with_branch, "a")

    def test_reaches(self, chain_with_branch):
        assert reaches(chain_with_branch, "a", "c")
        assert not reaches(chain_with_branch, "c", "a")


class TestCyclesAndTopologicalSort:
    def test_acyclic_graph(self, chain_with_branch):
        assert not has_cycle(chain_with_branch)

    def test_cycle_detected(self):
        graph = DiGraph()
        graph.add_edge("a", "b")
        graph.add_edge("b", "a")
        assert has_cycle(graph)

    def test_self_loop_is_cycle(self):
        graph = DiGraph()
        graph.add_edge("a", "a")
        assert has_cycle(graph)

    def test_topological_order_respects_edges(self, chain_with_branch):
        order = topological_sort(chain_with_branch)
        position = {node: i for i, node in enumerate(order)}
        for src, dst in chain_with_branch.edges():
            assert position[src] < position[dst]

    def test_topological_sort_raises_on_cycle(self):
        graph = DiGraph()
        graph.add_edge("a", "b")
        graph.add_edge("b", "c")
        graph.add_edge("c", "a")
        with pytest.raises(GraphError, match="cycle"):
            topological_sort(graph)

    def test_topological_sort_covers_isolated(self, chain_with_branch):
        assert set(topological_sort(chain_with_branch)) == {
            "a",
            "b",
            "c",
            "d",
            "isolated",
        }

"""Tests for the DiGraph substrate."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.graphs import DiGraph


@pytest.fixture
def diamond():
    graph = DiGraph()
    graph.add_edge("a", "b")
    graph.add_edge("a", "c")
    graph.add_edge("b", "d")
    graph.add_edge("c", "d")
    return graph


class TestConstruction:
    def test_add_node_is_idempotent(self):
        graph = DiGraph()
        graph.add_node("x", color="red")
        graph.add_node("x", size=2)
        assert graph.number_of_nodes() == 1
        assert graph.node_attrs("x") == {"color": "red", "size": 2}

    def test_add_edge_creates_endpoints(self):
        graph = DiGraph()
        graph.add_edge("a", "b")
        assert graph.has_node("a") and graph.has_node("b")

    def test_add_edge_merges_attributes(self):
        graph = DiGraph()
        graph.add_edge("a", "b", weight=1.0)
        graph.add_edge("a", "b", label="x")
        assert graph.number_of_edges() == 1
        assert graph.edge_attrs("a", "b") == {"weight": 1.0, "label": "x"}

    def test_add_nodes_bulk(self):
        graph = DiGraph()
        graph.add_nodes(["a", "b", "c"])
        assert graph.nodes() == ["a", "b", "c"]

    def test_nodes_keep_insertion_order(self):
        graph = DiGraph()
        for name in ["z", "m", "a"]:
            graph.add_node(name)
        assert graph.nodes() == ["z", "m", "a"]


class TestQueries:
    def test_degrees(self, diamond):
        assert diamond.out_degree("a") == 2
        assert diamond.in_degree("d") == 2
        assert diamond.in_degree("a") == 0

    def test_successors_predecessors(self, diamond):
        assert diamond.successors("a") == ["b", "c"]
        assert diamond.predecessors("d") == ["b", "c"]

    def test_contains_and_len(self, diamond):
        assert "a" in diamond
        assert "zz" not in diamond
        assert len(diamond) == 4

    def test_edges_listing(self, diamond):
        assert set(diamond.edges()) == {("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")}

    def test_unknown_node_raises(self, diamond):
        with pytest.raises(GraphError):
            diamond.successors("nope")

    def test_unknown_edge_attrs_raises(self, diamond):
        with pytest.raises(GraphError):
            diamond.edge_attrs("a", "d")


class TestMutation:
    def test_remove_edge(self, diamond):
        diamond.remove_edge("a", "b")
        assert not diamond.has_edge("a", "b")
        assert diamond.has_node("b")

    def test_remove_missing_edge_raises(self, diamond):
        with pytest.raises(GraphError):
            diamond.remove_edge("d", "a")

    def test_remove_node_removes_incident_edges(self, diamond):
        diamond.remove_node("b")
        assert not diamond.has_node("b")
        assert diamond.successors("a") == ["c"]
        assert diamond.predecessors("d") == ["c"]

    def test_remove_unknown_node_raises(self, diamond):
        with pytest.raises(GraphError):
            diamond.remove_node("zz")


class TestDerivedGraphs:
    def test_copy_is_independent(self, diamond):
        clone = diamond.copy()
        clone.remove_node("d")
        assert diamond.has_node("d")
        assert not clone.has_node("d")

    def test_subgraph_induces_edges(self, diamond):
        sub = diamond.subgraph(["a", "b", "d"])
        assert set(sub.edges()) == {("a", "b"), ("b", "d")}

    def test_reversed_flips_edges(self, diamond):
        rev = diamond.reversed()
        assert rev.has_edge("b", "a")
        assert rev.has_edge("d", "c")
        assert not rev.has_edge("a", "b")

    def test_subgraph_keeps_attributes(self):
        graph = DiGraph()
        graph.add_node("a", kind="host")
        graph.add_edge("a", "b", weight=3)
        sub = graph.subgraph(["a", "b"])
        assert sub.node_attrs("a") == {"kind": "host"}
        assert sub.edge_attrs("a", "b") == {"weight": 3}

"""Tests for simple-path enumeration, cross-checked against networkx."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.errors import GraphError
from repro.graphs import DiGraph, all_simple_paths, count_simple_paths


def _paper_upper_layer():
    """The example network's upper layer: A -> dns/web -> app -> db."""
    graph = DiGraph()
    graph.add_edge("A", "dns1")
    for web in ("web1", "web2"):
        graph.add_edge("A", web)
        graph.add_edge("dns1", web)
        for app in ("app1", "app2"):
            graph.add_edge(web, app)
            graph.add_edge(app, "db1")
    return graph


class TestAllSimplePaths:
    def test_single_path(self):
        graph = DiGraph()
        graph.add_edge("a", "b")
        graph.add_edge("b", "c")
        assert list(all_simple_paths(graph, "a", "c")) == [["a", "b", "c"]]

    def test_paper_network_has_eight_paths(self):
        graph = _paper_upper_layer()
        assert count_simple_paths(graph, "A", "db1") == 8

    def test_paths_are_simple(self):
        graph = DiGraph()
        graph.add_edge("a", "b")
        graph.add_edge("b", "a")
        graph.add_edge("b", "c")
        paths = list(all_simple_paths(graph, "a", "c"))
        assert paths == [["a", "b", "c"]]

    def test_source_equals_target(self):
        graph = DiGraph()
        graph.add_node("a")
        assert list(all_simple_paths(graph, "a", "a")) == [["a"]]

    def test_multiple_targets(self):
        graph = DiGraph()
        graph.add_edge("a", "b")
        graph.add_edge("a", "c")
        paths = list(all_simple_paths(graph, "a", ["b", "c"]))
        assert sorted(tuple(p) for p in paths) == [("a", "b"), ("a", "c")]

    def test_max_length_bound(self):
        graph = DiGraph()
        graph.add_edge("a", "b")
        graph.add_edge("b", "c")
        graph.add_edge("a", "c")
        assert count_simple_paths(graph, "a", "c", max_length=1) == 1
        assert count_simple_paths(graph, "a", "c", max_length=2) == 2

    def test_unknown_source_raises(self):
        graph = DiGraph()
        graph.add_node("a")
        with pytest.raises(GraphError):
            list(all_simple_paths(graph, "zz", "a"))

    def test_unknown_target_raises(self):
        graph = DiGraph()
        graph.add_node("a")
        with pytest.raises(GraphError):
            list(all_simple_paths(graph, "a", "zz"))

    def test_no_path_yields_nothing(self):
        graph = DiGraph()
        graph.add_node("a")
        graph.add_node("b")
        assert list(all_simple_paths(graph, "a", "b")) == []


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_matches_networkx_on_random_dags(self, seed):
        import random

        rng = random.Random(seed)
        n = 9
        ours = DiGraph()
        theirs = nx.DiGraph()
        for node in range(n):
            ours.add_node(node)
            theirs.add_node(node)
        for src in range(n):
            for dst in range(src + 1, n):
                if rng.random() < 0.4:
                    ours.add_edge(src, dst)
                    theirs.add_edge(src, dst)
        expected = sorted(
            tuple(p) for p in nx.all_simple_paths(theirs, 0, n - 1)
        )
        # networkx excludes the trivial path when source == target, and
        # yields nothing when no path exists; both match our semantics
        # for distinct endpoints.
        actual = sorted(tuple(p) for p in all_simple_paths(ours, 0, n - 1))
        assert actual == expected

    def test_matches_networkx_on_cyclic_graph(self):
        edges = [(0, 1), (1, 2), (2, 0), (1, 3), (2, 3), (3, 4), (0, 4)]
        ours = DiGraph()
        theirs = nx.DiGraph()
        ours.add_edges(edges)
        theirs.add_edges_from(edges)
        expected = sorted(tuple(p) for p in nx.all_simple_paths(theirs, 0, 4))
        actual = sorted(tuple(p) for p in all_simple_paths(ours, 0, 4))
        assert actual == expected

"""Tests for patch schedules."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.patching import BIWEEKLY, MONTHLY, QUARTERLY, WEEKLY, PatchSchedule


class TestSchedules:
    def test_monthly_matches_paper(self):
        assert MONTHLY.interval_hours == pytest.approx(720.0)
        assert MONTHLY.clock_rate == pytest.approx(1.0 / 720.0)
        assert MONTHLY.interval_days == pytest.approx(30.0)

    def test_presets_ordered(self):
        presets = [WEEKLY, BIWEEKLY, MONTHLY, QUARTERLY]
        hours = [schedule.interval_hours for schedule in presets]
        assert hours == sorted(hours)

    def test_from_days(self):
        schedule = PatchSchedule.from_days("custom", 10)
        assert schedule.interval_hours == pytest.approx(240.0)

    def test_zero_interval_rejected(self):
        with pytest.raises(ValidationError):
            PatchSchedule("bad", 0.0)

    def test_str(self):
        assert "monthly" in str(MONTHLY)
        assert "30" in str(MONTHLY)

"""Tests for the staged patch-rollout campaign model."""

from __future__ import annotations

import json

import pytest

from repro.errors import ValidationError
from repro.patching import BIG_BANG, CANARY_THEN_FLEET, CampaignPhase, PatchCampaign


class TestCampaignPhase:
    def test_duration_phase(self):
        phase = CampaignPhase(name="canary", rate_multiplier=0.1, duration_hours=48)
        assert phase.duration_hours == 48.0
        assert not phase.is_open_ended

    def test_zero_duration_allowed(self):
        phase = CampaignPhase(name="skip", rate_multiplier=1.0, duration_hours=0)
        assert phase.duration_hours == 0.0

    def test_open_ended(self):
        assert CampaignPhase(name="fleet", rate_multiplier=1.0).is_open_ended

    def test_rejects_both_triggers(self):
        with pytest.raises(ValidationError):
            CampaignPhase(
                name="x",
                rate_multiplier=1.0,
                duration_hours=1.0,
                completion_fraction=0.5,
            )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rate_multiplier": -0.1},
            {"rate_multiplier": float("inf")},
            {"rate_multiplier": float("nan")},
            {"rate_multiplier": "fast"},
            {"rate_multiplier": 1.0, "duration_hours": -1.0},
            {"rate_multiplier": 1.0, "duration_hours": float("inf")},
            {"rate_multiplier": 1.0, "duration_hours": "abc"},
            {"rate_multiplier": 1.0, "duration_hours": "48"},
            {"rate_multiplier": 1.0, "duration_hours": True},
            {"rate_multiplier": 1.0, "completion_fraction": 0.0},
            {"rate_multiplier": 1.0, "completion_fraction": 1.5},
            {"rate_multiplier": 1.0, "completion_fraction": "half"},
            {"rate_multiplier": 1.0, "canary_hosts": 0},
            {"rate_multiplier": 1.0, "canary_hosts": 1.5},
        ],
    )
    def test_rejects_bad_fields(self, kwargs):
        with pytest.raises(ValidationError):
            CampaignPhase(name="x", **kwargs)

    def test_effective_multiplier_canary_throttle(self):
        phase = CampaignPhase(name="c", rate_multiplier=0.5, canary_hosts=2)
        assert phase.effective_multiplier(8) == pytest.approx(0.5 * 2 / 8)
        # a cap at or above the fleet size leaves the multiplier exact
        assert phase.effective_multiplier(2) == 0.5
        assert phase.effective_multiplier(1) == 0.5

    def test_round_trip_dict(self):
        phase = CampaignPhase(
            name="canary",
            rate_multiplier=0.25,
            completion_fraction=0.3,
            canary_hosts=2,
        )
        assert CampaignPhase.from_dict(phase.to_dict()) == phase

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValidationError):
            CampaignPhase.from_dict(
                {"name": "x", "rate_multiplier": 1.0, "speed": 9}
            )
        with pytest.raises(ValidationError):
            CampaignPhase.from_dict({"name": "x"})
        with pytest.raises(ValidationError):
            CampaignPhase.from_dict("canary")


class TestPatchCampaign:
    def test_needs_phases(self):
        with pytest.raises(ValidationError):
            PatchCampaign(name="empty", phases=())

    def test_open_ended_must_be_last(self):
        with pytest.raises(ValidationError) as excinfo:
            PatchCampaign(
                name="bad",
                phases=(
                    CampaignPhase(name="forever", rate_multiplier=1.0),
                    CampaignPhase(name="never", rate_multiplier=2.0),
                ),
            )
        assert "unreachable" in str(excinfo.value)

    def test_final_phase_must_be_open_ended(self):
        # a trailing trigger has nothing to hand over to; rejecting it
        # catches truncated specs like --phases canary:0.1:48
        with pytest.raises(ValidationError) as excinfo:
            PatchCampaign(
                name="truncated",
                phases=(
                    CampaignPhase(
                        name="canary", rate_multiplier=0.1, duration_hours=48
                    ),
                ),
            )
        assert "open-ended" in str(excinfo.value)
        with pytest.raises(ValidationError):
            PatchCampaign.parse("canary:0.1:48")
        with pytest.raises(ValidationError):
            PatchCampaign.parse("canary:0.1:48,ramp:0.5:25%")

    def test_stationary_detection(self):
        assert BIG_BANG.is_stationary
        assert not CANARY_THEN_FLEET.is_stationary
        assert not PatchCampaign(
            name="slow", phases=(CampaignPhase(name="f", rate_multiplier=0.5),)
        ).is_stationary
        assert not PatchCampaign(
            name="capped",
            phases=(CampaignPhase(name="f", rate_multiplier=1.0, canary_hosts=1),),
        ).is_stationary

    def test_hashable_and_cache_key(self):
        twin = PatchCampaign(
            name=CANARY_THEN_FLEET.name, phases=CANARY_THEN_FLEET.phases
        )
        assert hash(twin) == hash(CANARY_THEN_FLEET)
        assert twin.cache_key() == CANARY_THEN_FLEET.cache_key()
        assert BIG_BANG.cache_key() != CANARY_THEN_FLEET.cache_key()
        # cached DesignTimeline records embed the campaign, so a renamed
        # campaign must not alias a stored entry
        renamed = PatchCampaign(name="other", phases=CANARY_THEN_FLEET.phases)
        assert renamed.cache_key() != CANARY_THEN_FLEET.cache_key()

    def test_round_trip_dict_and_json(self, tmp_path):
        payload = CANARY_THEN_FLEET.to_dict()
        assert PatchCampaign.from_dict(payload) == CANARY_THEN_FLEET
        path = tmp_path / "campaign.json"
        path.write_text(json.dumps(payload))
        assert PatchCampaign.from_json_file(path) == CANARY_THEN_FLEET

    def test_from_json_file_errors(self, tmp_path):
        with pytest.raises(ValidationError):
            PatchCampaign.from_json_file(tmp_path / "missing.json")
        broken = tmp_path / "broken.json"
        broken.write_text("{not json")
        with pytest.raises(ValidationError):
            PatchCampaign.from_json_file(broken)

    def test_str_mentions_phases(self):
        text = str(CANARY_THEN_FLEET)
        assert "canary" in text and "open-ended" in text


class TestShorthandParsing:
    def test_duration_phases(self):
        campaign = PatchCampaign.parse("canary:0.1:48,fleet:1.0")
        assert len(campaign.phases) == 2
        canary, fleet = campaign.phases
        assert canary.rate_multiplier == 0.1
        assert canary.duration_hours == 48.0
        assert fleet.is_open_ended

    def test_percent_trigger_and_canary_count(self):
        campaign = PatchCampaign.parse("canary:1:25%:2,fleet:1.0")
        canary = campaign.phases[0]
        assert canary.completion_fraction == pytest.approx(0.25)
        assert canary.canary_hosts == 2

    def test_single_phase(self):
        campaign = PatchCampaign.parse("fleet:1.0")
        assert campaign.is_stationary

    @pytest.mark.parametrize(
        "spec",
        [
            "",
            "fleet",
            "fleet:fast",
            "canary:0.1:soon",
            "canary:0.1:48:many",
            "a:1:2:3:4",
        ],
    )
    def test_rejects_bad_specs(self, spec):
        with pytest.raises(ValidationError):
            PatchCampaign.parse(spec)

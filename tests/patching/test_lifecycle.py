"""Tests for the multi-cycle patch lifecycle."""

from __future__ import annotations

import pytest

from repro.errors import EvaluationError
from repro.patching import (
    PatchAllPolicy,
    SyntheticDisclosureFeed,
    simulate_patch_lifecycle,
)


@pytest.fixture(scope="module")
def baseline_design(five_designs):
    return five_designs[0]  # 1 DNS + 1 WEB + 1 APP + 1 DB


class TestSyntheticFeed:
    def test_deterministic_with_seed(self):
        a = SyntheticDisclosureFeed(rate_per_product=2.0, seed=5)
        b = SyntheticDisclosureFeed(rate_per_product=2.0, seed=5)
        records_a = a.disclose(1, ["X", "Y"])
        records_b = b.disclose(1, ["X", "Y"])
        assert [r.cve_id for r in records_a] == [r.cve_id for r in records_b]
        assert [str(r.vector) for r in records_a] == [
            str(r.vector) for r in records_b
        ]

    def test_records_are_flagged_synthetic(self):
        feed = SyntheticDisclosureFeed(rate_per_product=3.0, seed=1)
        for record in feed.disclose(2, ["X"]):
            assert record.reconstructed
            assert record.cve_id.startswith("SYN-FEED-02-")

    def test_zero_rate_discloses_nothing(self):
        feed = SyntheticDisclosureFeed(rate_per_product=0.0, seed=0)
        assert feed.disclose(1, ["X", "Y", "Z"]) == []

    def test_negative_rate_rejected(self):
        with pytest.raises(EvaluationError):
            SyntheticDisclosureFeed(rate_per_product=-1.0)


class TestLifecycle:
    def test_cycle_zero_matches_paper_catalog(
        self, case_study, baseline_design, critical_policy
    ):
        outcomes = simulate_patch_lifecycle(
            case_study, baseline_design, critical_policy, cycles=1
        )
        first = outcomes[0]
        assert first.disclosed == 0
        # flat-OR trees give the same count metrics as the paper's D1
        assert first.before.number_of_exploitable_vulnerabilities == 16
        assert first.after.number_of_exploitable_vulnerabilities == 7

    def test_patch_improves_each_cycle(
        self, case_study, baseline_design, critical_policy
    ):
        outcomes = simulate_patch_lifecycle(
            case_study,
            baseline_design,
            critical_policy,
            cycles=4,
            feed=SyntheticDisclosureFeed(rate_per_product=1.5, seed=3),
        )
        for outcome in outcomes:
            assert (
                outcome.after.number_of_exploitable_vulnerabilities
                <= outcome.before.number_of_exploitable_vulnerabilities
            )

    def test_critical_only_policy_accumulates_backlog(
        self, case_study, baseline_design, critical_policy
    ):
        outcomes = simulate_patch_lifecycle(
            case_study,
            baseline_design,
            critical_policy,
            cycles=5,
            feed=SyntheticDisclosureFeed(rate_per_product=2.0, seed=11),
        )
        assert outcomes[-1].backlog > outcomes[0].backlog

    def test_patch_all_keeps_backlog_at_zero(
        self, case_study, baseline_design
    ):
        outcomes = simulate_patch_lifecycle(
            case_study,
            baseline_design,
            PatchAllPolicy(),
            cycles=3,
            feed=SyntheticDisclosureFeed(rate_per_product=2.0, seed=11),
        )
        for outcome in outcomes:
            assert outcome.backlog == 0
            assert outcome.after.number_of_exploitable_vulnerabilities == 0

    def test_deterministic_runs(self, case_study, baseline_design, critical_policy):
        def run():
            return simulate_patch_lifecycle(
                case_study,
                baseline_design,
                critical_policy,
                cycles=3,
                feed=SyntheticDisclosureFeed(rate_per_product=1.0, seed=7),
            )

        first, second = run(), run()
        assert [o.backlog for o in first] == [o.backlog for o in second]
        assert [o.patched for o in first] == [o.patched for o in second]

    def test_zero_cycles_rejected(
        self, case_study, baseline_design, critical_policy
    ):
        with pytest.raises(EvaluationError):
            simulate_patch_lifecycle(
                case_study, baseline_design, critical_policy, cycles=0
            )


class TestHeterogeneousLifecycle:
    """simulate_patch_lifecycle dispatches per DesignSpec kind."""

    @pytest.fixture(scope="class")
    def variant_space(self):
        from repro.enterprise import paper_variant_space

        return paper_variant_space()

    @pytest.fixture(scope="class")
    def diversity_db(self):
        from repro.vulnerability.diversity import diversity_database

        return diversity_database()

    def test_primary_variants_match_homogeneous(
        self, case_study, baseline_design, critical_policy, variant_space, diversity_db
    ):
        # One replica of each role's primary (paper) stack carries
        # exactly the paper's vulnerabilities: the whole lifecycle must
        # match the homogeneous design cycle for cycle.
        from repro.enterprise import HeterogeneousDesign

        design = HeterogeneousDesign(
            {role: {variant_space[role][0]: 1} for role in ("dns", "web", "app", "db")}
        )
        homogeneous = simulate_patch_lifecycle(
            case_study,
            baseline_design,
            critical_policy,
            cycles=3,
            feed=SyntheticDisclosureFeed(seed=11),
        )
        heterogeneous = simulate_patch_lifecycle(
            case_study,
            design,
            critical_policy,
            cycles=3,
            feed=SyntheticDisclosureFeed(seed=11),
            database=diversity_db,
        )
        for a, b in zip(homogeneous, heterogeneous):
            assert a.before.as_dict() == b.before.as_dict()
            assert a.after.as_dict() == b.after.as_dict()
            assert (a.disclosed, a.patched, a.backlog) == (
                b.disclosed,
                b.patched,
                b.backlog,
            )

    def test_mixed_variants_track_per_variant_lists(
        self, case_study, critical_policy, variant_space, diversity_db
    ):
        from repro.enterprise import HeterogeneousDesign

        design = HeterogeneousDesign(
            {
                "dns": {variant_space["dns"][0]: 1},
                "web": {variant_space["web"][0]: 1, variant_space["web"][1]: 1},
                "app": {variant_space["app"][0]: 1},
                "db": {variant_space["db"][1]: 2},
            }
        )
        outcomes = simulate_patch_lifecycle(
            case_study,
            design,
            critical_policy,
            cycles=3,
            feed=SyntheticDisclosureFeed(seed=3),
            database=diversity_db,
        )
        assert len(outcomes) == 3
        for outcome in outcomes:
            assert outcome.before.as_dict()["ASP"] >= outcome.after.as_dict()["ASP"]
        # later cycles disclose onto the diverse product set too
        assert any(outcome.disclosed > 0 for outcome in outcomes[1:])

    def test_unknown_design_kind_rejected(self, case_study, critical_policy):
        class FakeSpec:
            roles = ["dns"]
            counts = {"dns": 1}

        with pytest.raises(EvaluationError):
            simulate_patch_lifecycle(
                case_study, FakeSpec(), critical_policy, cycles=1
            )

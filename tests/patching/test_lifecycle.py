"""Tests for the multi-cycle patch lifecycle."""

from __future__ import annotations

import pytest

from repro.errors import EvaluationError
from repro.patching import (
    CriticalVulnerabilityPolicy,
    PatchAllPolicy,
    SyntheticDisclosureFeed,
    simulate_patch_lifecycle,
)


@pytest.fixture(scope="module")
def baseline_design(five_designs):
    return five_designs[0]  # 1 DNS + 1 WEB + 1 APP + 1 DB


class TestSyntheticFeed:
    def test_deterministic_with_seed(self):
        a = SyntheticDisclosureFeed(rate_per_product=2.0, seed=5)
        b = SyntheticDisclosureFeed(rate_per_product=2.0, seed=5)
        records_a = a.disclose(1, ["X", "Y"])
        records_b = b.disclose(1, ["X", "Y"])
        assert [r.cve_id for r in records_a] == [r.cve_id for r in records_b]
        assert [str(r.vector) for r in records_a] == [
            str(r.vector) for r in records_b
        ]

    def test_records_are_flagged_synthetic(self):
        feed = SyntheticDisclosureFeed(rate_per_product=3.0, seed=1)
        for record in feed.disclose(2, ["X"]):
            assert record.reconstructed
            assert record.cve_id.startswith("SYN-FEED-02-")

    def test_zero_rate_discloses_nothing(self):
        feed = SyntheticDisclosureFeed(rate_per_product=0.0, seed=0)
        assert feed.disclose(1, ["X", "Y", "Z"]) == []

    def test_negative_rate_rejected(self):
        with pytest.raises(EvaluationError):
            SyntheticDisclosureFeed(rate_per_product=-1.0)


class TestLifecycle:
    def test_cycle_zero_matches_paper_catalog(
        self, case_study, baseline_design, critical_policy
    ):
        outcomes = simulate_patch_lifecycle(
            case_study, baseline_design, critical_policy, cycles=1
        )
        first = outcomes[0]
        assert first.disclosed == 0
        # flat-OR trees give the same count metrics as the paper's D1
        assert first.before.number_of_exploitable_vulnerabilities == 16
        assert first.after.number_of_exploitable_vulnerabilities == 7

    def test_patch_improves_each_cycle(
        self, case_study, baseline_design, critical_policy
    ):
        outcomes = simulate_patch_lifecycle(
            case_study,
            baseline_design,
            critical_policy,
            cycles=4,
            feed=SyntheticDisclosureFeed(rate_per_product=1.5, seed=3),
        )
        for outcome in outcomes:
            assert (
                outcome.after.number_of_exploitable_vulnerabilities
                <= outcome.before.number_of_exploitable_vulnerabilities
            )

    def test_critical_only_policy_accumulates_backlog(
        self, case_study, baseline_design, critical_policy
    ):
        outcomes = simulate_patch_lifecycle(
            case_study,
            baseline_design,
            critical_policy,
            cycles=5,
            feed=SyntheticDisclosureFeed(rate_per_product=2.0, seed=11),
        )
        assert outcomes[-1].backlog > outcomes[0].backlog

    def test_patch_all_keeps_backlog_at_zero(
        self, case_study, baseline_design
    ):
        outcomes = simulate_patch_lifecycle(
            case_study,
            baseline_design,
            PatchAllPolicy(),
            cycles=3,
            feed=SyntheticDisclosureFeed(rate_per_product=2.0, seed=11),
        )
        for outcome in outcomes:
            assert outcome.backlog == 0
            assert outcome.after.number_of_exploitable_vulnerabilities == 0

    def test_deterministic_runs(self, case_study, baseline_design, critical_policy):
        def run():
            return simulate_patch_lifecycle(
                case_study,
                baseline_design,
                critical_policy,
                cycles=3,
                feed=SyntheticDisclosureFeed(rate_per_product=1.0, seed=7),
            )

        first, second = run(), run()
        assert [o.backlog for o in first] == [o.backlog for o in second]
        assert [o.patched for o in first] == [o.patched for o in second]

    def test_zero_cycles_rejected(
        self, case_study, baseline_design, critical_policy
    ):
        with pytest.raises(EvaluationError):
            simulate_patch_lifecycle(
                case_study, baseline_design, critical_policy, cycles=0
            )

"""Tests for patch policies."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.patching import (
    CriticalVulnerabilityPolicy,
    ExplicitPolicy,
    NoPatchPolicy,
    PatchAllPolicy,
)
from repro.vulnerability import SoftwareLayer, Vulnerability

CRITICAL = "AV:N/AC:L/Au:N/C:C/I:C/A:C"   # base 10.0
MODERATE = "AV:N/AC:L/Au:N/C:P/I:P/A:P"   # base 7.5
LOW = "AV:N/AC:M/Au:N/C:N/I:P/A:N"        # base 4.3


def vuln(cve, vector):
    return Vulnerability(cve, "P", SoftwareLayer.APPLICATION, vector, True)


@pytest.fixture
def pool():
    return [
        vuln("CVE-A", CRITICAL),
        vuln("CVE-B", MODERATE),
        vuln("CVE-C", LOW),
    ]


class TestCriticalPolicy:
    def test_default_threshold_eight(self, pool):
        policy = CriticalVulnerabilityPolicy()
        assert policy.patched_cve_ids(pool) == {"CVE-A"}

    def test_remaining(self, pool):
        policy = CriticalVulnerabilityPolicy()
        assert [v.cve_id for v in policy.remaining(pool)] == ["CVE-B", "CVE-C"]

    def test_lower_threshold_catches_more(self, pool):
        policy = CriticalVulnerabilityPolicy(threshold=7.0)
        assert policy.patched_cve_ids(pool) == {"CVE-A", "CVE-B"}

    def test_threshold_is_strict(self, pool):
        policy = CriticalVulnerabilityPolicy(threshold=7.5)
        assert policy.patched_cve_ids(pool) == {"CVE-A"}

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValidationError):
            CriticalVulnerabilityPolicy(threshold=10.5)
        with pytest.raises(ValidationError):
            CriticalVulnerabilityPolicy(threshold=-1.0)


class TestOtherPolicies:
    def test_patch_all(self, pool):
        assert len(PatchAllPolicy().select(pool)) == 3

    def test_no_patch(self, pool):
        assert NoPatchPolicy().select(pool) == []
        assert len(NoPatchPolicy().remaining(pool)) == 3

    def test_explicit(self, pool):
        policy = ExplicitPolicy(["CVE-B", "CVE-Z"])
        assert policy.patched_cve_ids(pool) == {"CVE-B"}

    def test_explicit_needs_ids(self):
        with pytest.raises(ValidationError):
            ExplicitPolicy([])

    def test_reprs(self, pool):
        assert "8.0" in repr(CriticalVulnerabilityPolicy())
        assert "CVE-B" in repr(ExplicitPolicy(["CVE-B"]))

"""Tests for patch-workload derivation."""

from __future__ import annotations

import pytest

from repro.patching import (
    CriticalVulnerabilityPolicy,
    NoPatchPolicy,
    derive_pipeline,
    derive_workload,
)
from repro.vulnerability import SoftwareLayer, Vulnerability, paper_database
from repro.vulnerability.catalog import (
    PRODUCT_MS_DNS,
    PRODUCT_WINDOWS,
)

CRITICAL = "AV:N/AC:L/Au:N/C:C/I:C/A:C"


class TestDeriveWorkload:
    def test_counts_by_layer(self):
        vulns = [
            Vulnerability("A", "P", SoftwareLayer.APPLICATION, CRITICAL, True),
            Vulnerability("B", "P", SoftwareLayer.OPERATING_SYSTEM, CRITICAL, False),
            Vulnerability("C", "P", SoftwareLayer.OPERATING_SYSTEM, CRITICAL, True),
        ]
        workload = derive_workload(vulns, CriticalVulnerabilityPolicy())
        assert workload.application_count == 1
        assert workload.os_count == 2
        assert workload.total == 3
        assert workload.application_minutes == pytest.approx(5.0)
        assert workload.os_minutes == pytest.approx(20.0)

    def test_no_patch_policy_selects_nothing(self):
        vulns = [
            Vulnerability("A", "P", SoftwareLayer.APPLICATION, CRITICAL, True)
        ]
        workload = derive_workload(vulns, NoPatchPolicy())
        assert workload.total == 0

    def test_dns_role_matches_paper(self):
        """1 app critical + 2 OS criticals -> 5 and 20 minutes."""
        db = paper_database()
        vulns = db.for_products([PRODUCT_WINDOWS, PRODUCT_MS_DNS])
        workload = derive_workload(vulns, CriticalVulnerabilityPolicy())
        assert (workload.application_count, workload.os_count) == (1, 2)


class TestDerivePipeline:
    def test_pipeline_rates_from_dns_counts(self):
        db = paper_database()
        vulns = db.for_products([PRODUCT_WINDOWS, PRODUCT_MS_DNS])
        pipeline = derive_pipeline(vulns, CriticalVulnerabilityPolicy())
        assert 60.0 / pipeline.service_patch == pytest.approx(5.0)
        assert 60.0 / pipeline.os_patch == pytest.approx(20.0)

    def test_empty_selection_gets_negligible_stages(self):
        pipeline = derive_pipeline([], CriticalVulnerabilityPolicy())
        assert 60.0 / pipeline.service_patch == pytest.approx(0.5)

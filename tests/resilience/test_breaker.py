"""Unit tests for the circuit breaker and its process-wide registry."""

from __future__ import annotations

import pytest

from repro.resilience import CircuitBreaker, breaker, breaker_states
from repro.resilience.breaker import reset_breakers


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


def make(clock, threshold=3, recovery=30.0):
    return CircuitBreaker(
        "test",
        failure_threshold=threshold,
        recovery_time=recovery,
        clock=clock,
    )


class TestCircuitBreaker:
    def test_starts_closed_and_allows(self):
        brk = make(FakeClock())
        assert brk.state == "closed"
        assert brk.allow()

    def test_opens_after_consecutive_failures(self):
        brk = make(FakeClock(), threshold=3)
        brk.record_failure()
        brk.record_failure()
        assert brk.state == "closed"
        assert brk.allow()
        brk.record_failure()
        assert brk.state == "open"
        assert not brk.allow()
        assert brk.opens == 1

    def test_success_resets_the_failure_streak(self):
        brk = make(FakeClock(), threshold=2)
        brk.record_failure()
        brk.record_success()
        brk.record_failure()
        assert brk.state == "closed"

    def test_half_open_lets_exactly_one_probe_through(self):
        clock = FakeClock()
        brk = make(clock, threshold=1, recovery=10.0)
        brk.record_failure()
        assert not brk.allow()
        clock.now += 10.0
        assert brk.state == "half-open"
        assert brk.allow()  # the probe
        assert not brk.allow()  # everyone else keeps the fallback

    def test_probe_success_closes(self):
        clock = FakeClock()
        brk = make(clock, threshold=1, recovery=10.0)
        brk.record_failure()
        clock.now += 10.0
        assert brk.allow()
        brk.record_success()
        assert brk.state == "closed"
        assert brk.allow()

    def test_probe_failure_reopens_for_a_fresh_window(self):
        clock = FakeClock()
        brk = make(clock, threshold=2, recovery=10.0)
        brk.record_failure()
        brk.record_failure()
        clock.now += 10.0
        assert brk.allow()
        brk.record_failure()  # one failed probe re-opens despite threshold 2
        assert brk.state == "open"
        assert not brk.allow()
        clock.now += 10.0
        assert brk.state == "half-open"

    def test_reopen_does_not_double_count_opens(self):
        clock = FakeClock()
        brk = make(clock, threshold=1, recovery=10.0)
        brk.record_failure()
        clock.now += 10.0
        brk.allow()
        brk.record_failure()
        assert brk.opens == 1
        brk.record_success()
        brk.record_failure()
        assert brk.opens == 2

    def test_snapshot_shape(self):
        brk = make(FakeClock(), threshold=2)
        brk.record_failure()
        assert brk.snapshot() == {
            "state": "closed",
            "failures": 1,
            "failure_threshold": 2,
            "opens": 0,
        }

    @pytest.mark.parametrize(
        "kwargs",
        [{"failure_threshold": 0}, {"recovery_time": -1.0}],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CircuitBreaker("bad", **kwargs)


class TestRegistry:
    def test_breaker_is_created_once_per_name(self):
        first = breaker("subsystem", failure_threshold=5)
        again = breaker("subsystem", failure_threshold=99)
        assert again is first
        assert again.failure_threshold == 5

    def test_breaker_states_snapshots_every_breaker(self):
        breaker("alpha").record_failure()
        breaker("beta")
        states = breaker_states()
        assert sorted(states) == ["alpha", "beta"]
        assert states["alpha"]["failures"] == 1
        assert states["beta"]["state"] == "closed"

    def test_reset_breakers_drops_everything(self):
        breaker("gone")
        reset_breakers()
        assert breaker_states() == {}

"""Resilience behaviour of the evaluation service and its client.

Covers the request-deadline 504 path (answered promptly, within the
acceptance bound of twice the budget), 503 + ``Retry-After`` load
shedding, the client's bounded 503 retry, and SIGTERM-style draining.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import EvaluationError
from repro.evaluation.service import DEFAULT_MAX_QUEUE, EvaluationService, ServiceClient
from repro.resilience import RetryPolicy


@pytest.fixture
def service():
    created = []

    def make(**kwargs) -> tuple[EvaluationService, ServiceClient]:
        kwargs.setdefault("executor", "serial")
        kwargs.setdefault("max_designs", 32)
        svc = EvaluationService(**kwargs)
        client = svc.start_in_thread()
        created.append(svc)
        return svc, client

    yield make
    for svc in created:
        svc.close()


def quiet_request(client: ServiceClient, payload: dict):
    """A background request that tolerates a severed connection."""

    def target():
        try:
            client.request("POST", "/sweep", payload)
        except OSError:
            pass  # forced stop severs the transport; that's the point

    return threading.Thread(target=target)


def slow_sweep_job(svc: EvaluationService, release: threading.Event):
    """Replace the sweep job with one that blocks until *release*."""
    original = svc._sweep_job

    def job(space, designs, deadline=None):
        release.wait(timeout=30)
        return original(space, designs, deadline=deadline)

    svc._sweep_job = job


class TestDeadline504:
    def test_expired_deadline_answers_504_within_twice_the_budget(
        self, service
    ):
        svc, client = service()
        release = threading.Event()
        slow_sweep_job(svc, release)
        try:
            start = time.monotonic()
            status, body = client.request(
                "POST",
                "/sweep",
                {"roles": ["dns"], "max_replicas": 2, "deadline_ms": 250},
            )
            elapsed = time.monotonic() - start
        finally:
            release.set()
        assert status == 504
        assert body["deadline_exceeded"] is True
        assert body["deadline_ms"] == 250
        assert "deadline" in body["error"]
        assert elapsed < 2 * 0.25 + 0.3  # 2x budget plus transport slack

    def test_deadline_504_counts_as_an_error(self, service):
        svc, client = service()
        release = threading.Event()
        slow_sweep_job(svc, release)
        try:
            client.request(
                "POST",
                "/sweep",
                {"roles": ["dns"], "max_replicas": 2, "deadline_ms": 100},
            )
        finally:
            release.set()
        assert client.metrics()["counters"]["errors"] >= 1

    def test_request_without_deadline_is_unaffected(self, service):
        _, client = service()
        status, body = client.request(
            "POST", "/sweep", {"roles": ["dns"], "max_replicas": 2}
        )
        assert status == 200
        assert body["design_count"] > 0

    def test_invalid_deadline_is_a_400(self, service):
        _, client = service()
        for bad in (0, -5, "soon", True):
            status, body = client.request(
                "POST",
                "/sweep",
                {"roles": ["dns"], "max_replicas": 2, "deadline_ms": bad},
            )
            assert status == 400, bad
            assert "deadline_ms" in body["error"]


class TestSaturation503:
    def test_full_queue_sheds_load_with_retry_after(self, service):
        svc, client = service(max_queue=1, retry_after=2.0)
        release = threading.Event()
        slow_sweep_job(svc, release)
        occupier = threading.Thread(
            target=client.request,
            args=("POST", "/sweep", {"roles": ["dns"], "max_replicas": 2}),
        )
        occupier.start()
        try:
            deadline = time.monotonic() + 5
            while not svc._inflight and time.monotonic() < deadline:
                time.sleep(0.01)
            assert svc._inflight, "first request never occupied the queue"
            bare = ServiceClient(*svc.address, retry=None)
            status, body, retry_after = bare._request_once(
                "POST",
                "/sweep",
                {"roles": ["web"], "max_replicas": 2},
                None,
            )
        finally:
            release.set()
            occupier.join(timeout=30)
        assert status == 503
        assert "saturated" in body["error"]
        assert body["retry_after_s"] == 2.0
        assert retry_after == 2.0  # the Retry-After header, parsed
        assert client.metrics()["counters"]["rejected"] >= 1

    def test_duplicate_of_inflight_request_is_still_admitted(self, service):
        # Dedup joins don't occupy new queue slots, so an identical
        # request never gets a 503 — it shares the running computation.
        svc, client = service(max_queue=1)
        release = threading.Event()
        slow_sweep_job(svc, release)
        results = {}

        def hit(name):
            results[name] = client.request(
                "POST", "/sweep", {"roles": ["dns"], "max_replicas": 2}
            )

        threads = [
            threading.Thread(target=hit, args=(name,)) for name in ("a", "b")
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.3)
        release.set()
        for thread in threads:
            thread.join(timeout=30)
        assert results["a"][0] == 200
        assert results["b"][0] == 200
        assert results["a"][1] == results["b"][1]

    def test_client_retries_503_until_capacity_returns(self, service):
        svc, client = service(max_queue=1, retry_after=1.0)
        release = threading.Event()
        slow_sweep_job(svc, release)
        occupier = threading.Thread(
            target=client.request,
            args=("POST", "/sweep", {"roles": ["dns"], "max_replicas": 2}),
        )
        occupier.start()
        try:
            deadline = time.monotonic() + 5
            while not svc._inflight and time.monotonic() < deadline:
                time.sleep(0.01)
            # Free the queue shortly after the retrying client's first
            # 503; its second attempt should then be admitted.
            threading.Timer(0.2, release.set).start()
            retrying = ServiceClient(
                *svc.address,
                retry=RetryPolicy(
                    attempts=5, base_delay=0.3, max_delay=0.3
                ),
            )
            status, body = retrying.request(
                "POST", "/sweep", {"roles": ["web"], "max_replicas": 2}
            )
        finally:
            release.set()
            occupier.join(timeout=30)
        assert status == 200
        assert body["design_count"] > 0

    def test_default_queue_bound_is_active(self, service):
        svc, _ = service()
        assert svc.max_queue == DEFAULT_MAX_QUEUE


class TestDrain:
    def test_draining_service_finishes_inflight_then_stops(self, service):
        svc, client = service(drain_grace=10.0)
        release = threading.Event()
        slow_sweep_job(svc, release)
        results = {}

        def hit():
            results["inflight"] = client.request(
                "POST", "/sweep", {"roles": ["dns"], "max_replicas": 2}
            )

        inflight = threading.Thread(target=hit)
        inflight.start()
        deadline = time.monotonic() + 5
        while not svc._inflight and time.monotonic() < deadline:
            time.sleep(0.01)
        assert svc._inflight

        # SIGTERM equivalent for a thread-hosted service.
        svc._loop.call_soon_threadsafe(svc._begin_drain)
        deadline = time.monotonic() + 5
        while not svc._draining and time.monotonic() < deadline:
            time.sleep(0.01)

        # Reads still work and report the draining state...
        health = client.healthz()
        assert health["status"] == "draining"
        assert health["resilience"]["draining"] is True
        # ...but new computations are refused.
        bare = ServiceClient(*svc.address, retry=None)
        status, body = bare.request(
            "POST", "/sweep", {"roles": ["web"], "max_replicas": 2}
        )
        assert status == 503
        assert "draining" in body["error"]

        # The in-flight request completes, then the server stops.
        release.set()
        inflight.join(timeout=30)
        assert results["inflight"][0] == 200
        svc._thread.join(timeout=10)
        assert not svc._thread.is_alive()

    def test_drain_grace_bounds_the_wait(self, service):
        svc, client = service(drain_grace=0.3)
        release = threading.Event()
        slow_sweep_job(svc, release)
        stuck = quiet_request(client, {"roles": ["dns"], "max_replicas": 2})
        stuck.start()
        try:
            deadline = time.monotonic() + 5
            while not svc._inflight and time.monotonic() < deadline:
                time.sleep(0.01)
            svc._loop.call_soon_threadsafe(svc._begin_drain)
            # The job never finishes, but the grace period expires and
            # the listening socket closes: new connections are refused.
            deadline = time.monotonic() + 5
            bare = ServiceClient(*svc.address, retry=None)
            while time.monotonic() < deadline:
                try:
                    bare.request("GET", "/healthz")
                except OSError:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("listener still accepting after drain_grace")
        finally:
            release.set()
            stuck.join(timeout=30)
        svc._thread.join(timeout=10)
        assert not svc._thread.is_alive()


class TestLifecycleTimeouts:
    def test_timeout_parameters_are_validated(self):
        for field in (
            "startup_timeout",
            "shutdown_timeout",
            "retry_after",
            "drain_grace",
        ):
            with pytest.raises(EvaluationError):
                EvaluationService(executor="serial", **{field: 0})

    def test_stop_raises_descriptively_when_thread_hangs(self, service):
        svc, client = service(shutdown_timeout=0.3)
        blocking = threading.Event()
        original = svc._dispatch

        async def blocked_dispatch(*args):
            # Block the event loop itself: the stop event can be
            # scheduled but never processed, which is exactly the
            # "thread still serving" shape stop() must surface.
            blocking.set()
            time.sleep(1.5)
            return await original(*args)

        svc._dispatch = blocked_dispatch
        thread = svc._thread
        stuck = quiet_request(client, {"roles": ["dns"], "max_replicas": 2})
        stuck.start()
        try:
            assert blocking.wait(timeout=5)
            with pytest.raises(EvaluationError, match="shutdown_timeout"):
                svc.stop()
        finally:
            stuck.join(timeout=30)
            thread.join(timeout=30)

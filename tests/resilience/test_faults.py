"""Unit tests for the deterministic fault-injection harness."""

from __future__ import annotations

import os

import pytest

from repro.errors import FaultInjected, ValidationError
from repro.resilience import FaultPlan, fault_point
from repro.resilience.faults import ENV_PARENT, ENV_PLAN, ENV_STATE, FaultSpec
from repro.resilience import faults as faults_mod


class TestFaultSpec:
    def test_parse_full_spec(self):
        spec = FaultSpec.parse("cache.write:error@2")
        assert spec == FaultSpec(point="cache.write", action="error", hit=2)

    def test_hit_defaults_to_first_arrival(self):
        assert FaultSpec.parse("worker.chunk:kill").hit == 1

    def test_whitespace_and_case_tolerated(self):
        spec = FaultSpec.parse("  solver.iterative : FAIL @ 3 ")
        assert spec.action == "fail"
        assert spec.hit == 3

    @pytest.mark.parametrize(
        "text",
        [
            "nocolon",
            ":error@1",
            "point:explode@1",
            "point:error@x",
            "point:error@0",
        ],
    )
    def test_invalid_specs_rejected(self, text):
        with pytest.raises(ValidationError):
            FaultSpec.parse(text)

    def test_token_is_filesystem_safe(self):
        assert os.sep not in FaultSpec.parse("a.b:error@2").token


def plan_for(raw: str, tmp_path) -> FaultPlan:
    specs = [FaultSpec.parse(part) for part in raw.split(";") if part.strip()]
    return FaultPlan(specs, str(tmp_path), os.getpid())


class TestFaultPlan:
    def test_from_env_without_plan_is_none(self):
        assert FaultPlan.from_env({}) is None
        assert FaultPlan.from_env({ENV_PLAN: "  "}) is None

    def test_from_env_materialises_shared_state(self):
        environ = {ENV_PLAN: "cache.write:error@1"}
        plan = FaultPlan.from_env(environ)
        try:
            assert plan is not None
            # The first activating process exports the token dir and its
            # pid so forked pool workers inherit one-shot state.
            assert os.path.isdir(os.environ[ENV_STATE])
            assert os.environ[ENV_PARENT] == str(os.getpid())
        finally:
            state = os.environ.pop(ENV_STATE, None)
            os.environ.pop(ENV_PARENT, None)
            if state and os.path.isdir(state):
                os.rmdir(state)

    def test_fires_on_the_named_hit_only(self, tmp_path):
        plan = plan_for("solver.iterative:fail@3", tmp_path)
        plan.trigger("solver.iterative")
        plan.trigger("solver.iterative")
        with pytest.raises(FaultInjected):
            plan.trigger("solver.iterative")

    def test_fires_exactly_once(self, tmp_path):
        plan = plan_for("cache.write:error@1", tmp_path)
        with pytest.raises(FaultInjected):
            plan.trigger("cache.write")
        # Hit counts keep advancing but the one-shot token is spent.
        for _ in range(5):
            plan.trigger("cache.write")

    def test_one_shot_token_is_shared_across_plans(self, tmp_path):
        # Two plans over one state dir model two processes of one tree:
        # whichever arrives at the armed hit first wins the claim.
        first = plan_for("cache.write:error@1", tmp_path)
        second = plan_for("cache.write:error@1", tmp_path)
        with pytest.raises(FaultInjected):
            first.trigger("cache.write")
        second.trigger("cache.write")  # token already claimed: no raise

    def test_caller_supplied_error_is_raised(self, tmp_path):
        plan = plan_for("cache.read:error@1", tmp_path)
        with pytest.raises(OSError, match="injected lock"):
            plan.trigger("cache.read", error=OSError("injected lock"))

    def test_unarmed_points_are_free(self, tmp_path):
        plan = plan_for("cache.write:error@1", tmp_path)
        plan.trigger("solver.transient")  # nothing armed here

    def test_worker_only_never_fires_in_the_parent(self, tmp_path):
        plan = plan_for("worker.chunk:fail@1", tmp_path)
        plan.trigger("worker.chunk", worker_only=True)  # parent: skipped
        # A worker (different pid recorded as parent) does fire.
        worker_view = FaultPlan(
            [FaultSpec.parse("worker.chunk:fail@1")],
            str(tmp_path),
            os.getpid() + 1,
        )
        with pytest.raises(FaultInjected):
            worker_view.trigger("worker.chunk", worker_only=True)

    def test_separate_specs_for_consecutive_hits(self, tmp_path):
        # The cache chaos drill arms one spec per retry attempt.
        plan = plan_for(
            "cache.write:error@1;cache.write:error@2;cache.write:error@3",
            tmp_path,
        )
        for _ in range(3):
            with pytest.raises(FaultInjected):
                plan.trigger("cache.write")
        plan.trigger("cache.write")  # fourth attempt sails through


class TestActivePlan:
    def test_fault_point_is_noop_without_a_plan(self):
        fault_point("cache.write")
        fault_point("anything.else", worker_only=True)

    def test_fault_point_uses_the_env_plan(self, monkeypatch):
        monkeypatch.setenv(ENV_PLAN, "demo.point:fail@1")
        faults_mod.reset()
        with pytest.raises(FaultInjected):
            fault_point("demo.point")
        fault_point("demo.point")  # one-shot

    def test_plan_is_loaded_once_per_process(self, monkeypatch):
        faults_mod.reset()
        assert faults_mod.active_plan() is None
        # Setting the env after the first load changes nothing...
        monkeypatch.setenv(ENV_PLAN, "late.point:fail@1")
        assert faults_mod.active_plan() is None
        # ...until an explicit reset re-reads it.
        faults_mod.reset()
        assert faults_mod.active_plan() is not None

"""Unit tests for :class:`repro.resilience.RetryPolicy`."""

from __future__ import annotations

import pytest

from repro.resilience import RetryPolicy


class TestSchedule:
    def test_deterministic_exponential_backoff(self):
        policy = RetryPolicy(attempts=4, base_delay=0.1, multiplier=2.0)
        assert policy.delays() == (0.1, 0.2, 0.4)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(3) == pytest.approx(0.4)

    def test_max_delay_caps_every_sleep(self):
        policy = RetryPolicy(
            attempts=6, base_delay=1.0, multiplier=10.0, max_delay=2.5
        )
        assert policy.delays() == (1.0, 2.5, 2.5, 2.5, 2.5)

    def test_zero_base_delay_means_no_sleeping(self):
        policy = RetryPolicy(attempts=3, base_delay=0.0)
        assert policy.delays() == (0.0, 0.0)

    def test_single_attempt_has_empty_schedule(self):
        assert RetryPolicy(attempts=1).delays() == ()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"attempts": 0},
            {"base_delay": -0.1},
            {"multiplier": 0.5},
            {"max_delay": -1.0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_delay_index_must_be_positive(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay(0)


class TestCall:
    def test_success_needs_no_retry(self):
        calls = []
        result = RetryPolicy(attempts=3).call(lambda: calls.append(1) or 42)
        assert result == 42
        assert len(calls) == 1

    def test_retries_until_success_with_backoff(self):
        attempts = []
        sleeps = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise OSError("transient")
            return "ok"

        policy = RetryPolicy(attempts=4, base_delay=0.1)
        result = policy.call(flaky, sleep=sleeps.append)
        assert result == "ok"
        assert len(attempts) == 3
        assert sleeps == [pytest.approx(0.1), pytest.approx(0.2)]

    def test_exhausted_attempts_reraise_the_last_error(self):
        boom = OSError("still broken")

        def always_fails():
            raise boom

        with pytest.raises(OSError) as excinfo:
            RetryPolicy(attempts=3, base_delay=0.0).call(always_fails)
        assert excinfo.value is boom

    def test_non_matching_exception_is_not_retried(self):
        calls = []

        def fails():
            calls.append(1)
            raise ValueError("not retryable")

        with pytest.raises(ValueError):
            RetryPolicy(attempts=3, base_delay=0.0).call(
                fails, retry_on=(OSError,)
            )
        assert len(calls) == 1

    def test_should_retry_predicate_can_veto(self):
        calls = []

        def fails():
            calls.append(1)
            raise OSError("permanent")

        with pytest.raises(OSError):
            RetryPolicy(attempts=3, base_delay=0.0).call(
                fails,
                retry_on=(OSError,),
                should_retry=lambda exc: "transient" in str(exc),
            )
        assert len(calls) == 1

    def test_before_retry_runs_between_attempts(self):
        seen = []

        def flaky():
            if len(seen) < 2:
                raise OSError(f"failure {len(seen)}")
            return "ok"

        result = RetryPolicy(attempts=3, base_delay=0.0).call(
            flaky,
            before_retry=lambda index, exc: seen.append((index, str(exc))),
        )
        assert result == "ok"
        assert seen == [(1, "failure 0"), (2, "failure 1")]

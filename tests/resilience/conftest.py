"""Shared isolation for the resilience tests.

Fault plans and circuit breakers are process-wide singletons (so forked
workers and ``/healthz`` see one state); every test here gets a clean
slate before and after, and the ``REPRO_*`` knobs never leak between
tests.
"""

from __future__ import annotations

import os

import pytest

from repro.resilience import faults as faults_mod
from repro.resilience.breaker import reset_breakers

_FAULT_ENVS = (faults_mod.ENV_PLAN, faults_mod.ENV_STATE, faults_mod.ENV_PARENT)
_KNOB_ENVS = (
    "REPRO_BREAKER_THRESHOLD",
    "REPRO_BREAKER_RECOVERY",
    "REPRO_ITERATIVE_THRESHOLD",
)


@pytest.fixture(autouse=True)
def clean_resilience_state():
    saved = {
        env: os.environ.get(env) for env in _FAULT_ENVS + _KNOB_ENVS
    }
    for env in _FAULT_ENVS + _KNOB_ENVS:
        os.environ.pop(env, None)
    faults_mod.reset()
    reset_breakers()
    yield
    for env, value in saved.items():
        if value is None:
            os.environ.pop(env, None)
        else:
            os.environ[env] = value
    faults_mod.reset()
    reset_breakers()

"""Recovery-path tests driven through the fault-injection harness.

Each test arms a ``REPRO_FAULTS`` plan, exercises the real component,
and asserts the resilience contract: the fault is absorbed by a retry,
a degrade or a breaker fallback — never surfaced to the caller — and
the recovered output is identical to a clean run.
"""

from __future__ import annotations

import os

import pytest

from repro.evaluation.cache import PersistentEvaluationCache
from repro.evaluation.engine import SweepEngine
from repro.evaluation.sweep import enumerate_designs
from repro.resilience import RetryPolicy, breaker, breaker_states
from repro.resilience import faults as faults_mod

FAST_RETRY = RetryPolicy(attempts=3, base_delay=0.0)


def arm(monkeypatch, plan: str) -> None:
    """Arm a REPRO_FAULTS plan for this process (and future forks)."""
    monkeypatch.setenv(faults_mod.ENV_PLAN, plan)
    faults_mod.reset()


class TestCacheDegrade:
    def test_transient_lock_is_retried_away(self, monkeypatch, tmp_path):
        # One injected lock: the second attempt succeeds and the cache
        # stays on disk.
        arm(monkeypatch, "cache.write:error@1")
        with PersistentEvaluationCache(
            tmp_path / "cache.sqlite", retry_policy=FAST_RETRY
        ) as cache:
            cache.put("evaluation", "k1", {"value": 1})
            assert not cache.degraded
            assert cache.get("evaluation", "k1") == {"value": 1}

    def test_persistent_lock_degrades_to_memory_only(
        self, monkeypatch, tmp_path
    ):
        # Locks on every retry attempt: the cache degrades instead of
        # failing the request, and keeps serving from memory.
        arm(
            monkeypatch,
            "cache.write:error@1;cache.write:error@2;cache.write:error@3",
        )
        with PersistentEvaluationCache(
            tmp_path / "cache.sqlite", retry_policy=FAST_RETRY
        ) as cache:
            cache.put("evaluation", "k1", {"value": 1})
            assert cache.degraded
            assert cache.get("evaluation", "k1") == {"value": 1}
            # Later writes/reads stay in the fallback without touching
            # sqlite again.
            cache.put("evaluation", "k2", {"value": 2})
            assert cache.get("evaluation", "k2") == {"value": 2}
            assert cache.get("evaluation", "missing") is None
            stats = cache.stats()
            assert stats["degraded"] is True
            assert stats["entries"] == 2

    def test_degraded_cache_never_fails_a_sweep(self, monkeypatch, tmp_path):
        arm(
            monkeypatch,
            "cache.write:error@1;cache.write:error@2;cache.write:error@3",
        )
        engine = SweepEngine(cache_path=tmp_path / "cache.sqlite")
        engine.persistent_cache.retry_policy = FAST_RETRY
        designs = list(enumerate_designs(["dns", "web"], max_replicas=2))
        clean = SweepEngine().evaluate(designs)
        recovered = engine.evaluate(designs)
        assert recovered == clean
        assert engine.persistent_cache.degraded
        assert engine.cache_info["disk_degraded"] == 1


class TestBreakerFallback:
    def test_open_breaker_routes_steady_state_direct(self, monkeypatch):
        from repro.enterprise import scaled_case_study

        # Push the auto path onto the iterative solver for this model
        # size, then make its very first solve fail: threshold 1 opens
        # the breaker immediately.
        monkeypatch.setenv("REPRO_ITERATIVE_THRESHOLD", "300")
        monkeypatch.setenv("REPRO_BREAKER_THRESHOLD", "1")
        arm(monkeypatch, "solver.iterative:fail@1")

        case_study, design = scaled_case_study(6, 3)  # 343 states
        clean = SweepEngine(case_study=case_study).evaluate([design])

        faulted_engine = SweepEngine(case_study=case_study)
        faulted = faulted_engine.evaluate([design])
        assert faulted == clean

        brk = breaker("solver.iterative")
        assert brk.opens == 1
        assert breaker_states()["solver.iterative"]["opens"] == 1

    def test_breaker_disallow_skips_iterative_entirely(self, monkeypatch):
        from repro.ctmc.steady import _try_iterative

        monkeypatch.setenv("REPRO_BREAKER_THRESHOLD", "1")
        brk = breaker("solver.iterative", failure_threshold=1)
        brk.record_failure()  # open

        def must_not_run():
            raise AssertionError("iterative attempted with an open breaker")

        assert _try_iterative(must_not_run, 1000, "test") is None


class TestWorkerKillRecovery:
    @pytest.mark.parametrize("persistent", [False, True])
    def test_killed_worker_recycles_once_and_results_match(
        self, monkeypatch, persistent
    ):
        # Arm before the engine exists: SweepEngine materialises the
        # one-shot token directory in __init__, so forked pool workers
        # inherit it through the environment.
        arm(monkeypatch, "worker.chunk:kill@1")
        designs = list(enumerate_designs(["dns", "web"], max_replicas=2))
        clean = SweepEngine().evaluate(designs)

        from repro.evaluation.engine import ProcessExecutor

        engine = SweepEngine(
            executor=ProcessExecutor(max_workers=2, persistent=persistent)
        )
        try:
            recovered = engine.evaluate(designs)
        finally:
            state_dir = os.environ.get(faults_mod.ENV_STATE, "")
            engine.close()
        assert recovered == clean
        assert engine.executor.recycle_count == 1
        # The fault really fired: its one-shot token was claimed.
        assert state_dir and os.listdir(state_dir) == ["worker.chunk.kill.1"]

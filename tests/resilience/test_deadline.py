"""Unit tests for :class:`repro.resilience.Deadline`."""

from __future__ import annotations

import pytest

from repro.errors import DeadlineExceeded, EvaluationError, ReproError
from repro.resilience import Deadline


class FakeClock:
    def __init__(self, now: float = 100.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


class TestDeadline:
    def test_after_counts_down_on_the_given_clock(self):
        clock = FakeClock()
        deadline = Deadline.after(2.0, clock=clock)
        assert deadline.remaining() == pytest.approx(2.0)
        assert not deadline.expired
        clock.now += 1.5
        assert deadline.remaining() == pytest.approx(0.5)
        clock.now += 1.0
        assert deadline.expired
        assert deadline.remaining() == pytest.approx(-0.5)

    def test_after_ms_converts_budget(self):
        clock = FakeClock()
        deadline = Deadline.after_ms(250, clock=clock)
        assert deadline.budget == pytest.approx(0.25)
        assert deadline.remaining() == pytest.approx(0.25)

    def test_check_passes_while_budget_remains(self):
        deadline = Deadline.after(5.0, clock=FakeClock())
        deadline.check("anything")  # no raise

    def test_check_raises_typed_error_once_spent(self):
        clock = FakeClock()
        deadline = Deadline.after_ms(100, clock=clock)
        clock.now += 0.15
        with pytest.raises(DeadlineExceeded) as excinfo:
            deadline.check("chunk dispatch")
        message = str(excinfo.value)
        assert "100 ms" in message
        assert "chunk dispatch" in message

    def test_deadline_exceeded_is_an_evaluation_error(self):
        # The service maps EvaluationError subclasses; the CLI separates
        # exit code 3 (deadline) from 2 (other domain errors).
        assert issubclass(DeadlineExceeded, EvaluationError)
        assert issubclass(DeadlineExceeded, ReproError)

    @pytest.mark.parametrize("budget", [0.0, -1.0])
    def test_non_positive_budgets_rejected(self, budget):
        with pytest.raises(ValueError):
            Deadline.after(budget)

"""Tests for severity banding."""

from __future__ import annotations

import pytest

from repro.cvss import Severity, severity_from_score
from repro.errors import CvssError, ValidationError


class TestBands:
    @pytest.mark.parametrize("score", [0.0, 1.0, 3.9])
    def test_low(self, score):
        assert severity_from_score(score) is Severity.LOW

    @pytest.mark.parametrize("score", [4.0, 5.5, 6.9])
    def test_medium(self, score):
        assert severity_from_score(score) is Severity.MEDIUM

    @pytest.mark.parametrize("score", [7.0, 8.1, 10.0])
    def test_high(self, score):
        assert severity_from_score(score) is Severity.HIGH

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            severity_from_score(-0.1)

    def test_rejects_above_ten(self):
        with pytest.raises(CvssError):
            severity_from_score(10.1)

    def test_str(self):
        assert str(Severity.HIGH) == "high"

"""Tests for CVSS v2 vector parsing."""

from __future__ import annotations

import pytest

from repro.cvss import CvssVector
from repro.errors import CvssError


class TestParsing:
    def test_canonical_vector(self):
        vector = CvssVector.parse("AV:N/AC:L/Au:N/C:C/I:C/A:C")
        assert vector.access_vector == "N"
        assert vector.access_complexity == "L"
        assert vector.authentication == "N"
        assert vector.conf_impact == "C"
        assert vector.integ_impact == "C"
        assert vector.avail_impact == "C"

    def test_parenthesised_nvd_format(self):
        vector = CvssVector.parse("(AV:L/AC:M/Au:S/C:P/I:N/A:N)")
        assert vector.access_vector == "L"
        assert vector.authentication == "S"

    def test_cvss2_prefix(self):
        vector = CvssVector.parse("CVSS2#AV:N/AC:H/Au:M/C:N/I:P/A:C")
        assert vector.access_complexity == "H"

    def test_roundtrip_to_string(self):
        text = "AV:A/AC:M/Au:S/C:P/I:C/A:N"
        assert CvssVector.parse(text).to_string() == text

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "AV:N/AC:L/Au:N/C:C/I:C",          # missing metric
            "AV:N/AC:L/Au:N/C:C/I:C/A:C/E:F",  # extra metric
            "AV:X/AC:L/Au:N/C:C/I:C/A:C",      # invalid level
            "AV:N/AV:N/Au:N/C:C/I:C/A:C",      # duplicate metric
            "AVN/AC:L/Au:N/C:C/I:C/A:C",       # malformed pair
            "XX:N/AC:L/Au:N/C:C/I:C/A:C",      # unknown key
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(CvssError):
            CvssVector.parse(bad)

    def test_rejects_non_string(self):
        with pytest.raises(CvssError):
            CvssVector.parse(None)


class TestWeights:
    def test_network_access_weight(self):
        vector = CvssVector.parse("AV:N/AC:L/Au:N/C:C/I:C/A:C")
        assert vector.access_vector_weight == 1.0
        assert vector.access_complexity_weight == 0.71
        assert vector.authentication_weight == 0.704

    def test_local_access_weight(self):
        vector = CvssVector.parse("AV:L/AC:H/Au:M/C:N/I:P/A:C")
        assert vector.access_vector_weight == 0.395
        assert vector.access_complexity_weight == 0.35
        assert vector.authentication_weight == 0.45
        assert vector.conf_impact_weight == 0.0
        assert vector.integ_impact_weight == 0.275
        assert vector.avail_impact_weight == 0.660

    def test_direct_construction_validates(self):
        with pytest.raises(CvssError):
            CvssVector("Q", "L", "N", "C", "C", "C")

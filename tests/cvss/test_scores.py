"""Tests for CVSS v2 score arithmetic against NVD-published values."""

from __future__ import annotations

import pytest

from repro.cvss import (
    base_score,
    CvssVector,
    exploitability_subscore,
    impact_subscore,
    score_vector,
)


class TestSubscores:
    def test_full_impact_is_ten(self):
        vector = CvssVector.parse("AV:N/AC:L/Au:N/C:C/I:C/A:C")
        assert impact_subscore(vector) == 10.0

    def test_single_partial_impact(self):
        vector = CvssVector.parse("AV:N/AC:L/Au:N/C:P/I:N/A:N")
        assert impact_subscore(vector) == 2.9

    def test_triple_partial_impact(self):
        vector = CvssVector.parse("AV:N/AC:L/Au:N/C:P/I:P/A:P")
        assert impact_subscore(vector) == 6.4

    def test_zero_impact(self):
        vector = CvssVector.parse("AV:N/AC:L/Au:N/C:N/I:N/A:N")
        assert impact_subscore(vector) == 0.0

    def test_remote_easy_exploitability_is_ten(self):
        vector = CvssVector.parse("AV:N/AC:L/Au:N/C:C/I:C/A:C")
        assert exploitability_subscore(vector) == 10.0

    def test_remote_medium_exploitability(self):
        vector = CvssVector.parse("AV:N/AC:M/Au:N/C:C/I:C/A:C")
        assert exploitability_subscore(vector) == 8.6

    def test_local_exploitability(self):
        vector = CvssVector.parse("AV:L/AC:L/Au:N/C:C/I:C/A:C")
        assert exploitability_subscore(vector) == 3.9


class TestBaseScores:
    """Published NVD v2 base scores for well-known vector shapes."""

    @pytest.mark.parametrize(
        "vector,expected",
        [
            ("AV:N/AC:L/Au:N/C:C/I:C/A:C", 10.0),  # e.g. MS08-067 class
            ("AV:N/AC:L/Au:N/C:P/I:P/A:P", 7.5),   # classic RCE partials
            ("AV:L/AC:L/Au:N/C:C/I:C/A:C", 7.2),   # local privilege escalation
            ("AV:N/AC:M/Au:N/C:N/I:P/A:N", 4.3),   # e.g. CVE-2015-3152
            ("AV:N/AC:L/Au:N/C:P/I:N/A:N", 5.0),   # info leak
            ("AV:N/AC:L/Au:N/C:N/I:N/A:N", 0.0),   # no impact -> f(I)=0
            ("AV:N/AC:L/Au:N/C:N/I:N/A:P", 5.0),   # availability-only
            ("AV:N/AC:M/Au:N/C:C/I:C/A:C", 9.3),   # e.g. real CVE-2016-3227
            ("AV:L/AC:H/Au:N/C:C/I:C/A:C", 6.2),
            ("AV:N/AC:L/Au:S/C:C/I:C/A:C", 9.0),
        ],
    )
    def test_published_scores(self, vector, expected):
        assert base_score(CvssVector.parse(vector)) == expected

    def test_score_vector_bundles_all_three(self):
        scores = score_vector("AV:N/AC:L/Au:N/C:C/I:C/A:C")
        assert (scores.impact, scores.exploitability, scores.base) == (
            10.0,
            10.0,
            10.0,
        )

    def test_paper_conventions(self):
        scores = score_vector("AV:L/AC:L/Au:N/C:C/I:C/A:C")
        assert scores.attack_impact == 10.0
        assert scores.attack_success_probability == pytest.approx(0.39)

    def test_accepts_vector_instance(self):
        vector = CvssVector.parse("AV:N/AC:L/Au:N/C:C/I:C/A:C")
        assert score_vector(vector).base == 10.0


class TestRounding:
    def test_scores_have_one_decimal(self):
        for av in "NAL":
            for ac in "HML":
                vector = CvssVector.parse(f"AV:{av}/AC:{ac}/Au:N/C:C/I:P/A:N")
                value = base_score(vector)
                assert value == round(value, 1)

    def test_unrounded_subscores_available(self):
        vector = CvssVector.parse("AV:N/AC:M/Au:N/C:C/I:C/A:C")
        raw = exploitability_subscore(vector, rounded=False)
        assert raw == pytest.approx(20.0 * 1.0 * 0.61 * 0.704)

"""Tests for staged patch-rollout campaigns through the timeline subsystem."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.enterprise import RedundancyDesign, paper_designs
from repro.errors import EvaluationError
from repro.evaluation import SweepEngine, default_time_grid, evaluate_timeline
from repro.patching import BIG_BANG, CANARY_THEN_FLEET, CampaignPhase, PatchCampaign


@pytest.fixture(scope="module")
def grid():
    return default_time_grid(720.0, 7)


@pytest.fixture(scope="module")
def design_one():
    return paper_designs()[0]


def assert_curves_identical(a, b):
    assert a.coa == b.coa
    assert a.completion_probability == b.completion_probability
    assert a.unpatched_fraction == b.unpatched_fraction
    assert a.mean_time_to_completion == b.mean_time_to_completion
    assert a.steady_coa == b.steady_coa
    assert a.before.as_dict() == b.before.as_dict()
    assert a.after.as_dict() == b.after.as_dict()


class TestSinglePhaseDegeneracy:
    def test_big_bang_bit_identical_to_stationary(self, design_one, grid):
        plain = evaluate_timeline(design_one, grid)
        staged = evaluate_timeline(design_one, grid, campaign=BIG_BANG)
        assert_curves_identical(plain, staged)
        assert plain.campaign is None and plain.phase_starts == ()
        assert staged.campaign == BIG_BANG
        assert staged.phase_starts == (0.0,)

    def test_big_bang_bit_identical_across_executors(self, grid):
        designs = paper_designs()[:3]
        reference = SweepEngine(executor="serial").timeline(designs, grid)
        for executor in ("serial", "thread", "process"):
            staged = SweepEngine(
                executor=executor,
                max_workers=None if executor == "serial" else 2,
            ).timeline(designs, grid, campaign=BIG_BANG)
            for a, b in zip(reference, staged):
                assert_curves_identical(a, b)


class TestStagedCurves:
    def test_canary_first_slows_rollout_and_softens_dip(self, design_one, grid):
        plain = evaluate_timeline(design_one, grid)
        staged = evaluate_timeline(design_one, grid, campaign=CANARY_THEN_FLEET)
        # throttled phases leave more exposure at every interior time ...
        assert all(
            s >= p - 1e-12
            for p, s in zip(plain.unpatched_fraction, staged.unpatched_fraction)
        )
        assert staged.mean_time_to_completion > plain.mean_time_to_completion
        # ... but dip availability less while the canary runs
        assert staged.min_coa >= plain.min_coa - 1e-12
        assert staged.phase_starts == (0.0, 48.0, 168.0)

    def test_security_curves_are_phase_aware(self, design_one, grid):
        plain = evaluate_timeline(design_one, grid)
        staged = evaluate_timeline(design_one, grid, campaign=CANARY_THEN_FLEET)
        for name, curve in staged.security_curves().items():
            hi = max(plain.security_curve(name)[0], plain.security_curve(name)[-1])
            lo = min(plain.security_curve(name)[0], plain.security_curve(name)[-1])
            assert all(lo - 1e-12 <= value <= hi + 1e-12 for value in curve)
        # interpolation follows the staged (slower) unpatched fraction
        asp = staged.security_curve("ASP")
        before = staged.before.as_dict()["ASP"]
        after = staged.after.as_dict()["ASP"]
        expected = tuple(
            after + (before - after) * fraction
            for fraction in staged.unpatched_fraction
        )
        assert asp == expected

    def test_mean_completion_matches_numerical_integral(self, design_one):
        fine = tuple(np.linspace(0.0, 40_000.0, 2001))
        staged = evaluate_timeline(design_one, fine, campaign=CANARY_THEN_FLEET)
        integral = np.trapezoid(
            1.0 - np.array(staged.completion_probability), fine
        )
        assert staged.mean_time_to_completion == pytest.approx(
            float(integral), rel=1e-3
        )

    def test_campaign_type_validation(self, design_one, grid):
        with pytest.raises(EvaluationError):
            evaluate_timeline(design_one, grid, campaign="canary:0.1:48")

    def test_non_finite_times_rejected(self, design_one):
        for bad in (math.nan, math.inf):
            with pytest.raises(EvaluationError):
                evaluate_timeline(design_one, (0.0, bad))
            with pytest.raises(EvaluationError):
                evaluate_timeline(design_one, (0.0, bad), campaign=BIG_BANG)


class TestCampaignEdgeCases:
    def test_zero_duration_phases_are_no_ops(self, design_one, grid):
        padded = PatchCampaign(
            name="padded",
            phases=(
                CampaignPhase(name="noop", rate_multiplier=9.0, duration_hours=0),
                CampaignPhase(name="canary", rate_multiplier=0.1, duration_hours=48),
                CampaignPhase(name="gap", rate_multiplier=0.0, duration_hours=0),
                CampaignPhase(name="fleet", rate_multiplier=1.0),
            ),
        )
        two_phase = PatchCampaign(
            name="plain",
            phases=(
                CampaignPhase(name="canary", rate_multiplier=0.1, duration_hours=48),
                CampaignPhase(name="fleet", rate_multiplier=1.0),
            ),
        )
        a = evaluate_timeline(design_one, grid, campaign=padded)
        b = evaluate_timeline(design_one, grid, campaign=two_phase)
        assert_curves_identical(a, b)
        assert a.phase_starts == (0.0, 0.0, 48.0, 48.0)

    def test_boundary_exactly_on_grid_point(self, design_one):
        # 48 h boundary is also a requested time: the value must equal the
        # carried vector, i.e. the limit from both sides of the boundary.
        campaign = PatchCampaign(
            name="edge",
            phases=(
                CampaignPhase(name="canary", rate_multiplier=0.1, duration_hours=48),
                CampaignPhase(name="fleet", rate_multiplier=1.0),
            ),
        )
        times = (0.0, 24.0, 48.0, 96.0)
        staged = evaluate_timeline(design_one, times, campaign=campaign)
        # compare against a canary-only (stationary at 0.1) run at t = 48
        canary_only = PatchCampaign(
            name="canary-only",
            phases=(CampaignPhase(name="canary", rate_multiplier=0.1),),
        )
        limit = evaluate_timeline(design_one, (48.0,), campaign=canary_only)
        assert staged.unpatched_fraction[2] == limit.unpatched_fraction[0]
        assert staged.completion_probability[2] == limit.completion_probability[0]
        assert staged.coa[2] == limit.coa[0]

    def test_trigger_fires_at_expected_fraction(self, design_one):
        campaign = PatchCampaign(
            name="trigger",
            phases=(
                CampaignPhase(
                    name="canary", rate_multiplier=0.2, completion_fraction=0.25
                ),
                CampaignPhase(name="fleet", rate_multiplier=1.0),
            ),
        )
        staged = evaluate_timeline(design_one, (0.0, 720.0), campaign=campaign)
        boundary = staged.phase_starts[1]
        assert math.isfinite(boundary) and boundary > 0
        probe = evaluate_timeline(design_one, (boundary,), campaign=campaign)
        assert 1.0 - probe.unpatched_fraction[0] == pytest.approx(0.25, abs=1e-9)

    def test_trigger_already_satisfied_fires_immediately(self, design_one):
        campaign = PatchCampaign(
            name="instant",
            phases=(
                # at t = 0 the patched fraction is 0, and any fraction is
                # reached "at once" only when the threshold is already met;
                # use a second trigger after a long head start instead.
                CampaignPhase(name="head", rate_multiplier=1.0, duration_hours=5000),
                CampaignPhase(
                    name="check", rate_multiplier=1.0, completion_fraction=0.5
                ),
                CampaignPhase(name="fleet", rate_multiplier=2.0),
            ),
        )
        staged = evaluate_timeline(design_one, (0.0, 720.0), campaign=campaign)
        # after 5000 h well over half the fleet is expected patched, so the
        # trigger fires immediately: phase 3 starts with phase 2.
        assert staged.phase_starts == (0.0, 5000.0, 5000.0)

    def test_never_firing_trigger_zero_multiplier(self, design_one):
        frozen = PatchCampaign(
            name="stall",
            phases=(
                CampaignPhase(
                    name="pause", rate_multiplier=0.0, completion_fraction=0.5
                ),
                CampaignPhase(name="fleet", rate_multiplier=1.0),
            ),
        )
        staged = evaluate_timeline(
            design_one, (0.0, 720.0, 50_000.0), campaign=frozen
        )
        assert staged.phase_starts == (0.0, math.inf)
        assert staged.mean_time_to_completion == math.inf
        # nothing ever patches: no exposure decay, no availability dip
        assert staged.unpatched_fraction == (1.0, 1.0, 1.0)
        assert staged.completion_probability == (0.0, 0.0, 0.0)
        assert staged.coa == (1.0, 1.0, 1.0)

    def test_never_firing_trigger_full_fraction(self, design_one, grid):
        asymptotic = PatchCampaign(
            name="asymptote",
            phases=(
                CampaignPhase(
                    name="all", rate_multiplier=1.0, completion_fraction=1.0
                ),
                CampaignPhase(name="faster", rate_multiplier=4.0),
            ),
        )
        staged = evaluate_timeline(design_one, grid, campaign=asymptotic)
        assert staged.phase_starts == (0.0, math.inf)
        # the never-ending multiplier-1 phase is the stationary process
        plain = evaluate_timeline(design_one, grid)
        assert_curves_identical(plain, staged)

    def test_zero_multiplier_finite_phase_pauses_rollout(self, design_one):
        campaign = PatchCampaign(
            name="pause-resume",
            phases=(
                CampaignPhase(name="pause", rate_multiplier=0.0, duration_hours=100),
                CampaignPhase(name="fleet", rate_multiplier=1.0),
            ),
        )
        plain = evaluate_timeline(design_one, (0.0, 100.0, 820.0))
        staged = evaluate_timeline(
            design_one, (0.0, 100.0, 200.0), campaign=campaign
        )
        # during the pause nothing moves ...
        assert staged.unpatched_fraction[1] == 1.0
        assert staged.coa[1] == 1.0
        # ... afterwards the process is the stationary one, time-shifted
        shifted = evaluate_timeline(design_one, (100.0,))
        assert staged.unpatched_fraction[2] == pytest.approx(
            shifted.unpatched_fraction[0], abs=1e-12
        )
        # the pause adds exactly its duration to the mean completion time
        assert staged.mean_time_to_completion == pytest.approx(
            plain.mean_time_to_completion + 100.0
        )

    def test_throttled_terminal_phase_scales_mean_exactly(self, design_one, grid):
        # MTTA(m * Q) = MTTA(Q) / m: a single half-rate open-ended phase
        # must double the stationary mean completion time exactly.
        half = PatchCampaign(
            name="half", phases=(CampaignPhase(name="slow", rate_multiplier=0.5),)
        )
        plain = evaluate_timeline(design_one, grid)
        staged = evaluate_timeline(design_one, grid, campaign=half)
        assert (
            staged.mean_time_to_completion == 2.0 * plain.mean_time_to_completion
        )

    def test_canary_hosts_throttle_scales_with_design(self, grid):
        campaign = PatchCampaign(
            name="one-at-a-time",
            phases=(CampaignPhase(name="drip", rate_multiplier=1.0, canary_hosts=1),),
        )
        small = evaluate_timeline(
            RedundancyDesign({"dns": 1, "web": 1}), grid, campaign=campaign
        )
        large = evaluate_timeline(
            RedundancyDesign({"dns": 2, "web": 2}), grid, campaign=campaign
        )
        # 1-of-2 vs 1-of-4 concurrency: the large fleet is throttled harder
        assert (
            large.mean_time_to_completion
            > 2 * small.mean_time_to_completion
        )


class TestEngineCampaigns:
    def test_memo_and_disk_cache_distinguish_campaigns(self, grid, tmp_path):
        designs = paper_designs()[:2]
        path = str(tmp_path / "cache.sqlite")
        engine = SweepEngine(cache_path=path)
        plain = engine.timeline(designs, grid)
        misses = engine.cache_info["misses"]
        staged = engine.timeline(designs, grid, campaign=CANARY_THEN_FLEET)
        assert engine.cache_info["misses"] > misses
        for a, b in zip(plain, staged):
            assert a.unpatched_fraction != b.unpatched_fraction
        # a fresh engine over the same sqlite file serves both from disk
        rerun = SweepEngine(cache_path=path)
        again_plain = rerun.timeline(designs, grid)
        again_staged = rerun.timeline(designs, grid, campaign=CANARY_THEN_FLEET)
        assert rerun.cache_info["disk_hits"] == 2 * len(designs)
        for a, b in zip(plain, again_plain):
            assert_curves_identical(a, b)
        for a, b in zip(staged, again_staged):
            assert_curves_identical(a, b)
            assert b.campaign == CANARY_THEN_FLEET

    def test_shared_memory_campaign_byte_identity(self, grid):
        designs = paper_designs()
        reference = SweepEngine(executor="serial").timeline(
            designs, grid, campaign=CANARY_THEN_FLEET
        )
        shared = SweepEngine(
            executor="process", max_workers=2, structure_sharing=True
        ).timeline(designs, grid, campaign=CANARY_THEN_FLEET)
        baseline = SweepEngine(
            executor="process", max_workers=2, structure_sharing=False
        ).timeline(designs, grid, campaign=CANARY_THEN_FLEET)
        for a, b, c in zip(reference, shared, baseline):
            assert_curves_identical(a, b)
            assert_curves_identical(a, c)
            assert a.phase_starts == b.phase_starts == c.phase_starts


class TestPhasePermutationProperty:
    @settings(max_examples=12, deadline=None)
    @given(
        durations=st.lists(
            st.floats(min_value=0.0, max_value=400.0, allow_nan=False),
            min_size=2,
            max_size=4,
        ),
        data=st.data(),
    )
    def test_permuting_identical_phases_leaves_curves_unchanged(
        self, durations, data
    ):
        """Phases that share one multiplier commute: any permutation of
        their durations yields the same piecewise process."""
        design = RedundancyDesign({"dns": 1, "web": 2})
        times = (0.0, 100.0, 400.0, 900.0)
        permutation = data.draw(st.permutations(durations))

        def campaign_for(order):
            phases = tuple(
                CampaignPhase(
                    name="stage", rate_multiplier=0.3, duration_hours=duration
                )
                for duration in order
            ) + (CampaignPhase(name="fleet", rate_multiplier=1.0),)
            return PatchCampaign(name="perm", phases=phases)

        base = evaluate_timeline(design, times, campaign=campaign_for(durations))
        permuted = evaluate_timeline(
            design, times, campaign=campaign_for(permutation)
        )
        np.testing.assert_allclose(
            permuted.unpatched_fraction, base.unpatched_fraction, atol=1e-9
        )
        np.testing.assert_allclose(
            permuted.completion_probability,
            base.completion_probability,
            atol=1e-9,
        )
        np.testing.assert_allclose(permuted.coa, base.coa, atol=1e-9)
        assert permuted.mean_time_to_completion == pytest.approx(
            base.mean_time_to_completion, rel=1e-9, abs=1e-9
        )

"""Tests for the SecurityEvaluator and AvailabilityEvaluator facades."""

from __future__ import annotations

import pytest

from repro.attacktree import PROBABILISTIC
from repro.evaluation import AvailabilityEvaluator, SecurityEvaluator
from repro.harm import PathAggregation
from repro.patching import NoPatchPolicy


class TestSecurityEvaluator:
    def test_before_patch(self, case_study, example_design):
        evaluator = SecurityEvaluator(case_study)
        metrics = evaluator.before_patch(example_design)
        assert metrics.attack_success_probability == 1.0
        assert metrics.number_of_attack_paths == 8

    def test_after_patch(self, case_study, example_design, critical_policy):
        evaluator = SecurityEvaluator(case_study)
        metrics = evaluator.after_patch(example_design, critical_policy)
        assert metrics.number_of_attack_paths == 4

    def test_no_patch_policy_equals_before(
        self, case_study, example_design
    ):
        evaluator = SecurityEvaluator(case_study)
        before = evaluator.before_patch(example_design)
        unpatched = evaluator.after_patch(example_design, NoPatchPolicy())
        assert before.as_dict() == unpatched.as_dict()

    def test_custom_semantics_flow_through(self, case_study, example_design):
        worst = SecurityEvaluator(
            case_study, aggregation=PathAggregation.WORST_CASE
        ).before_patch(example_design)
        independent = SecurityEvaluator(
            case_study, aggregation=PathAggregation.INDEPENDENT_PATHS
        ).before_patch(example_design)
        assert worst.attack_success_probability == 1.0
        assert independent.attack_success_probability == 1.0
        probabilistic = SecurityEvaluator(
            case_study, semantics=PROBABILISTIC
        ).before_patch(example_design)
        assert probabilistic.attack_impact == worst.attack_impact


class TestAvailabilityEvaluator:
    def test_aggregates_cached(self, case_study, critical_policy):
        evaluator = AvailabilityEvaluator(case_study, critical_policy)
        first = evaluator.aggregate("dns")
        second = evaluator.aggregate("dns")
        assert first is second

    def test_coa_matches_closed_form(
        self, availability_evaluator, example_design
    ):
        srn = availability_evaluator.coa(example_design)
        closed = availability_evaluator.coa_closed_form(example_design)
        assert srn == pytest.approx(closed, abs=1e-12)

    def test_system_availability_at_least_coa(
        self, availability_evaluator, example_design
    ):
        coa = availability_evaluator.coa(example_design)
        system = availability_evaluator.system_availability(example_design)
        assert system >= coa

    def test_policy_changes_rates(self, case_study, critical_policy):
        from repro.patching import PatchAllPolicy

        critical_only = AvailabilityEvaluator(case_study, critical_policy)
        patch_all = AvailabilityEvaluator(case_study, PatchAllPolicy())
        # patching everything takes longer per cycle -> slower recovery
        assert (
            patch_all.aggregate("web").recovery_rate
            < critical_only.aggregate("web").recovery_rate
        )

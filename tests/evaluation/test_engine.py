"""Unit tests for the sweep engine (caching, chunking, executors)."""

from __future__ import annotations

import pytest

from repro.enterprise import RedundancyDesign
from repro.errors import EvaluationError
from repro.evaluation import (
    SerialExecutor,
    SweepEngine,
    enumerate_designs,
    evaluate_designs,
    pareto_front,
    sweep_designs,
)
from repro.evaluation.engine import (
    ProcessExecutor,
    ThreadExecutor,
    _evaluate_chunk,
)


def _total_servers(design):
    """Module-level so it pickles across the process boundary."""
    return design.total_servers


class RecordingExecutor(SerialExecutor):
    """Serial executor that remembers how many batches it ran."""

    name = "recording"

    def __init__(self):
        self.batches_run = 0

    def run(self, fn, batches):
        self.batches_run += len(batches)
        return super().run(fn, batches)


@pytest.fixture(scope="module")
def small_space():
    return list(enumerate_designs(["dns", "web"], max_replicas=2))


class TestSweepEngine:
    def test_evaluate_preserves_input_order(self, small_space):
        engine = SweepEngine()
        shuffled = list(reversed(small_space))
        evaluations = engine.evaluate(shuffled)
        assert [e.design for e in evaluations] == shuffled

    def test_duplicates_evaluated_once(self, small_space):
        engine = SweepEngine()
        doubled = small_space + small_space
        evaluations = engine.evaluate(doubled)
        assert len(evaluations) == len(doubled)
        assert engine.cache_info["size"] == len(small_space)
        # The two halves are the same cached objects.
        assert evaluations[0] is evaluations[len(small_space)]

    def test_cache_hits_and_clear(self, small_space):
        engine = SweepEngine()
        engine.evaluate(small_space)
        misses = engine.cache_info["misses"]
        engine.evaluate(small_space)
        assert engine.cache_info["misses"] == misses
        assert engine.cache_info["hits"] >= len(small_space)
        engine.clear_cache()
        assert engine.cache_info == {"hits": 0, "misses": 0, "size": 0}

    def test_cached_designs_skip_executor(self, small_space):
        executor = RecordingExecutor()
        engine = SweepEngine(executor=executor)
        engine.evaluate(small_space)
        ran = executor.batches_run
        engine.evaluate(small_space)
        assert executor.batches_run == ran

    def test_sweep_matches_enumerate_plus_evaluate(self):
        engine = SweepEngine()
        swept = engine.sweep(["dns", "web"], max_replicas=2, max_total=3)
        manual = engine.evaluate(
            enumerate_designs(["dns", "web"], max_replicas=2, max_total=3)
        )
        assert swept == manual

    def test_pareto_delegates_to_pareto_front(self, small_space):
        engine = SweepEngine()
        evaluations = engine.evaluate(small_space)
        assert engine.pareto(evaluations) == pareto_front(evaluations)

    def test_map_is_ordered(self, small_space):
        engine = SweepEngine(chunk_size=3)
        totals = engine.map(_total_servers, small_space)
        assert totals == [design.total_servers for design in small_space]

    def test_map_through_process_pool(self, small_space):
        engine = SweepEngine(
            executor="process", max_workers=2, chunk_size=1
        )
        totals = engine.map(_total_servers, small_space)
        assert totals == [design.total_servers for design in small_space]

    def test_unknown_executor_rejected(self):
        with pytest.raises(EvaluationError):
            SweepEngine(executor="greenlet")

    def test_thread_executor_matches_serial(self, small_space):
        serial = SweepEngine().evaluate(small_space)
        threaded = SweepEngine(
            executor="thread", max_workers=2, chunk_size=1
        ).evaluate(small_space)
        assert serial == threaded

    def test_custom_executor_instance_accepted(self, small_space):
        executor = RecordingExecutor()
        engine = SweepEngine(executor=executor)
        engine.evaluate(small_space)
        assert executor.batches_run >= 1

    def test_executor_instance_with_max_workers_rejected(self):
        with pytest.raises(EvaluationError):
            SweepEngine(executor=ThreadExecutor(), max_workers=2)

    def test_serial_with_max_workers_rejected(self):
        with pytest.raises(EvaluationError):
            SweepEngine(executor="serial", max_workers=2)

    def test_chunking_covers_all_items(self):
        engine = SweepEngine(chunk_size=3)
        chunks = engine._chunks(list(range(10)))
        assert [len(c) for c in chunks] == [3, 3, 3, 1]
        assert [x for chunk in chunks for x in chunk] == list(range(10))


class TestModuleLevelApi:
    def test_evaluate_designs_executor_kwarg(self, small_space, case_study, critical_policy):
        serial = evaluate_designs(
            small_space, case_study=case_study, policy=critical_policy
        )
        parallel = evaluate_designs(
            small_space,
            case_study=case_study,
            policy=critical_policy,
            executor="process",
            max_workers=2,
        )
        assert serial == parallel

    def test_sweep_designs_executor_kwarg(self, small_space, case_study, critical_policy):
        default = sweep_designs(case_study, critical_policy, small_space)
        engine_run = sweep_designs(
            case_study, critical_policy, small_space, executor="serial"
        )
        assert default == engine_run

    def test_chunk_worker_matches_serial(self, small_space, case_study, critical_policy):
        chunked = _evaluate_chunk(case_study, critical_policy, None, small_space)
        assert chunked == evaluate_designs(
            small_space, case_study=case_study, policy=critical_policy
        )


class TestProcessExecutor:
    def test_single_batch_avoids_pool(self):
        executor = ProcessExecutor(max_workers=2)
        # A lambda is not picklable: it only works because a single batch
        # short-circuits to an in-process call.
        assert executor.run(lambda x: x + 1, [(41,)]) == [42]

    def test_empty_batches(self):
        assert ProcessExecutor(max_workers=2).run(_total_servers, []) == []

    def test_invalid_workers(self):
        with pytest.raises(Exception):
            ProcessExecutor(max_workers=0)

    def test_default_workers_positive(self):
        assert ProcessExecutor().max_workers >= 1


class TestThreadExecutor:
    def test_ordered_results(self):
        executor = ThreadExecutor(max_workers=4)
        batches = [(value,) for value in range(20)]
        assert executor.run(lambda value: value * 2, batches) == [
            value * 2 for value in range(20)
        ]

    def test_closures_allowed(self):
        # No pickling boundary: closures and lambdas are fine.
        offset = 10
        executor = ThreadExecutor(max_workers=2)
        assert executor.run(lambda x: x + offset, [(1,), (2,)]) == [11, 12]

    def test_empty_batches(self):
        assert ThreadExecutor(max_workers=2).run(_total_servers, []) == []

    def test_invalid_workers(self):
        with pytest.raises(Exception):
            ThreadExecutor(max_workers=0)

    def test_default_workers_positive(self):
        assert ThreadExecutor().max_workers >= 1


class TestEngineDefaults:
    def test_defaults_to_paper_case_study(self):
        engine = SweepEngine()
        evaluations = engine.evaluate(
            [RedundancyDesign({"dns": 1, "web": 1, "app": 1, "db": 1})]
        )
        assert evaluations[0].after.coa == pytest.approx(0.995614, abs=5e-4)

"""Unit tests for the sweep engine (caching, chunking, executors)."""

from __future__ import annotations

import pytest

from repro.enterprise import RedundancyDesign
from repro.errors import EvaluationError
from repro.evaluation import (
    SerialExecutor,
    SweepEngine,
    enumerate_designs,
    evaluate_designs,
    pareto_front,
    sweep_designs,
)
from repro.evaluation.engine import (
    ProcessExecutor,
    ThreadExecutor,
    _evaluate_chunk,
)


def _total_servers(design):
    """Module-level so it pickles across the process boundary."""
    return design.total_servers


class RecordingExecutor(SerialExecutor):
    """Serial executor that remembers how many batches it ran."""

    name = "recording"

    def __init__(self):
        self.batches_run = 0

    def run(self, fn, batches):
        self.batches_run += len(batches)
        return super().run(fn, batches)


@pytest.fixture(scope="module")
def small_space():
    return list(enumerate_designs(["dns", "web"], max_replicas=2))


class TestSweepEngine:
    def test_evaluate_preserves_input_order(self, small_space):
        engine = SweepEngine()
        shuffled = list(reversed(small_space))
        evaluations = engine.evaluate(shuffled)
        assert [e.design for e in evaluations] == shuffled

    def test_duplicates_evaluated_once(self, small_space):
        engine = SweepEngine()
        doubled = small_space + small_space
        evaluations = engine.evaluate(doubled)
        assert len(evaluations) == len(doubled)
        assert engine.cache_info["size"] == len(small_space)
        # The two halves are the same cached objects.
        assert evaluations[0] is evaluations[len(small_space)]

    def test_cache_hits_and_clear(self, small_space):
        engine = SweepEngine()
        engine.evaluate(small_space)
        misses = engine.cache_info["misses"]
        engine.evaluate(small_space)
        assert engine.cache_info["misses"] == misses
        assert engine.cache_info["hits"] >= len(small_space)
        engine.clear_cache()
        assert engine.cache_info == {"hits": 0, "misses": 0, "size": 0}

    def test_cached_designs_skip_executor(self, small_space):
        executor = RecordingExecutor()
        engine = SweepEngine(executor=executor)
        engine.evaluate(small_space)
        ran = executor.batches_run
        engine.evaluate(small_space)
        assert executor.batches_run == ran

    def test_sweep_matches_enumerate_plus_evaluate(self):
        engine = SweepEngine()
        swept = engine.sweep(["dns", "web"], max_replicas=2, max_total=3)
        manual = engine.evaluate(
            enumerate_designs(["dns", "web"], max_replicas=2, max_total=3)
        )
        assert swept == manual

    def test_pareto_delegates_to_pareto_front(self, small_space):
        engine = SweepEngine()
        evaluations = engine.evaluate(small_space)
        assert engine.pareto(evaluations) == pareto_front(evaluations)

    def test_map_is_ordered(self, small_space):
        engine = SweepEngine(chunk_size=3)
        totals = engine.map(_total_servers, small_space)
        assert totals == [design.total_servers for design in small_space]

    def test_map_through_process_pool(self, small_space):
        engine = SweepEngine(
            executor="process", max_workers=2, chunk_size=1
        )
        totals = engine.map(_total_servers, small_space)
        assert totals == [design.total_servers for design in small_space]

    def test_unknown_executor_rejected(self):
        with pytest.raises(EvaluationError):
            SweepEngine(executor="greenlet")

    def test_thread_executor_matches_serial(self, small_space):
        serial = SweepEngine().evaluate(small_space)
        threaded = SweepEngine(
            executor="thread", max_workers=2, chunk_size=1
        ).evaluate(small_space)
        assert serial == threaded

    def test_custom_executor_instance_accepted(self, small_space):
        executor = RecordingExecutor()
        engine = SweepEngine(executor=executor)
        engine.evaluate(small_space)
        assert executor.batches_run >= 1

    def test_executor_instance_with_max_workers_rejected(self):
        with pytest.raises(EvaluationError):
            SweepEngine(executor=ThreadExecutor(), max_workers=2)

    def test_serial_with_max_workers_rejected(self):
        with pytest.raises(EvaluationError):
            SweepEngine(executor="serial", max_workers=2)

    def test_chunking_covers_all_items(self):
        engine = SweepEngine(chunk_size=3)
        chunks = engine._chunks(list(range(10)))
        assert [len(c) for c in chunks] == [3, 3, 3, 1]
        assert [x for chunk in chunks for x in chunk] == list(range(10))


class TestModuleLevelApi:
    def test_evaluate_designs_executor_kwarg(self, small_space, case_study, critical_policy):
        serial = evaluate_designs(
            small_space, case_study=case_study, policy=critical_policy
        )
        parallel = evaluate_designs(
            small_space,
            case_study=case_study,
            policy=critical_policy,
            executor="process",
            max_workers=2,
        )
        assert serial == parallel

    def test_sweep_designs_executor_kwarg(self, small_space, case_study, critical_policy):
        default = sweep_designs(case_study, critical_policy, small_space)
        engine_run = sweep_designs(
            case_study, critical_policy, small_space, executor="serial"
        )
        assert default == engine_run

    def test_chunk_worker_matches_serial(self, small_space, case_study, critical_policy):
        chunked = _evaluate_chunk(case_study, critical_policy, None, small_space)
        assert chunked == evaluate_designs(
            small_space, case_study=case_study, policy=critical_policy
        )


class TestProcessExecutor:
    def test_single_batch_avoids_pool(self):
        executor = ProcessExecutor(max_workers=2)
        # A lambda is not picklable: it only works because a single batch
        # short-circuits to an in-process call.
        assert executor.run(lambda x: x + 1, [(41,)]) == [42]

    def test_empty_batches(self):
        assert ProcessExecutor(max_workers=2).run(_total_servers, []) == []

    def test_invalid_workers(self):
        with pytest.raises(Exception):
            ProcessExecutor(max_workers=0)

    def test_default_workers_positive(self):
        assert ProcessExecutor().max_workers >= 1


class TestThreadExecutor:
    def test_ordered_results(self):
        executor = ThreadExecutor(max_workers=4)
        batches = [(value,) for value in range(20)]
        assert executor.run(lambda value: value * 2, batches) == [
            value * 2 for value in range(20)
        ]

    def test_closures_allowed(self):
        # No pickling boundary: closures and lambdas are fine.
        offset = 10
        executor = ThreadExecutor(max_workers=2)
        assert executor.run(lambda x: x + offset, [(1,), (2,)]) == [11, 12]

    def test_empty_batches(self):
        assert ThreadExecutor(max_workers=2).run(_total_servers, []) == []

    def test_invalid_workers(self):
        with pytest.raises(Exception):
            ThreadExecutor(max_workers=0)

    def test_default_workers_positive(self):
        assert ThreadExecutor().max_workers >= 1


class TestEngineDefaults:
    def test_defaults_to_paper_case_study(self):
        engine = SweepEngine()
        evaluations = engine.evaluate(
            [RedundancyDesign({"dns": 1, "web": 1, "app": 1, "db": 1})]
        )
        assert evaluations[0].after.coa == pytest.approx(0.995614, abs=5e-4)


class TestPersistentExecutors:
    def test_thread_pool_reused_across_runs(self):
        executor = ThreadExecutor(max_workers=2, persistent=True)
        try:
            assert executor.run(lambda x: x + 1, [(41,)]) == [42]
            first_pool = executor._pool
            assert first_pool is not None  # even a single batch warms it
            assert executor.run(lambda x: x * 2, [(21,)]) == [42]
            assert executor._pool is first_pool
        finally:
            executor.close()
        assert executor._pool is None

    def test_close_is_idempotent_and_context_manager(self):
        with ThreadExecutor(max_workers=2, persistent=True) as executor:
            assert executor.run(lambda: 7, [()]) == [7]
        executor.close()
        assert executor._pool is None

    def test_prime_key_change_recycles_pool(self):
        executor = ThreadExecutor(max_workers=2, persistent=True)
        try:
            executor.run_with_initializer(
                lambda x: x, [(1,)], initializer=str, initargs=("a",), key="a"
            )
            first_pool = executor._pool
            executor.run_with_initializer(
                lambda x: x, [(2,)], initializer=str, initargs=("a",), key="a"
            )
            assert executor._pool is first_pool  # same key: stays warm
            executor.run_with_initializer(
                lambda x: x, [(3,)], initializer=str, initargs=("b",), key="b"
            )
            assert executor._pool is not first_pool  # new key: recycled
        finally:
            executor.close()

    def test_process_pool_recycles_after_killed_worker(self):
        import os
        import signal

        executor = ProcessExecutor(max_workers=1, persistent=True)
        try:
            designs = [RedundancyDesign({"dns": 1})]
            assert executor.run(_total_servers, [(d,) for d in designs]) == [1]
            pid = next(iter(executor._pool._processes))
            os.kill(pid, signal.SIGKILL)
            # The broken pool is respawned and the dispatch retried once.
            assert executor.run(_total_servers, [(d,) for d in designs]) == [1]
            assert executor.recycle_count == 1
        finally:
            executor.close()


class TestWarmEngine:
    def test_warm_sweep_byte_identical_to_cold(self, small_space):
        cold = SweepEngine(executor="process").evaluate(small_space)
        with SweepEngine(executor=ProcessExecutor(persistent=True)) as engine:
            warm_first = engine.evaluate(small_space)
            engine.clear_cache()
            warm_second = engine.evaluate(small_space)
        for a, b, c in zip(cold, warm_first, warm_second):
            assert a.after.coa.hex() == b.after.coa.hex() == c.after.coa.hex()
            assert a.before.coa.hex() == b.before.coa.hex() == c.before.coa.hex()
            assert a.after.security.as_dict() == b.after.security.as_dict()

    def test_warm_context_reused_for_covered_spaces(self, small_space):
        with SweepEngine(executor=ProcessExecutor(persistent=True)) as engine:
            engine.evaluate(small_space)
            context = engine._warm_context
            assert context is not None
            segment_name = context.segment_name
            engine.clear_cache()
            engine.evaluate(small_space[:2])  # subset: no rebuild
            assert engine._warm_context is context
            engine.evaluate(
                list(enumerate_designs(["dns", "web", "app"], max_replicas=2))
            )
            rebuilt = engine._warm_context
            assert rebuilt is not context  # new role: rebuilt (old unlinked)
            assert rebuilt.segment_name != segment_name
            assert context.segment is None  # superseded segment released
        assert engine._warm_context is None  # close() released the segment


class TestBatchLabelTruncation:
    def test_large_batches_elide_labels(self):
        from repro.evaluation.engine import _MAX_BATCH_LABELS, _batch_labels

        designs = list(
            enumerate_designs(["dns", "web", "app", "db"], max_replicas=2)
        )
        assert len(designs) > _MAX_BATCH_LABELS
        text = _batch_labels((designs,))
        assert f"… and {len(designs) - _MAX_BATCH_LABELS} more" in text
        listed = text.split(" (designs: ")[1]
        assert listed.count(" DNS ") == _MAX_BATCH_LABELS

    def test_small_batches_fully_listed(self, small_space):
        from repro.evaluation.engine import _batch_labels

        text = _batch_labels((small_space,))
        assert "more" not in text
        for design in small_space:
            assert design.label in text

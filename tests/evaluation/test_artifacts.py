"""Tests for the experiment-bundle writer."""

from __future__ import annotations

import pytest

from repro.evaluation.artifacts import write_experiment_bundle


@pytest.fixture(scope="module")
def bundle(tmp_path_factory, case_study, critical_policy):
    directory = tmp_path_factory.mktemp("bundle")
    paths = write_experiment_bundle(
        directory, case_study=case_study, policy=critical_policy
    )
    return directory, paths


class TestBundle:
    def test_ten_artifacts_written(self, bundle):
        _, paths = bundle
        assert len(paths) == 10
        for path in paths:
            assert path.exists()
            assert path.stat().st_size > 0

    def test_expected_files(self, bundle):
        directory, _ = bundle
        names = {p.name for p in directory.iterdir()}
        assert "table2_security_metrics.txt" in names
        assert "table5_aggregated_rates.txt" in names
        assert "design_comparison.csv" in names
        assert "design_selections.txt" in names

    def test_headers_name_the_experiment(self, bundle):
        directory, _ = bundle
        text = (directory / "table2_security_metrics.txt").read_text()
        assert text.startswith("# Table II")

    def test_selections_content(self, bundle):
        directory, _ = bundle
        text = (directory / "design_selections.txt").read_text()
        assert "Eq.3 region 1: 1 DNS + 1 WEB + 2 APP + 1 DB" in text
        assert "Eq.4 region 2: 2 DNS + 1 WEB + 1 APP + 1 DB" in text

    def test_coa_value_present(self, bundle):
        directory, _ = bundle
        text = (directory / "table6_coa.txt").read_text()
        assert "0.99707" in text

    def test_csv_parses(self, bundle):
        directory, _ = bundle
        lines = [
            line
            for line in (directory / "design_comparison.csv")
            .read_text()
            .splitlines()
            if line
        ]
        # header comment, CSV header, five design rows
        assert len(lines) == 7
        assert lines[1] == "design,AIM,ASP,NoEV,NoAP,NoEP,COA"

    def test_idempotent_overwrite(self, bundle, case_study, critical_policy):
        directory, _ = bundle
        again = write_experiment_bundle(
            directory, case_study=case_study, policy=critical_policy
        )
        assert len(again) == 10

"""Tests for the COA sensitivity analysis."""

from __future__ import annotations

import pytest

from repro.errors import EvaluationError
from repro.evaluation import coa_sensitivity
from repro.evaluation.sensitivity import PARAMETERS


@pytest.fixture(scope="module")
def tornado(case_study, example_design, critical_policy):
    return coa_sensitivity(case_study, example_design, critical_policy)


class TestTornado:
    def test_all_parameters_scanned(self, tornado):
        assert {entry.parameter for entry in tornado} == set(PARAMETERS)

    def test_sorted_by_swing(self, tornado):
        swings = [entry.swing for entry in tornado]
        assert swings == sorted(swings, reverse=True)

    def test_patch_interval_dominates(self, tornado):
        """The patch cadence is the biggest availability lever."""
        assert tornado[0].parameter == "patch_interval"

    def test_longer_interval_raises_coa(self, tornado):
        entry = next(e for e in tornado if e.parameter == "patch_interval")
        assert entry.coa_high > entry.coa_baseline > entry.coa_low

    def test_longer_patches_lower_coa(self, tornado):
        entry = next(e for e in tornado if e.parameter == "patch_durations")
        assert entry.coa_high < entry.coa_baseline < entry.coa_low

    def test_failure_rates_do_not_move_coa(self, tornado):
        """The upper-layer model captures patch downtime only, so the
        component failure rates barely touch COA (they enter only via
        the Eq. 2 ratio)."""
        for name in ("software_failure_rate", "hardware_failure_rate"):
            entry = next(e for e in tornado if e.parameter == name)
            assert entry.swing < 1e-4

    def test_baseline_matches_paper(self, tornado):
        for entry in tornado:
            assert entry.coa_baseline == pytest.approx(0.99707, abs=5e-6)


class TestInterface:
    def test_subset_of_parameters(self, case_study, example_design, critical_policy):
        entries = coa_sensitivity(
            case_study,
            example_design,
            critical_policy,
            parameters=["patch_interval"],
        )
        assert [entry.parameter for entry in entries] == ["patch_interval"]

    def test_unknown_parameter_rejected(
        self, case_study, example_design, critical_policy
    ):
        with pytest.raises(EvaluationError):
            coa_sensitivity(
                case_study, example_design, critical_policy, parameters=["ghost"]
            )

    def test_bad_factors_rejected(self, case_study, example_design, critical_policy):
        with pytest.raises(EvaluationError):
            coa_sensitivity(
                case_study, example_design, critical_policy, low=0.0
            )

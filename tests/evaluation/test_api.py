"""Tests for the canonical request/response schema module."""

from __future__ import annotations

import json

import pytest

from repro.errors import ValidationError
from repro.evaluation import api
from repro.evaluation.sweep import enumerate_designs, pareto_front


class TestErrorEnvelope:
    def test_shape_and_default_detail(self):
        payload = api.error_payload(api.ERROR_SATURATED, "busy")
        assert payload == {
            "error": {"code": "saturated", "message": "busy", "detail": {}}
        }

    def test_detail_passthrough(self):
        payload = api.error_payload(
            api.ERROR_DEADLINE_EXCEEDED, "late", {"deadline_ms": 5.0}
        )
        assert payload["error"]["detail"] == {"deadline_ms": 5.0}


class TestSpaceSpec:
    def test_defaults(self):
        space = api.SpaceSpec.from_payload({})
        assert space.roles == ("dns", "web", "app", "db")
        assert space.max_replicas == 2
        assert space.max_total is None
        assert space.variants is False
        assert space.scaled is None
        assert space.context_label() == "default"

    def test_comma_string_roles(self):
        space = api.SpaceSpec.from_payload({"roles": "dns, web,dns"})
        assert space.roles == ("dns", "web")

    def test_scaled_string_and_list(self):
        for value in ("3x2", [3, 2]):
            space = api.SpaceSpec.from_payload({"scaled": value})
            assert space.scaled == (3, 2)
            assert space.context_label() == "scaled:3x2"

    def test_scaled_excludes_variants(self):
        with pytest.raises(ValidationError, match="mutually exclusive"):
            api.SpaceSpec.from_payload({"scaled": "3x2", "variants": True})

    def test_round_trip(self):
        space = api.SpaceSpec.from_payload(
            {"roles": ["dns"], "max_replicas": 3, "scaled": "2x2"}
        )
        assert api.SpaceSpec.from_payload(space.to_payload()) == space


class TestRequests:
    def test_legacy_sweep_rejects_v1_fields(self):
        with pytest.raises(ValidationError, match="unknown sweep"):
            api.SweepRequest.from_payload({"space": {}}, legacy=True)
        with pytest.raises(ValidationError, match="unknown sweep"):
            api.SweepRequest.from_payload({"scaled": "3x2"}, legacy=True)

    def test_v1_sweep_envelope(self):
        request = api.SweepRequest.from_payload(
            {
                "space": {"roles": ["dns", "web"], "max_replicas": 3},
                "options": {"max_designs": 5, "shard": {"index": 1, "count": 2}},
                "priority": "batch",
                "deadline_ms": 1500,
                "stream": True,
            }
        )
        assert request.space.roles == ("dns", "web")
        assert request.max_designs == 5
        assert request.shard == api.ShardSpec(index=1, count=2)
        assert request.priority == "batch"
        assert request.deadline_ms == 1500.0
        assert request.stream is True

    def test_v1_sweep_rejects_timeline_options(self):
        with pytest.raises(ValidationError, match="unknown options"):
            api.SweepRequest.from_payload(
                {"space": {}, "options": {"horizon": 100}}
            )

    def test_v1_timeline_options(self):
        request = api.TimelineRequest.from_payload(
            {
                "space": {"roles": ["dns"]},
                "options": {
                    "horizon": 100,
                    "points": 4,
                    "phases": "canary:0.1:48,fleet:1.0",
                    "method": "adaptive",
                },
            }
        )
        assert len(request.times) == 4
        assert request.campaign is not None
        assert request.method == "adaptive"
        assert "campaign:" in request.context_label()

    def test_canonical_ignores_transport_fields(self):
        base = {"space": {"roles": ["dns"]}}
        plain = api.SweepRequest.from_payload(base)
        tweaked = api.SweepRequest.from_payload(
            {**base, "priority": "batch", "deadline_ms": 1000}
        )
        # priority/deadline change how a request runs, not what it
        # computes — deadline uniqueness is added by the service layer.
        assert plain.canonical() == tweaked.canonical()

    def test_shard_changes_canonical(self):
        plain = api.SweepRequest.from_payload({"space": {"roles": ["dns"]}})
        sharded = api.SweepRequest.from_payload(
            {
                "space": {"roles": ["dns"]},
                "options": {"shard": {"index": 0, "count": 2}},
            }
        )
        assert plain.canonical() != sharded.canonical()

    def test_to_payload_round_trip(self):
        request = api.TimelineRequest.from_payload(
            {
                "space": {"roles": ["dns"], "max_replicas": 2},
                "options": {"times": [1.0, 2.0], "method": "krylov"},
                "priority": "batch",
            }
        )
        again = api.TimelineRequest.from_payload(request.to_payload())
        assert again == request

    def test_invalid_shard_specs(self):
        for value in ({"index": 2, "count": 2}, {"count": 2, "extra": 1}, {"index": 0}):
            with pytest.raises(ValidationError):
                api.ShardSpec.from_payload(value)


class TestSharding:
    def test_shard_of_partitions_and_is_stable(self):
        designs = list(
            enumerate_designs(["dns", "web", "app"], max_replicas=3)
        )
        assignment = [api.shard_of(d, 3) for d in designs]
        assert assignment == [api.shard_of(d, 3) for d in designs]
        assert set(assignment) <= {0, 1, 2}
        # All shards together cover the space exactly once.
        specs = [api.ShardSpec(index=i, count=3) for i in range(3)]
        owned = [sum(spec.owns(d) for spec in specs) for d in designs]
        assert owned == [1] * len(designs)

    def test_two_way_split_is_nontrivial_on_27_designs(self):
        designs = list(
            enumerate_designs(["dns", "web", "app"], max_replicas=3)
        )
        first = [d for d in designs if api.shard_of(d, 2) == 0]
        assert 0 < len(first) < len(designs)


class TestResponses:
    def test_sweep_response_schema_version_and_order(self):
        from repro.evaluation import SweepEngine

        designs = list(enumerate_designs(["dns"], max_replicas=2))
        evaluations = SweepEngine().evaluate(designs)
        payload = api.sweep_response(["dns"], 2, None, False, "serial", evaluations)
        assert list(payload) == [
            "schema_version",
            "roles",
            "max_replicas",
            "max_total",
            "variants",
            "executor",
            "design_count",
            "designs",
        ]
        assert payload["schema_version"] == api.SCHEMA_VERSION == 3
        assert payload["design_count"] == len(designs)
        round_tripped = api.SweepResponse.from_payload(payload).to_payload()
        assert round_tripped == payload

    def test_pareto_flags_match_pareto_front(self):
        from repro.evaluation import SweepEngine

        designs = list(
            enumerate_designs(["dns", "web", "app"], max_replicas=3)
        )
        engine = SweepEngine()
        evaluations = engine.evaluate(designs)
        payload = api.sweep_response(
            ["dns", "web", "app"], 3, None, False, "serial", evaluations
        )
        front = {id(e) for e in pareto_front(evaluations, after_patch=True)}
        expected = [id(e) in front for e in evaluations]
        wire = json.loads(json.dumps(payload))
        assert api.pareto_flags(wire["designs"]) == expected
        assert [d["pareto"] for d in wire["designs"]] == expected

    def test_pareto_flags_empty(self):
        assert api.pareto_flags([]) == []

    def test_canonical_json_is_order_independent(self):
        a = api.canonical_json({"b": 1, "a": 2})
        b = api.canonical_json({"a": 2, "b": 1})
        assert a == b

"""Tests for report tables and chart data."""

from __future__ import annotations

import pytest

from repro.errors import EvaluationError
from repro.evaluation.charts import (
    RADAR_METRICS,
    radar_data,
    render_radar_table,
    render_scatter,
    scatter_data,
    to_csv,
)
from repro.evaluation.report import (
    aggregated_rates_table,
    design_comparison_table,
    format_table,
    security_metrics_table,
    vulnerability_table,
)
from repro.evaluation.security import SecurityEvaluator


class TestFormatTable:
    def test_alignment(self):
        text = format_table(("a", "long"), [("x", 1), ("yy", 22)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a ")
        assert all(len(line) <= len(lines[0]) + 6 for line in lines)


class TestReportTables:
    def test_vulnerability_table_lists_table_i(self, case_study):
        text = vulnerability_table(case_study)
        assert "CVE-2016-3227" in text
        assert "CVE-2016-6662" in text
        assert "critical" in text

    def test_security_metrics_table(self, case_study, example_design, critical_policy):
        evaluator = SecurityEvaluator(case_study)
        text = security_metrics_table(
            evaluator.before_patch(example_design),
            evaluator.after_patch(example_design, critical_policy),
        )
        assert "52.2" in text
        assert "42.2" in text
        assert "before patch" in text

    def test_aggregated_rates_table(self, availability_evaluator, example_design):
        aggregates = availability_evaluator.aggregates_for(example_design)
        text = aggregated_rates_table(aggregates)
        assert "720" in text
        assert "1.71" in text  # web recovery rate

    def test_design_comparison_table(self, design_evaluations):
        text = design_comparison_table(design_evaluations)
        assert "1 DNS + 1 WEB + 2 APP + 1 DB" in text
        assert "COA" in text


class TestScatter:
    def test_scatter_points(self, design_evaluations):
        points = scatter_data(design_evaluations, after_patch=True)
        assert len(points) == 5
        assert all(0.0 <= p.asp <= 1.0 for p in points)

    def test_before_patch_asp_is_one(self, design_evaluations):
        points = scatter_data(design_evaluations, after_patch=False)
        assert all(p.asp == 1.0 for p in points)

    def test_render_scatter_contains_markers(self, design_evaluations):
        text = render_scatter(scatter_data(design_evaluations))
        for marker in "ABCDE":
            assert marker in text

    def test_render_empty_rejected(self):
        with pytest.raises(EvaluationError):
            render_scatter([])


class TestRadar:
    def test_radar_axes(self, design_evaluations):
        series = radar_data(design_evaluations)
        assert len(series) == 5
        for entry in series:
            assert set(entry.values) == set(RADAR_METRICS)
            for metric, value in entry.normalised.items():
                assert 0.0 <= value <= 1.0, metric

    def test_constant_axis_normalises_to_one(self, design_evaluations):
        series = radar_data(design_evaluations, after_patch=True)
        # AIM is 42.2 for every design after patch
        assert all(entry.normalised["AIM"] == 1.0 for entry in series)

    def test_radar_table_rendering(self, design_evaluations):
        text = render_radar_table(radar_data(design_evaluations))
        assert "NoEV" in text
        assert "2 DNS + 1 WEB + 1 APP + 1 DB" in text

    def test_empty_rejected(self):
        with pytest.raises(EvaluationError):
            radar_data([])


class TestCsv:
    def test_csv_shape(self, design_evaluations):
        text = to_csv(design_evaluations)
        lines = text.strip().splitlines()
        assert lines[0] == "design,AIM,ASP,NoEV,NoAP,NoEP,COA"
        assert len(lines) == 6
        assert lines[1].startswith('"1 DNS + 1 WEB + 1 APP + 1 DB",')

"""Tests for the shard coordinator (``repro shard``)."""

from __future__ import annotations

import json
import socket

import pytest

from repro.errors import EvaluationError, ValidationError
from repro.evaluation import SweepEngine, enumerate_designs
from repro.evaluation.api import sweep_response, timeline_response
from repro.evaluation.service import EvaluationService
from repro.evaluation.sharding import ShardCoordinator, parse_endpoint
from repro.resilience.retry import RetryPolicy


@pytest.fixture(scope="module")
def shard_services(tmp_path_factory):
    """Two serial services sharing one sqlite cache (the result tier)."""
    cache = tmp_path_factory.mktemp("shards") / "shared.sqlite"
    services = [
        EvaluationService(
            executor="serial", max_designs=64, cache_path=str(cache)
        )
        for _ in range(2)
    ]
    clients = [service.start_in_thread() for service in services]
    yield services, clients
    for service in services:
        service.close()


def _endpoints(services):
    return [f"{s.address[0]}:{s.address[1]}" for s in services]


class TestParseEndpoint:
    def test_host_port(self):
        assert parse_endpoint("10.0.0.1:9000") == ("10.0.0.1", 9000)

    def test_bare_port_defaults_host(self):
        assert parse_endpoint("8351") == ("127.0.0.1", 8351)

    def test_invalid(self):
        for text in ("nope", "host:0", "host:notaport"):
            with pytest.raises(ValidationError):
                parse_endpoint(text)


class TestMerge:
    def test_sharded_sweep_is_byte_identical_to_single_engine(
        self, shard_services
    ):
        services, _ = shard_services
        roles = ["dns", "web", "app"]
        coordinator = ShardCoordinator(_endpoints(services))
        merged = coordinator.sweep(roles=roles, max_replicas=3)
        designs = list(enumerate_designs(roles, max_replicas=3))
        expected = sweep_response(
            roles, 3, None, False, "serial", SweepEngine().evaluate(designs)
        )
        assert json.dumps(merged, indent=2) == json.dumps(
            json.loads(json.dumps(expected)), indent=2
        )
        assert merged["design_count"] == 27

    def test_sharded_timeline_is_byte_identical_to_single_engine(
        self, shard_services
    ):
        from repro.evaluation.timeline import default_time_grid
        from repro.patching.campaign import PatchCampaign

        services, _ = shard_services
        coordinator = ShardCoordinator(_endpoints(services))
        merged = coordinator.timeline(
            roles=["dns", "web"],
            max_replicas=2,
            horizon=100,
            points=4,
            phases="canary:0.1:48,fleet:1.0",
        )
        times = default_time_grid(100.0, 4)
        campaign = PatchCampaign.parse("canary:0.1:48,fleet:1.0")
        designs = list(enumerate_designs(["dns", "web"], max_replicas=2))
        timelines = SweepEngine().timeline(designs, times, campaign=campaign)
        expected = timeline_response(
            ["dns", "web"], 2, None, False, "serial", campaign, times, timelines
        )
        assert json.dumps(merged, indent=2) == json.dumps(
            json.loads(json.dumps(expected)), indent=2
        )

    def test_single_endpoint_degenerates_to_plain_request(self, shard_services):
        services, clients = shard_services
        coordinator = ShardCoordinator(_endpoints(services)[:1])
        merged = coordinator.sweep(roles=["dns"], max_replicas=2)
        direct = clients[0].sweep(roles=["dns"], max_replicas=2)
        assert merged == direct

    def test_pareto_front_is_global_not_per_shard(self, shard_services):
        """A shard-local front is too generous; the merge must re-rank."""
        services, clients = shard_services
        roles = ["dns", "web", "app"]
        coordinator = ShardCoordinator(_endpoints(services))
        merged = coordinator.sweep(roles=roles, max_replicas=3)
        per_shard_front = 0
        for index in range(2):
            part = clients[0].sweep(
                roles=roles,
                max_replicas=3,
                shard={"index": index, "count": 2},
            )
            per_shard_front += sum(d["pareto"] for d in part["designs"])
        merged_front = sum(d["pareto"] for d in merged["designs"])
        assert merged_front <= per_shard_front


class TestFailover:
    def test_dead_primary_fails_over_to_survivor(self, shard_services):
        services, _ = shard_services
        # A bound-then-closed socket: connection refused immediately.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        live = _endpoints(services)[0]
        coordinator = ShardCoordinator(
            [live, f"127.0.0.1:{dead_port}"],
            retry=RetryPolicy(attempts=3, base_delay=0.01, max_delay=0.05),
        )
        roles = ["dns", "web", "app"]
        merged = coordinator.sweep(roles=roles, max_replicas=3)
        designs = list(enumerate_designs(roles, max_replicas=3))
        expected = sweep_response(
            roles, 3, None, False, "serial", SweepEngine().evaluate(designs)
        )
        assert merged == json.loads(json.dumps(expected))

    def test_all_endpoints_dead_raises_descriptively(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        coordinator = ShardCoordinator(
            [f"127.0.0.1:{dead_port}"],
            timeout=2.0,
            retry=RetryPolicy(attempts=2, base_delay=0.01, max_delay=0.05),
        )
        with pytest.raises(EvaluationError, match="failed on every endpoint"):
            coordinator.sweep(roles=["dns"], max_replicas=1)

    def test_injected_request_fault_recovers(
        self, shard_services, monkeypatch
    ):
        """A shard.request fault on the first attempt fails over and the
        merged payload stays byte-identical (the chaos-smoke path)."""
        from repro.resilience import faults

        services, _ = shard_services
        monkeypatch.setenv(faults.ENV_PLAN, "shard.request:error@1")
        faults.reset()
        try:
            coordinator = ShardCoordinator(
                _endpoints(services),
                retry=RetryPolicy(attempts=3, base_delay=0.01, max_delay=0.05),
            )
            merged = coordinator.sweep(roles=["dns", "web"], max_replicas=2)
        finally:
            monkeypatch.delenv(faults.ENV_PLAN, raising=False)
            faults.reset()
        designs = list(enumerate_designs(["dns", "web"], max_replicas=2))
        expected = sweep_response(
            ["dns", "web"], 2, None, False, "serial",
            SweepEngine().evaluate(designs),
        )
        assert merged == json.loads(json.dumps(expected))

    def test_needs_at_least_one_endpoint(self):
        with pytest.raises(ValidationError, match=">= 1 endpoint"):
            ShardCoordinator([])

"""Unified DesignSpec pipeline: homogeneous/heterogeneous parity,
heterogeneous enumeration, and mixed-population Pareto ranking."""

from __future__ import annotations

import random

import pytest

from repro.enterprise import (
    DesignSpec,
    HeterogeneousDesign,
    RedundancyDesign,
    ServerRole,
    paper_variant_space,
)
from repro.errors import EvaluationError, ValidationError
from repro.evaluation import (
    AvailabilityEvaluator,
    SweepEngine,
    enumerate_designs,
    enumerate_heterogeneous_designs,
    evaluate_designs,
    pareto_front,
    pareto_front_loop,
)
from repro.evaluation.combined import DesignEvaluation, DesignSnapshot
from repro.harm import SecurityMetrics
from repro.vulnerability.diversity import diversity_database


@pytest.fixture(scope="module")
def variant_space():
    return paper_variant_space()


@pytest.fixture(scope="module")
def diversity_db():
    return diversity_database()


def _mirrored_hetero(case_study, counts):
    """Heterogeneous design whose single variant per role IS the role."""
    return HeterogeneousDesign(
        {role: {case_study.roles[role]: count} for role, count in counts.items()}
    )


class TestDesignSpecProtocol:
    def test_both_kinds_satisfy_protocol(self, case_study):
        homogeneous = RedundancyDesign({"web": 2})
        heterogeneous = _mirrored_hetero(case_study, {"web": 2})
        assert isinstance(homogeneous, DesignSpec)
        assert isinstance(heterogeneous, DesignSpec)

    def test_counts_sum_variants(self, variant_space):
        design = HeterogeneousDesign(
            {
                "web": {variant_space["web"][0]: 1, variant_space["web"][1]: 2},
                "db": {variant_space["db"][0]: 1},
            }
        )
        assert design.counts == {"web": 3, "db": 1}
        assert design.total_servers == 4

    def test_cache_keys_distinguish_kinds(self, case_study):
        homogeneous = RedundancyDesign({"web": 1})
        heterogeneous = _mirrored_hetero(case_study, {"web": 1})
        assert homogeneous.cache_key() != heterogeneous.cache_key()
        assert homogeneous != heterogeneous

    def test_heterogeneous_identity_order_insensitive(self, variant_space):
        apache, nginx = variant_space["web"]
        first = HeterogeneousDesign({"web": {apache: 1, nginx: 1}})
        second = HeterogeneousDesign({"web": {nginx: 1, apache: 1}})
        assert first == second
        assert hash(first) == hash(second)
        assert first.cache_key() == second.cache_key()

    def test_heterogeneous_usable_as_dict_key(self, variant_space):
        apache, nginx = variant_space["web"]
        design = HeterogeneousDesign({"web": {apache: 1, nginx: 1}})
        copy = HeterogeneousDesign({"web": {nginx: 1, apache: 1}})
        assert {design: "seen"}[copy] == "seen"

    def test_tiers_shape(self, variant_space):
        apache, nginx = variant_space["web"]
        design = HeterogeneousDesign({"web": {apache: 2, nginx: 1}})
        assert design.tiers() == {"web": {"web_apache": 2, "web_nginx": 1}}

    def test_unknown_spec_kind_rejected(self, case_study, critical_policy):
        """A third DesignSpec implementation must fail loudly, not fall
        into the homogeneous code path."""
        from repro.evaluation import SecurityEvaluator

        class GhostDesign:
            label = "ghost"
            roles = ["web"]
            counts = {"web": 1}
            total_servers = 1

            def cache_key(self):
                return ("ghost",)

        with pytest.raises(EvaluationError):
            SecurityEvaluator(case_study).before_patch(GhostDesign())
        with pytest.raises(EvaluationError):
            AvailabilityEvaluator(case_study, critical_policy).coa(GhostDesign())


class TestHeterogeneousEnumeration:
    def test_single_variant_degenerates_to_homogeneous_counts(self, case_study):
        variants = {"web": (case_study.roles["web"],)}
        designs = list(enumerate_heterogeneous_designs(["web"], variants, 3))
        assert [d.counts["web"] for d in designs] == [1, 2, 3]

    def test_two_variant_role_assignment_count(self, variant_space):
        designs = list(
            enumerate_heterogeneous_designs(
                ["web"], variant_space, max_replicas=2
            )
        )
        # {a:1} {a:2} {b:1} {b:2} {a:1,b:1}
        assert len(designs) == 5
        labels = {d.label for d in designs}
        assert "web[1 web_apache + 1 web_nginx]" in labels

    def test_full_paper_space_size(self, variant_space):
        designs = list(
            enumerate_heterogeneous_designs(
                ["dns", "web", "app", "db"], variant_space, max_replicas=2
            )
        )
        # dns: 2, web: 5, app: 2, db: 5 assignments -> 100 designs
        assert len(designs) == 100
        assert len(set(designs)) == 100

    def test_max_total_budget(self, variant_space):
        designs = list(
            enumerate_heterogeneous_designs(
                ["web", "db"], variant_space, max_replicas=2, max_total=3
            )
        )
        assert designs
        assert all(d.total_servers <= 3 for d in designs)

    def test_missing_pool_rejected(self, variant_space):
        with pytest.raises(ValidationError):
            list(
                enumerate_heterogeneous_designs(
                    ["cache"], variant_space, max_replicas=2
                )
            )

    def test_invalid_max_replicas(self, variant_space):
        with pytest.raises(ValidationError):
            list(
                enumerate_heterogeneous_designs(
                    ["web"], variant_space, max_replicas=0
                )
            )

    def test_empty_roles(self, variant_space):
        assert (
            list(enumerate_heterogeneous_designs([], variant_space, 2)) == []
        )


class TestVariantDatabaseGuard:
    """Diversity-only variants without a covering database must fail
    loudly, not silently shrink the attack surface."""

    def _nginx_only(self, variant_space):
        return HeterogeneousDesign({"web": {variant_space["web"][1]: 1}})

    def test_security_path_rejects_uncovered_variant(
        self, case_study, variant_space
    ):
        from repro.evaluation import SecurityEvaluator

        evaluator = SecurityEvaluator(case_study)  # paper database only
        with pytest.raises(ValidationError):
            evaluator.before_patch(self._nginx_only(variant_space))

    def test_availability_path_rejects_uncovered_variant(
        self, case_study, critical_policy, variant_space
    ):
        evaluator = AvailabilityEvaluator(case_study, critical_policy)
        with pytest.raises(ValidationError):
            evaluator.coa(self._nginx_only(variant_space))

    def test_covered_variant_accepted(
        self, case_study, critical_policy, variant_space, diversity_db
    ):
        evaluator = AvailabilityEvaluator(
            case_study, critical_policy, database=diversity_db
        )
        assert 0.99 < evaluator.coa(self._nginx_only(variant_space)) < 1.0


class TestHomogeneousHeterogeneousParity:
    """A single-variant-per-role heterogeneous design must be
    byte-identical to the equivalent homogeneous design."""

    COUNTS = {"dns": 1, "web": 2, "app": 2, "db": 1}

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_snapshots_byte_identical(
        self, case_study, critical_policy, executor
    ):
        homogeneous = RedundancyDesign(self.COUNTS)
        heterogeneous = _mirrored_hetero(case_study, self.COUNTS)
        hetero_eval, homog_eval = evaluate_designs(
            [heterogeneous, homogeneous],
            case_study=case_study,
            policy=critical_policy,
            executor=None if executor == "serial" else executor,
            max_workers=2,
        )
        assert hetero_eval.before == homog_eval.before
        assert hetero_eval.after == homog_eval.after
        # Float bit patterns, not approximate equality.
        assert hetero_eval.after.coa.hex() == homog_eval.after.coa.hex()
        assert (
            hetero_eval.after.security.attack_success_probability.hex()
            == homog_eval.after.security.attack_success_probability.hex()
        )

    def test_system_availability_parity(self, case_study, critical_policy):
        evaluator = AvailabilityEvaluator(case_study, critical_policy)
        homogeneous = RedundancyDesign(self.COUNTS)
        heterogeneous = _mirrored_hetero(case_study, self.COUNTS)
        assert evaluator.system_availability(
            heterogeneous
        ) == evaluator.system_availability(homogeneous)

    def test_closed_form_rejects_heterogeneous(
        self, case_study, critical_policy
    ):
        evaluator = AvailabilityEvaluator(case_study, critical_policy)
        with pytest.raises(EvaluationError):
            evaluator.coa_closed_form(_mirrored_hetero(case_study, self.COUNTS))

    def _overridden_case_study(self):
        from repro.availability.parameters import ComponentRates
        from repro.enterprise import EnterpriseCaseStudy, paper_case_study

        base = paper_case_study()
        return EnterpriseCaseStudy(
            roles=base.roles,
            topology=base.topology,
            database=base.database,
            attacker=base.attacker,
            schedule=base.schedule,
            component_rates={"web": ComponentRates(service_failure=1 / 50)},
        )

    def test_parity_survives_component_rate_overrides(self, critical_policy):
        case_study = self._overridden_case_study()
        evaluator = AvailabilityEvaluator(case_study, critical_policy)
        homogeneous = RedundancyDesign(self.COUNTS)
        heterogeneous = _mirrored_hetero(case_study, self.COUNTS)
        assert (
            evaluator.coa(heterogeneous).hex()
            == evaluator.coa(homogeneous).hex()
        )

    def test_variant_inherits_role_rate_override(self, critical_policy):
        """A variant named differently from its role still inherits the
        role's component-rate override."""
        case_study = self._overridden_case_study()
        renamed = ServerRole(
            "web_apache",
            case_study.roles["web"].operating_system,
            case_study.roles["web"].application,
            case_study.roles["web"].attack_tree_spec,
        )
        evaluator = AvailabilityEvaluator(case_study, critical_policy)
        inherited = evaluator.variant_aggregate(renamed, role="web")
        role_aggregate = evaluator.aggregate("web")
        assert inherited.patch_rate == role_aggregate.patch_rate
        assert inherited.recovery_rate == role_aggregate.recovery_rate
        # Without the role context the override must NOT apply.
        bare = evaluator.variant_aggregate(renamed)
        assert bare.recovery_rate != inherited.recovery_rate


class TestUnifiedEngine:
    def test_engine_caches_heterogeneous_designs(
        self, variant_space, diversity_db
    ):
        engine = SweepEngine(database=diversity_db)
        designs = list(
            enumerate_heterogeneous_designs(["web"], variant_space, 2)
        )
        engine.evaluate(designs)
        misses = engine.cache_info["misses"]
        engine.evaluate(designs)
        assert engine.cache_info["misses"] == misses
        assert engine.cache_info["hits"] >= len(designs)

    def test_mixed_population_single_sweep(self, case_study, diversity_db):
        engine = SweepEngine(database=diversity_db)
        mixed = list(enumerate_designs(["dns", "web"], max_replicas=2))
        mixed += list(
            enumerate_heterogeneous_designs(
                ["web"], paper_variant_space(), max_replicas=2
            )
        )
        evaluations = engine.evaluate(mixed)
        assert [e.design for e in evaluations] == mixed
        front = engine.pareto(evaluations)
        assert front
        assert set(front) <= set(evaluations)

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_parallel_heterogeneous_sweep_matches_serial(
        self, variant_space, diversity_db, executor
    ):
        designs = list(
            enumerate_heterogeneous_designs(["web", "db"], variant_space, 2)
        )
        serial = SweepEngine(database=diversity_db).evaluate(designs)
        parallel = SweepEngine(
            database=diversity_db,
            executor=executor,
            max_workers=2,
            chunk_size=4,
        ).evaluate(designs)
        assert serial == parallel


def _point(asp: float, coa: float) -> DesignEvaluation:
    metrics = SecurityMetrics(
        attack_impact=0.0,
        attack_success_probability=asp,
        number_of_exploitable_vulnerabilities=0,
        number_of_attack_paths=0,
        number_of_entry_points=0,
        attack_paths=(),
        path_impacts=(),
        path_probabilities=(),
        max_path_probability=0.0,
        shortest_attack_path=0,
        mean_path_length=0.0,
        total_risk=0.0,
        unique_cve_count=0,
    )
    snapshot = DesignSnapshot(security=metrics, coa=coa)
    return DesignEvaluation(
        design=RedundancyDesign({"web": 1}), before=snapshot, after=snapshot
    )


class TestParetoVectorized:
    def test_empty(self):
        assert pareto_front([]) == []

    def test_matches_loop_oracle_on_random_points(self):
        rng = random.Random(42)
        for _ in range(25):
            pool = [
                _point(
                    rng.choice([0.1, 0.2, 0.3, rng.random()]),
                    rng.choice([0.5, 0.9, rng.random()]),
                )
                for _ in range(rng.randrange(1, 40))
            ]
            fast = pareto_front(pool)
            oracle = pareto_front_loop(pool)
            assert [id(e) for e in fast] == [id(e) for e in oracle]

    def test_matches_loop_oracle_on_real_evaluations(self, design_evaluations):
        for after_patch in (True, False):
            fast = pareto_front(design_evaluations, after_patch=after_patch)
            oracle = pareto_front_loop(
                design_evaluations, after_patch=after_patch
            )
            assert [id(e) for e in fast] == [id(e) for e in oracle]

    def test_duplicate_points_all_survive(self):
        a = _point(0.1, 0.9)
        b = _point(0.1, 0.9)
        dominated = _point(0.2, 0.5)
        front = pareto_front([a, b, dominated])
        assert [id(e) for e in front] == [id(a), id(b)]

    def test_input_order_preserved(self):
        points = [_point(0.3, 0.99), _point(0.1, 0.5), _point(0.2, 0.9)]
        front = pareto_front(points)
        assert [id(e) for e in front] == [id(p) for p in points]

"""Tests for the sqlite-backed persistent evaluation cache."""

from __future__ import annotations

import pytest

from repro.enterprise import paper_designs
from repro.errors import EvaluationError
from repro.evaluation import PersistentEvaluationCache, SweepEngine
from repro.evaluation.cache import context_fingerprint
from repro.patching import CriticalVulnerabilityPolicy
from repro.patching.policy import PatchAllPolicy


class TestPersistentEvaluationCache:
    def test_roundtrip(self, tmp_path):
        cache = PersistentEvaluationCache(tmp_path / "cache.sqlite")
        assert cache.get("evaluation", "k") is None
        cache.put("evaluation", "k", {"value": 1.25})
        assert cache.get("evaluation", "k") == {"value": 1.25}
        assert len(cache) == 1

    def test_scopes_are_separate(self, tmp_path):
        cache = PersistentEvaluationCache(tmp_path / "cache.sqlite")
        cache.put("evaluation", "k", "a")
        cache.put("timeline", "k", "b")
        assert cache.get("evaluation", "k") == "a"
        assert cache.get("timeline", "k") == "b"

    def test_replace(self, tmp_path):
        cache = PersistentEvaluationCache(tmp_path / "cache.sqlite")
        cache.put("evaluation", "k", 1)
        cache.put("evaluation", "k", 2)
        assert cache.get("evaluation", "k") == 2
        assert len(cache) == 1

    def test_corrupt_payload_is_a_miss(self, tmp_path):
        path = tmp_path / "cache.sqlite"
        cache = PersistentEvaluationCache(path)
        cache._conn.execute(
            "INSERT INTO entries (scope, key, payload) VALUES (?, ?, ?)",
            ("evaluation", "bad", b"not a pickle"),
        )
        cache._conn.commit()
        assert cache.get("evaluation", "bad") is None

    def test_unopenable_path_raises(self, tmp_path):
        with pytest.raises(EvaluationError):
            PersistentEvaluationCache(tmp_path / "missing-dir" / "cache.sqlite")

    def test_context_manager_closes(self, tmp_path):
        with PersistentEvaluationCache(tmp_path / "cache.sqlite") as cache:
            cache.put("evaluation", "k", 1)
        with pytest.raises(EvaluationError):
            cache.get("evaluation", "k")


class TestContextFingerprint:
    def test_deterministic_and_sensitive(self):
        a = context_fingerprint(CriticalVulnerabilityPolicy(), None)
        b = context_fingerprint(CriticalVulnerabilityPolicy(), None)
        c = context_fingerprint(PatchAllPolicy(), None)
        assert a == b
        assert a != c

    def test_pipeline_version_is_v4(self):
        from repro.evaluation import cache as cache_module

        assert cache_module._PIPELINE_VERSION == b"repro-evaluation-pipeline-v4"

    def test_old_pipeline_entries_are_not_served(self, tmp_path, monkeypatch):
        """Entries fingerprinted under pipeline v3 must miss under v4.

        The v3 -> v4 bump retires timeline entries that predate the
        method-aware cache keys; this pins the retirement mechanism
        (fingerprint salting) rather than one specific key shape.
        """
        from repro.evaluation import cache as cache_module

        store = PersistentEvaluationCache(tmp_path / "cache.sqlite")
        context = (CriticalVulnerabilityPolicy(), None)
        monkeypatch.setattr(
            cache_module,
            "_PIPELINE_VERSION",
            b"repro-evaluation-pipeline-v3",
        )
        old_fingerprint = context_fingerprint(*context)
        store.put(old_fingerprint, "design-key", {"coa": 0.5})
        monkeypatch.undo()
        new_fingerprint = context_fingerprint(*context)
        assert new_fingerprint != old_fingerprint
        assert store.get(new_fingerprint, "design-key") is None
        assert store.get(old_fingerprint, "design-key") == {"coa": 0.5}


class TestEngineDiskCache:
    def test_second_engine_hits_disk(self, tmp_path):
        path = tmp_path / "cache.sqlite"
        designs = paper_designs()[:3]
        first = SweepEngine(cache_path=path)
        evaluations = first.evaluate(designs)
        assert first.cache_info["disk_hits"] == 0
        assert first.cache_info["misses"] == len(designs)

        second = SweepEngine(cache_path=path)
        again = second.evaluate(designs)
        assert second.cache_info["disk_hits"] == len(designs)
        assert second.cache_info["misses"] == 0
        for a, b in zip(evaluations, again):
            assert a.design == b.design
            assert a.before.coa == b.before.coa
            assert a.before.security.as_dict() == b.before.security.as_dict()

    def test_timeline_cached_per_grid(self, tmp_path):
        path = tmp_path / "cache.sqlite"
        designs = paper_designs()[:2]
        grid = (0.0, 360.0, 720.0)
        first = SweepEngine(cache_path=path)
        timelines = first.timeline(designs, grid)

        second = SweepEngine(cache_path=path)
        again = second.timeline(designs, grid)
        assert second.cache_info["disk_hits"] == len(designs)
        for a, b in zip(timelines, again):
            assert a.coa == b.coa
            assert a.completion_probability == b.completion_probability
        # a different grid misses
        second.timeline(designs, (0.0, 24.0))
        assert second.cache_info["misses"] == len(designs)

    def test_different_policy_does_not_alias(self, tmp_path):
        path = tmp_path / "cache.sqlite"
        designs = paper_designs()[:1]
        SweepEngine(cache_path=path).evaluate(designs)
        other = SweepEngine(policy=PatchAllPolicy(), cache_path=path)
        other.evaluate(designs)
        assert other.cache_info["disk_hits"] == 0
        assert other.cache_info["misses"] == 1

    def test_no_cache_path_keeps_legacy_cache_info(self):
        engine = SweepEngine()
        assert engine.cache_info == {"hits": 0, "misses": 0, "size": 0}


class TestCacheBoundsAndMaintenance:
    def test_max_entries_evicts_lru(self, tmp_path):
        cache = PersistentEvaluationCache(
            tmp_path / "cache.sqlite", max_entries=3
        )
        for i in range(3):
            cache.put("evaluation", f"k{i}", i)
        cache.get("evaluation", "k0")  # refresh k0: k1 becomes LRU
        cache.put("evaluation", "k3", 3)
        assert len(cache) == 3
        assert cache.get("evaluation", "k1") is None
        assert cache.get("evaluation", "k0") == 0
        assert cache.get("evaluation", "k3") == 3

    def test_max_bytes_evicts_until_fit(self, tmp_path):
        cache = PersistentEvaluationCache(
            tmp_path / "cache.sqlite", max_bytes=2_000
        )
        for i in range(10):
            cache.put("evaluation", f"k{i}", "x" * 500)
        assert cache.stats()["bytes"] <= 2_000
        assert len(cache) < 10
        # the most recent entry always survives
        assert cache.get("evaluation", "k9") is not None

    def test_invalid_bounds_rejected(self, tmp_path):
        with pytest.raises(EvaluationError):
            PersistentEvaluationCache(tmp_path / "c.sqlite", max_entries=0)
        with pytest.raises(EvaluationError):
            PersistentEvaluationCache(tmp_path / "c.sqlite", max_bytes=0)

    def test_stats_counts_scopes(self, tmp_path):
        cache = PersistentEvaluationCache(tmp_path / "cache.sqlite")
        cache.put("evaluation", "a", 1)
        cache.put("evaluation", "b", 2)
        cache.put("timeline", "c", 3)
        stats = cache.stats()
        assert stats["entries"] == 3
        assert stats["scopes"]["evaluation"]["entries"] == 2
        assert stats["scopes"]["timeline"]["entries"] == 1
        assert stats["bytes"] > 0

    def test_purge_all_and_by_scope(self, tmp_path):
        cache = PersistentEvaluationCache(tmp_path / "cache.sqlite")
        cache.put("evaluation", "a", 1)
        cache.put("timeline", "b", 2)
        assert cache.purge(scope="timeline") == 1
        assert cache.get("evaluation", "a") == 1
        assert cache.purge() == 1
        assert len(cache) == 0

    def test_purge_by_fingerprint(self, tmp_path):
        cache = PersistentEvaluationCache(tmp_path / "cache.sqlite")
        fp_a = context_fingerprint("context-a")
        fp_b = context_fingerprint("context-b")
        cache.put("evaluation", cache.entry_key(fp_a, "design1"), 1)
        cache.put("evaluation", cache.entry_key(fp_a, "design2"), 2)
        cache.put("evaluation", cache.entry_key(fp_b, "design1"), 3)
        assert cache.purge(fingerprint=fp_a) == 2
        assert cache.get("evaluation", cache.entry_key(fp_b, "design1")) == 3

    def test_trim_explicit_bounds(self, tmp_path):
        cache = PersistentEvaluationCache(tmp_path / "cache.sqlite")
        for i in range(6):
            cache.put("evaluation", f"k{i}", i)
        assert cache.trim(max_entries=2) == 4
        assert len(cache) == 2
        assert cache.get("evaluation", "k5") == 5

    def test_trim_without_bounds_is_noop(self, tmp_path):
        cache = PersistentEvaluationCache(tmp_path / "cache.sqlite")
        cache.put("evaluation", "k", 1)
        assert cache.trim() == 0
        assert len(cache) == 1

    def test_pre_lru_file_migrates_in_place(self, tmp_path):
        import sqlite3

        path = tmp_path / "old.sqlite"
        conn = sqlite3.connect(path)
        conn.execute(
            "CREATE TABLE entries ("
            "  scope TEXT NOT NULL, key TEXT NOT NULL,"
            "  payload BLOB NOT NULL, PRIMARY KEY (scope, key))"
        )
        import pickle

        conn.execute(
            "INSERT INTO entries (scope, key, payload) VALUES (?, ?, ?)",
            ("evaluation", "legacy", sqlite3.Binary(pickle.dumps(41))),
        )
        conn.commit()
        conn.close()
        cache = PersistentEvaluationCache(path, max_entries=5)
        assert cache.get("evaluation", "legacy") == 41
        assert cache.stats()["bytes"] > 0
        cache.put("evaluation", "new", 42)
        assert len(cache) == 2

    def test_engine_sweep_respects_existing_behavior(self, tmp_path):
        engine = SweepEngine(cache_path=tmp_path / "cache.sqlite")
        designs = paper_designs()[:2]
        engine.evaluate(designs)
        rerun = SweepEngine(cache_path=tmp_path / "cache.sqlite")
        rerun.evaluate(designs)
        assert rerun.cache_info["disk_hits"] == len(designs)

    def test_read_only_file_still_serves_hits(self, tmp_path):
        import os

        path = tmp_path / "cache.sqlite"
        cache = PersistentEvaluationCache(path)
        cache.put("evaluation", "k", 7)
        cache.close()
        os.chmod(path, 0o444)
        try:
            reader = PersistentEvaluationCache(path)
            assert reader.get("evaluation", "k") == 7
        finally:
            os.chmod(path, 0o644)

    def test_trim_rejects_non_positive_bounds(self, tmp_path):
        cache = PersistentEvaluationCache(tmp_path / "cache.sqlite")
        cache.put("evaluation", "k", 1)
        with pytest.raises(EvaluationError):
            cache.trim(max_entries=-1)
        with pytest.raises(EvaluationError):
            cache.trim(max_bytes=0)
        assert len(cache) == 1

    def test_fingerprint_salted_by_pipeline_version(self, monkeypatch):
        from repro.evaluation import cache as cache_module

        baseline = context_fingerprint("ctx")
        assert context_fingerprint("ctx") == baseline  # stable
        monkeypatch.setattr(
            cache_module, "_PIPELINE_VERSION", b"some-future-pipeline"
        )
        # a numerically different pipeline must miss old entries
        assert context_fingerprint("ctx") != baseline


class TestCacheConcurrency:
    def test_many_threads_hammering_one_cache(self, tmp_path):
        import threading

        cache = PersistentEvaluationCache(tmp_path / "cache.sqlite")
        errors: list[Exception] = []

        def worker(tag: int) -> None:
            try:
                for index in range(30):
                    key = f"{tag}-{index % 7}"
                    cache.put("evaluation", key, {"tag": tag, "index": index})
                    cache.get("evaluation", key)
                    if index % 5 == 0:
                        cache.stats()
                        len(cache)
                    if index % 11 == 0:
                        cache.trim(max_entries=64)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(tag,)) for tag in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert errors == []
        stats = cache.stats()
        assert 0 < stats["entries"] <= 64
        cache.close()

    def test_two_processes_plus_threads_share_one_file(self, tmp_path):
        import os
        import subprocess
        import sys
        import threading
        from pathlib import Path

        import repro

        path = tmp_path / "shared.sqlite"
        PersistentEvaluationCache(path).close()  # create the schema up front
        script = (
            "import sys\n"
            "from repro.evaluation.cache import PersistentEvaluationCache\n"
            "tag = sys.argv[2]\n"
            "cache = PersistentEvaluationCache(sys.argv[1])\n"
            "for index in range(40):\n"
            "    cache.put('evaluation', f'{tag}-{index}', {'tag': tag})\n"
            "    assert cache.get('evaluation', f'{tag}-{index}') == {'tag': tag}\n"
            "cache.close()\n"
        )
        env = dict(
            os.environ, PYTHONPATH=str(Path(repro.__file__).resolve().parents[1])
        )
        workers = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(path), f"proc{number}"],
                env=env,
                stderr=subprocess.PIPE,
            )
            for number in range(2)
        ]
        cache = PersistentEvaluationCache(path)
        errors: list[Exception] = []

        def thread_worker(tag: str) -> None:
            try:
                for index in range(40):
                    cache.put("evaluation", f"{tag}-{index}", {"tag": tag})
                    cache.get("evaluation", f"{tag}-{index}")
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [
            threading.Thread(target=thread_worker, args=(f"thread{number}",))
            for number in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        for worker in workers:
            _, stderr = worker.communicate(timeout=120)
            assert worker.returncode == 0, stderr.decode()
        assert errors == []
        # Every writer's entries landed: 2 processes + 3 threads x 40 keys.
        for tag in ("proc0", "proc1", "thread0", "thread1", "thread2"):
            assert cache.get("evaluation", f"{tag}-39") == {"tag": tag}
        assert len(cache) == 5 * 40
        cache.close()


class TestClosedCache:
    @pytest.mark.parametrize(
        "operation",
        [
            lambda cache: cache.get("evaluation", "k"),
            lambda cache: cache.put("evaluation", "k", 1),
            lambda cache: cache.stats(),
            lambda cache: cache.trim(max_entries=1),
            lambda cache: cache.purge(),
            lambda cache: len(cache),
        ],
    )
    def test_closed_cache_raises_evaluation_error(self, tmp_path, operation):
        cache = PersistentEvaluationCache(tmp_path / "cache.sqlite")
        cache.put("evaluation", "k", 1)
        cache.close()
        with pytest.raises(EvaluationError, match="closed"):
            operation(cache)

    def test_close_is_idempotent(self, tmp_path):
        cache = PersistentEvaluationCache(tmp_path / "cache.sqlite")
        assert not cache.closed
        cache.close()
        assert cache.closed
        cache.close()  # no error
        assert cache.closed

"""Tests for the sqlite-backed persistent evaluation cache."""

from __future__ import annotations

import pytest

from repro.enterprise import paper_designs
from repro.errors import EvaluationError
from repro.evaluation import PersistentEvaluationCache, SweepEngine
from repro.evaluation.cache import context_fingerprint
from repro.patching import CriticalVulnerabilityPolicy
from repro.patching.policy import PatchAllPolicy


class TestPersistentEvaluationCache:
    def test_roundtrip(self, tmp_path):
        cache = PersistentEvaluationCache(tmp_path / "cache.sqlite")
        assert cache.get("evaluation", "k") is None
        cache.put("evaluation", "k", {"value": 1.25})
        assert cache.get("evaluation", "k") == {"value": 1.25}
        assert len(cache) == 1

    def test_scopes_are_separate(self, tmp_path):
        cache = PersistentEvaluationCache(tmp_path / "cache.sqlite")
        cache.put("evaluation", "k", "a")
        cache.put("timeline", "k", "b")
        assert cache.get("evaluation", "k") == "a"
        assert cache.get("timeline", "k") == "b"

    def test_replace(self, tmp_path):
        cache = PersistentEvaluationCache(tmp_path / "cache.sqlite")
        cache.put("evaluation", "k", 1)
        cache.put("evaluation", "k", 2)
        assert cache.get("evaluation", "k") == 2
        assert len(cache) == 1

    def test_corrupt_payload_is_a_miss(self, tmp_path):
        path = tmp_path / "cache.sqlite"
        cache = PersistentEvaluationCache(path)
        cache._conn.execute(
            "INSERT INTO entries (scope, key, payload) VALUES (?, ?, ?)",
            ("evaluation", "bad", b"not a pickle"),
        )
        cache._conn.commit()
        assert cache.get("evaluation", "bad") is None

    def test_unopenable_path_raises(self, tmp_path):
        with pytest.raises(EvaluationError):
            PersistentEvaluationCache(tmp_path / "missing-dir" / "cache.sqlite")

    def test_context_manager_closes(self, tmp_path):
        with PersistentEvaluationCache(tmp_path / "cache.sqlite") as cache:
            cache.put("evaluation", "k", 1)
        with pytest.raises(EvaluationError):
            cache.get("evaluation", "k")


class TestContextFingerprint:
    def test_deterministic_and_sensitive(self):
        a = context_fingerprint(CriticalVulnerabilityPolicy(), None)
        b = context_fingerprint(CriticalVulnerabilityPolicy(), None)
        c = context_fingerprint(PatchAllPolicy(), None)
        assert a == b
        assert a != c


class TestEngineDiskCache:
    def test_second_engine_hits_disk(self, tmp_path):
        path = tmp_path / "cache.sqlite"
        designs = paper_designs()[:3]
        first = SweepEngine(cache_path=path)
        evaluations = first.evaluate(designs)
        assert first.cache_info["disk_hits"] == 0
        assert first.cache_info["misses"] == len(designs)

        second = SweepEngine(cache_path=path)
        again = second.evaluate(designs)
        assert second.cache_info["disk_hits"] == len(designs)
        assert second.cache_info["misses"] == 0
        for a, b in zip(evaluations, again):
            assert a.design == b.design
            assert a.before.coa == b.before.coa
            assert a.before.security.as_dict() == b.before.security.as_dict()

    def test_timeline_cached_per_grid(self, tmp_path):
        path = tmp_path / "cache.sqlite"
        designs = paper_designs()[:2]
        grid = (0.0, 360.0, 720.0)
        first = SweepEngine(cache_path=path)
        timelines = first.timeline(designs, grid)

        second = SweepEngine(cache_path=path)
        again = second.timeline(designs, grid)
        assert second.cache_info["disk_hits"] == len(designs)
        for a, b in zip(timelines, again):
            assert a.coa == b.coa
            assert a.completion_probability == b.completion_probability
        # a different grid misses
        second.timeline(designs, (0.0, 24.0))
        assert second.cache_info["misses"] == len(designs)

    def test_different_policy_does_not_alias(self, tmp_path):
        path = tmp_path / "cache.sqlite"
        designs = paper_designs()[:1]
        SweepEngine(cache_path=path).evaluate(designs)
        other = SweepEngine(policy=PatchAllPolicy(), cache_path=path)
        other.evaluate(designs)
        assert other.cache_info["disk_hits"] == 0
        assert other.cache_info["misses"] == 1

    def test_no_cache_path_keeps_legacy_cache_info(self):
        engine = SweepEngine()
        assert engine.cache_info == {"hits": 0, "misses": 0, "size": 0}

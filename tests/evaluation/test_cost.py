"""Tests for the operational-cost extension."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.evaluation.cost import CostBreakdown, CostModel


class TestCostModel:
    def test_breakdown_items(self, design_evaluations):
        model = CostModel(
            server_cost_per_month=100.0,
            downtime_cost_per_hour=1000.0,
            breach_loss=10000.0,
            patch_labour_cost=10.0,
        )
        evaluation = design_evaluations[0]  # 4 servers
        breakdown = model.breakdown(evaluation, patched_vulnerabilities=9)
        assert breakdown.servers == pytest.approx(400.0)
        assert breakdown.patch_labour == pytest.approx(90.0)
        assert breakdown.downtime == pytest.approx(
            (1.0 - evaluation.after.coa) * 1000.0 * 720.0
        )
        assert breakdown.breach_risk == pytest.approx(
            evaluation.after.security.attack_success_probability * 10000.0
        )
        assert breakdown.total == pytest.approx(
            breakdown.servers
            + breakdown.downtime
            + breakdown.breach_risk
            + breakdown.patch_labour
        )

    def test_total_helper(self, design_evaluations):
        model = CostModel()
        evaluation = design_evaluations[0]
        assert model.total(evaluation) == pytest.approx(
            model.breakdown(evaluation).total
        )

    def test_redundancy_tradeoff_visible(self, design_evaluations):
        """More servers cost more in hardware but less in downtime."""
        model = CostModel(breach_loss=0.0, patch_labour_cost=0.0)
        d1 = model.breakdown(design_evaluations[0])
        d4 = model.breakdown(design_evaluations[3])
        assert d4.servers > d1.servers
        assert d4.downtime < d1.downtime

    def test_negative_parameters_rejected(self):
        with pytest.raises(ValidationError):
            CostModel(server_cost_per_month=-1.0)

    def test_breakdown_is_frozen(self):
        breakdown = CostBreakdown(1.0, 2.0, 3.0, 4.0)
        with pytest.raises(AttributeError):
            breakdown.servers = 9.0

"""Tests for the combined design evaluation."""

from __future__ import annotations

import pytest

from repro.evaluation import evaluate_design, evaluate_designs


class TestEvaluateDesign:
    def test_defaults_use_paper_setup(self, example_design):
        evaluation = evaluate_design(example_design)
        assert evaluation.label == "1 DNS + 2 WEB + 2 APP + 1 DB"
        assert evaluation.before.security.attack_success_probability == 1.0
        assert evaluation.after.coa == pytest.approx(0.99707, abs=5e-6)

    def test_coa_same_before_and_after(self, design_evaluations):
        for evaluation in design_evaluations:
            assert evaluation.before.coa == evaluation.after.coa

    def test_snapshot_metric_lookup(self, design_evaluations):
        snapshot = design_evaluations[0].after
        assert snapshot.metric("COA") == snapshot.coa
        assert snapshot.metric("ASP") == pytest.approx(
            snapshot.security.attack_success_probability
        )
        assert snapshot.metric("NoEV") == 7

    def test_evaluate_designs_shares_caches(
        self, case_study, critical_policy, five_designs
    ):
        evaluations = evaluate_designs(
            five_designs, case_study=case_study, policy=critical_policy
        )
        assert len(evaluations) == 5
        assert [e.design for e in evaluations] == five_designs


class TestPaperOrderings:
    def test_patch_improves_every_security_metric(self, design_evaluations):
        for evaluation in design_evaluations:
            before, after = evaluation.before.security, evaluation.after.security
            assert after.attack_impact <= before.attack_impact
            assert (
                after.attack_success_probability
                <= before.attack_success_probability
            )
            assert (
                after.number_of_exploitable_vulnerabilities
                <= before.number_of_exploitable_vulnerabilities
            )
            assert after.number_of_attack_paths <= before.number_of_attack_paths
            assert after.number_of_entry_points <= before.number_of_entry_points

    def test_redundancy_increases_coa(self, design_evaluations):
        baseline = design_evaluations[0]
        for evaluation in design_evaluations[1:]:
            assert evaluation.after.coa > baseline.after.coa

    def test_redundancy_never_decreases_asp(self, design_evaluations):
        baseline = design_evaluations[0].after.security.attack_success_probability
        for evaluation in design_evaluations[1:]:
            assert (
                evaluation.after.security.attack_success_probability
                >= baseline - 1e-12
            )

    def test_dns_redundancy_keeps_asp(self, design_evaluations):
        """Paper: designs 1 and 2 have the same ASP after patch."""
        d1 = design_evaluations[0].after.security.attack_success_probability
        d2 = design_evaluations[1].after.security.attack_success_probability
        assert d1 == pytest.approx(d2)

    def test_app_design_has_best_coa(self, design_evaluations):
        best = max(design_evaluations, key=lambda e: e.after.coa)
        assert best.label == "1 DNS + 1 WEB + 2 APP + 1 DB"

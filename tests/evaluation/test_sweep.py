"""Tests for design-space sweeps and Pareto analysis."""

from __future__ import annotations

import pytest

from repro.enterprise import RedundancyDesign
from repro.evaluation import enumerate_designs, pareto_front, sweep_designs
from repro.errors import ValidationError


class TestEnumeration:
    def test_counts(self):
        designs = list(enumerate_designs(["a", "b"], max_replicas=2))
        assert len(designs) == 4

    def test_max_total_budget(self):
        designs = list(enumerate_designs(["a", "b"], max_replicas=3, max_total=4))
        assert all(d.total_servers <= 4 for d in designs)
        assert len(designs) == 6  # (1,1)(1,2)(1,3)(2,1)(2,2)(3,1)

    def test_empty_roles(self):
        assert list(enumerate_designs([], max_replicas=2)) == []

    def test_invalid_max_replicas(self):
        with pytest.raises(ValidationError):
            list(enumerate_designs(["a"], max_replicas=0))

    def test_paper_roles_exhaustive(self):
        designs = list(
            enumerate_designs(["dns", "web", "app", "db"], max_replicas=2)
        )
        assert len(designs) == 16
        assert RedundancyDesign({"dns": 1, "web": 1, "app": 1, "db": 1}) in designs


class TestSweepAndPareto:
    def test_sweep_evaluates_all(self, case_study, critical_policy):
        designs = [
            RedundancyDesign({"dns": 1, "web": 1, "app": 1, "db": 1}),
            RedundancyDesign({"dns": 1, "web": 1, "app": 2, "db": 1}),
        ]
        evaluations = sweep_designs(case_study, critical_policy, designs)
        assert [e.design for e in evaluations] == designs

    def test_pareto_front_of_paper_designs(self, design_evaluations):
        front = pareto_front(design_evaluations)
        labels = {e.label for e in front}
        # D1 (lowest ASP, lowest COA), D2 (same ASP, better COA) and D4
        # (higher ASP, best COA) are non-dominated; D1 is dominated by D2.
        assert "2 DNS + 1 WEB + 1 APP + 1 DB" in labels
        assert "1 DNS + 1 WEB + 2 APP + 1 DB" in labels
        assert "1 DNS + 1 WEB + 1 APP + 1 DB" not in labels

    def test_dominated_designs_excluded(self, design_evaluations):
        front = pareto_front(design_evaluations)
        # D3 is dominated by D4 (same ASP, higher COA) and D5 likewise.
        labels = {e.label for e in front}
        assert "1 DNS + 2 WEB + 1 APP + 1 DB" not in labels
        assert "1 DNS + 1 WEB + 1 APP + 2 DB" not in labels

    def test_pareto_front_before_patch(self, design_evaluations):
        front = pareto_front(design_evaluations, after_patch=False)
        # before patch ASP = 1.0 everywhere: only max-COA survives
        assert [e.label for e in front] == ["1 DNS + 1 WEB + 2 APP + 1 DB"]

"""Tests for the Eq. (3)/(4) requirement functions and paper regions."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.evaluation import (
    MultiMetricRequirement,
    TwoMetricRequirement,
    satisfying_designs,
)
from repro.evaluation.requirements import (
    PAPER_REGION_1_MULTI_METRIC,
    PAPER_REGION_1_TWO_METRIC,
    PAPER_REGION_2_MULTI_METRIC,
    PAPER_REGION_2_TWO_METRIC,
)


class TestPaperRegions:
    """Section IV: the exact design selections published in the paper."""

    def test_eq3_region_1_selects_d4_and_d5(self, design_evaluations):
        selected = satisfying_designs(design_evaluations, PAPER_REGION_1_TWO_METRIC)
        assert [e.label for e in selected] == [
            "1 DNS + 1 WEB + 2 APP + 1 DB",
            "1 DNS + 1 WEB + 1 APP + 2 DB",
        ]

    def test_eq3_region_2_selects_d2(self, design_evaluations):
        selected = satisfying_designs(design_evaluations, PAPER_REGION_2_TWO_METRIC)
        assert [e.label for e in selected] == ["2 DNS + 1 WEB + 1 APP + 1 DB"]

    def test_eq4_region_1_selects_d4(self, design_evaluations):
        selected = satisfying_designs(
            design_evaluations, PAPER_REGION_1_MULTI_METRIC
        )
        assert [e.label for e in selected] == ["1 DNS + 1 WEB + 2 APP + 1 DB"]

    def test_eq4_region_2_selects_d2(self, design_evaluations):
        selected = satisfying_designs(
            design_evaluations, PAPER_REGION_2_MULTI_METRIC
        )
        assert [e.label for e in selected] == ["2 DNS + 1 WEB + 1 APP + 1 DB"]

    def test_before_patch_nothing_satisfies_region_1(self, design_evaluations):
        """Before patch every design has ASP = 1.0 > 0.2."""
        selected = satisfying_designs(
            design_evaluations, PAPER_REGION_1_TWO_METRIC, after_patch=False
        )
        assert selected == []


class TestRequirementSemantics:
    def test_two_metric_bounds_inclusive(self, design_evaluations):
        snapshot = design_evaluations[3].after  # D4
        exact = TwoMetricRequirement(
            asp_upper=snapshot.security.attack_success_probability,
            coa_lower=snapshot.coa,
        )
        assert exact.satisfied_by(snapshot)

    def test_two_metric_asp_violation(self, design_evaluations):
        snapshot = design_evaluations[3].after
        tight = TwoMetricRequirement(asp_upper=0.01, coa_lower=0.0)
        assert not tight.satisfied_by(snapshot)

    def test_two_metric_coa_violation(self, design_evaluations):
        snapshot = design_evaluations[3].after
        tight = TwoMetricRequirement(asp_upper=1.0, coa_lower=0.9999)
        assert not tight.satisfied_by(snapshot)

    def test_multi_metric_each_bound_matters(self, design_evaluations):
        snapshot = design_evaluations[4].after  # D5: NoEV=10
        loose = MultiMetricRequirement(1.0, 10, 10, 10, 0.0)
        assert loose.satisfied_by(snapshot)
        for field, value in [
            ("asp_upper", 0.0),
            ("noev_upper", 9),
            ("noap_upper", 1),
            ("noep_upper", 0),
            ("coa_lower", 1.0),
        ]:
            bounds = dict(
                asp_upper=1.0, noev_upper=10, noap_upper=10, noep_upper=10,
                coa_lower=0.0,
            )
            bounds[field] = value
            assert not MultiMetricRequirement(**bounds).satisfied_by(snapshot), field

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValidationError):
            TwoMetricRequirement(asp_upper=1.5, coa_lower=0.5)
        with pytest.raises(ValidationError):
            MultiMetricRequirement(0.5, -1, 1, 1, 0.5)

"""Tests for the structure-sharing sweep pipeline.

Covers the canonical pattern layer (:mod:`repro.availability.grouped`),
the shared-memory transport (:mod:`repro.evaluation.shared_memory`), the
engine wiring (sharing on/off x serial/thread/process byte-identity),
the solve-count reduction and worker failure reporting.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.availability.grouped import (
    CoaStructure,
    build_canonical_net,
    coa_structure,
    design_layout,
)
from repro.enterprise import (
    HeterogeneousDesign,
    RedundancyDesign,
    paper_variant_space,
)
from repro.errors import EvaluationError
from repro.evaluation import AvailabilityEvaluator, SweepEngine
from repro.evaluation.shared_memory import (
    SharedSweepContext,
    initialize_worker,
    pack_arrays,
    read_arrays,
    shared_evaluate_chunk,
)
from repro.evaluation.sweep import enumerate_designs
from repro.srn import explore
from repro.vulnerability.diversity import diversity_database


@pytest.fixture(scope="module")
def space27():
    return list(enumerate_designs(["dns", "web", "app"], max_replicas=3))


@pytest.fixture(scope="module")
def variant_space():
    return paper_variant_space()


class TestCanonicalLayout:
    def test_same_counts_multiset_shares_layout(self):
        a, _ = design_layout(RedundancyDesign({"dns": 1, "web": 2}))
        b, _ = design_layout(RedundancyDesign({"dns": 2, "web": 1}))
        assert a == b

    def test_different_multisets_differ(self):
        a, _ = design_layout(RedundancyDesign({"dns": 1, "web": 2}))
        b, _ = design_layout(RedundancyDesign({"dns": 2, "web": 2}))
        assert a != b

    def test_heterogeneous_tier_coupling_in_layout(self):
        space = paper_variant_space()
        split = HeterogeneousDesign(
            {"web": {space["web"][0]: 1, space["web"][1]: 1}}
        )
        flat = RedundancyDesign({"dns": 1, "web": 1})
        # one tier of two single-server groups != two one-server tiers
        assert design_layout(split)[0] != design_layout(flat)[0]

    def test_slots_follow_canonical_order(self):
        layout, slots = design_layout(
            RedundancyDesign({"dns": 2, "web": 1, "app": 2})
        )
        assert layout.counts == (1, 2, 2)
        assert [slot.role for slot in slots] == ["web", "dns", "app"]

    def test_single_variant_maps_like_homogeneous(self, case_study):
        counts = {"dns": 1, "web": 2, "app": 2, "db": 1}
        homog = RedundancyDesign(counts)
        hetero = HeterogeneousDesign(
            {role: {case_study.roles[role]: c} for role, c in counts.items()}
        )
        assert design_layout(homog)[0] == design_layout(hetero)[0]
        assert [s.count for s in design_layout(homog)[1]] == [
            s.count for s in design_layout(hetero)[1]
        ]

    def test_27_designs_10_patterns(self, space27):
        layouts = {design_layout(d)[0] for d in space27}
        assert len(layouts) == 10


class TestCoaStructure:
    def test_edges_match_exploration_rates(self, availability_evaluator):
        design = RedundancyDesign({"dns": 1, "web": 2, "app": 2})
        layout, slots = design_layout(design)
        rates = availability_evaluator.slot_rates(slots)
        pairs = [
            (float(rates[2 * i]), float(rates[2 * i + 1]))
            for i in range(len(slots))
        ]
        structure = coa_structure(layout, pairs)
        graph = explore(build_canonical_net(layout, pairs))
        values = structure.rate_values(rates)
        assert {
            (int(s), int(d)): v
            for s, d, v in zip(structure.src, structure.dst, values)
        } == graph.rates

    def test_array_roundtrip(self, availability_evaluator):
        design = RedundancyDesign({"dns": 2, "web": 1})
        structure, rates = availability_evaluator.coa_structure_for(design)
        rebuilt = CoaStructure.from_arrays(
            structure.layout, structure.to_arrays()
        )
        assert rebuilt.coa(rates).hex() == structure.coa(rates).hex()

    def test_rate_vector_shape_checked(self, availability_evaluator):
        design = RedundancyDesign({"dns": 1})
        structure, _ = availability_evaluator.coa_structure_for(design)
        with pytest.raises(EvaluationError):
            structure.rate_values([1.0, 2.0, 3.0])


class TestEvaluatorSharing:
    def test_grouped_bitwise_equal_to_per_design(
        self, case_study, critical_policy, space27
    ):
        shared = AvailabilityEvaluator(case_study, critical_policy)
        fresh = AvailabilityEvaluator(
            case_study, critical_policy, structure_sharing=False
        )
        for design in space27:
            assert shared.coa(design).hex() == fresh.coa(design).hex()
        assert shared.solve_stats["structure_builds"] == 10
        assert fresh.solve_stats["structure_builds"] == len(space27)

    def test_transient_bitwise_equal(self, case_study, critical_policy, space27):
        times = [0.0, 24.0, 360.0, 720.0]
        shared = AvailabilityEvaluator(case_study, critical_policy)
        fresh = AvailabilityEvaluator(
            case_study, critical_policy, structure_sharing=False
        )
        for design in space27[::5]:
            a = shared.transient_coa(design, times)
            b = fresh.transient_coa(design, times)
            assert a.tobytes() == b.tobytes()

    def test_canonical_close_to_legacy_model(
        self, availability_evaluator, example_design
    ):
        canonical = availability_evaluator.coa(example_design)
        legacy = availability_evaluator.network_model(
            example_design
        ).capacity_oriented_availability()
        assert canonical == pytest.approx(legacy, abs=1e-12)

    def test_mixed_variant_canonical_matches_model(
        self, case_study, critical_policy, variant_space
    ):
        design = HeterogeneousDesign(
            {
                "web": {
                    variant_space["web"][0]: 2,
                    variant_space["web"][1]: 1,
                },
                "db": {variant_space["db"][0]: 1},
            }
        )
        evaluator = AvailabilityEvaluator(
            case_study, critical_policy, database=diversity_database()
        )
        assert evaluator.coa(design) == pytest.approx(
            evaluator.network_model(design).capacity_oriented_availability(),
            abs=1e-12,
        )


class TestSharedMemoryTransport:
    def test_pack_read_roundtrip(self):
        arrays = {
            "a": np.arange(6, dtype=float).reshape(2, 3),
            "b": np.array([1, 5, 7], dtype=np.intp),
            "c": np.array([], dtype=float),
        }
        segment, index = pack_arrays(arrays)
        try:
            out = read_arrays(segment, index)
            for name, array in arrays.items():
                assert out[name].dtype == array.dtype
                assert out[name].tobytes() == array.tobytes()
                assert out[name].shape == array.shape
        finally:
            segment.close()
            segment.unlink()

    def test_context_primes_worker_bitwise(
        self, case_study, critical_policy, space27
    ):
        designs = space27[:6]
        context = SharedSweepContext.build(
            case_study, critical_policy, None, designs
        )
        try:
            initialize_worker(context.worker_payload())
            shared = shared_evaluate_chunk(designs)
        finally:
            context.unlink()
        reference = SweepEngine(
            case_study=case_study, policy=critical_policy
        ).evaluate(designs)
        for a, b in zip(shared, reference):
            assert a.after.coa.hex() == b.after.coa.hex()
            assert a.before == b.before and a.after == b.after

    def test_context_unlinks_segment(self, case_study, critical_policy):
        context = SharedSweepContext.build(
            case_study,
            critical_policy,
            None,
            [RedundancyDesign({"dns": 1})],
        )
        name = context.segment_name
        context.unlink()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
        context.unlink()  # idempotent

    def test_engine_unlinks_after_sweep(
        self, case_study, critical_policy, space27, monkeypatch
    ):
        created: list[str] = []
        original = SharedSweepContext.build.__func__

        def recording_build(cls, *args, **kwargs):
            context = original(cls, *args, **kwargs)
            created.append(context.segment_name)
            return context

        monkeypatch.setattr(
            SharedSweepContext, "build", classmethod(recording_build)
        )
        engine = SweepEngine(
            case_study=case_study,
            policy=critical_policy,
            executor="process",
            max_workers=2,
            chunk_size=3,
        )
        engine.evaluate(space27[:6])
        assert created, "process sweep did not use the shared-memory path"
        for name in created:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_engine_unlinks_when_pool_crashes(
        self, case_study, critical_policy, space27, monkeypatch
    ):
        from repro.evaluation import engine as engine_module

        created: list[str] = []
        original = SharedSweepContext.build.__func__

        def recording_build(cls, *args, **kwargs):
            context = original(cls, *args, **kwargs)
            created.append(context.segment_name)
            return context

        monkeypatch.setattr(
            SharedSweepContext, "build", classmethod(recording_build)
        )

        def broken_run(self, fn, batches, initializer, initargs):
            raise RuntimeError("worker pool exploded")

        monkeypatch.setattr(
            engine_module.ProcessExecutor, "run_with_initializer", broken_run
        )
        engine = SweepEngine(
            case_study=case_study,
            policy=critical_policy,
            executor="process",
            max_workers=2,
            chunk_size=3,
        )
        with pytest.raises(RuntimeError):
            engine.evaluate(space27[:6])
        assert created
        for name in created:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_uninitialized_worker_fails_loudly(self, monkeypatch):
        from repro.evaluation import shared_memory as sm

        monkeypatch.setattr(sm, "_WORKER", None)
        with pytest.raises(EvaluationError):
            shared_evaluate_chunk([RedundancyDesign({"dns": 1})])


class TestEngineSharingParity:
    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_sweep_byte_identical_on_vs_off(
        self, case_study, critical_policy, space27, executor
    ):
        designs = space27[:9]
        kwargs = (
            {} if executor == "serial" else {"max_workers": 2, "chunk_size": 3}
        )
        on = SweepEngine(
            case_study=case_study,
            policy=critical_policy,
            executor=executor,
            **kwargs,
        ).evaluate(designs)
        off = SweepEngine(
            case_study=case_study,
            policy=critical_policy,
            executor=executor,
            structure_sharing=False,
            **kwargs,
        ).evaluate(designs)
        for a, b in zip(on, off):
            assert a.after.coa.hex() == b.after.coa.hex()
            assert a.before == b.before and a.after == b.after

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_timeline_byte_identical_on_vs_off(
        self, case_study, critical_policy, space27, executor
    ):
        designs = space27[:6]
        times = (0.0, 120.0, 720.0)
        kwargs = (
            {} if executor == "serial" else {"max_workers": 2, "chunk_size": 2}
        )
        on = SweepEngine(
            case_study=case_study,
            policy=critical_policy,
            executor=executor,
            **kwargs,
        ).timeline(designs, times)
        off = SweepEngine(
            case_study=case_study,
            policy=critical_policy,
            executor=executor,
            structure_sharing=False,
            **kwargs,
        ).timeline(designs, times)
        for a, b in zip(on, off):
            assert a.coa == b.coa
            assert a.completion_probability == b.completion_probability
            assert a.unpatched_fraction == b.unpatched_fraction
            assert a.mean_time_to_completion == b.mean_time_to_completion
            assert a.before == b.before and a.after == b.after

    @pytest.mark.parametrize("hetero_first", [False, True])
    def test_mixed_population_process_parity(
        self, case_study, critical_policy, variant_space, hetero_first
    ):
        # hetero_first guards the shared-memory aggregate-table layout:
        # variant rows must never displace the role-row block, whichever
        # design kind the precompute encounters first.
        designs = [
            RedundancyDesign({"dns": 1, "web": 2}),
            HeterogeneousDesign(
                {"web": {variant_space["web"][0]: 1, variant_space["web"][1]: 1}}
            ),
            RedundancyDesign({"dns": 2, "web": 1}),
        ]
        if hetero_first:
            designs = [designs[1], designs[0], designs[2]]
        serial = SweepEngine(
            case_study=case_study,
            policy=critical_policy,
            database=diversity_database(),
        ).evaluate(designs)
        process = SweepEngine(
            case_study=case_study,
            policy=critical_policy,
            database=diversity_database(),
            executor="process",
            max_workers=2,
            chunk_size=1,
        ).evaluate(designs)
        for a, b in zip(serial, process):
            assert a.after.coa.hex() == b.after.coa.hex()
            assert a.after == b.after


class TestWorkerFailureReporting:
    def test_domain_failure_carries_label_without_traceback(
        self, case_study, critical_policy
    ):
        bad = RedundancyDesign({"dns": 1, "nosuchrole": 1})
        engine = SweepEngine(
            case_study=case_study,
            policy=critical_policy,
            executor="process",
            max_workers=2,
            chunk_size=1,
        )
        with pytest.raises(EvaluationError) as excinfo:
            engine.evaluate(
                [RedundancyDesign({"dns": 1}), bad, RedundancyDesign({"web": 1})]
            )
        message = str(excinfo.value)
        assert bad.label in message
        assert "unknown role" in message
        # domain errors stay readable: no traceback dump in the CLI path
        assert "Traceback" not in message

    def test_unexpected_failure_carries_label_and_traceback(
        self, case_study, critical_policy
    ):
        from repro.evaluation.combined import evaluate_designs_shared

        design = RedundancyDesign({"dns": 1})

        class ExplodingSecurity:
            def before_patch(self, design):
                raise TypeError("boom from a plain bug")

        with pytest.raises(EvaluationError) as excinfo:
            evaluate_designs_shared(
                [design],
                case_study,
                critical_policy,
                security_evaluator=ExplodingSecurity(),
            )
        message = str(excinfo.value)
        assert design.label in message
        assert "TypeError" in message
        assert "Traceback" in message

    def test_serial_failure_matches_process_shape(
        self, case_study, critical_policy
    ):
        bad = RedundancyDesign({"nosuchrole": 2})
        with pytest.raises(EvaluationError) as excinfo:
            SweepEngine(
                case_study=case_study, policy=critical_policy
            ).evaluate([bad])
        assert bad.label in str(excinfo.value)

    def test_timeline_failure_carries_label(self, case_study, critical_policy):
        bad = RedundancyDesign({"nosuchrole": 2})
        engine = SweepEngine(case_study=case_study, policy=critical_policy)
        with pytest.raises(EvaluationError) as excinfo:
            engine.timeline([bad], (0.0, 1.0))
        assert bad.label in str(excinfo.value)

    def test_broken_pool_reports_batch(self, case_study, critical_policy):
        from repro.evaluation.engine import ProcessExecutor

        executor = ProcessExecutor(max_workers=2)
        designs = [RedundancyDesign({"dns": 1}), RedundancyDesign({"web": 1})]

        # os._exit kills the worker without an exception, the classic
        # BrokenProcessPool; the executor must translate it.
        with pytest.raises(EvaluationError) as excinfo:
            executor.run(_crash_worker, [(designs[:1],), (designs[1:],)])
        assert "worker died" in str(excinfo.value) or "pool broke" in str(
            excinfo.value
        )


def _crash_worker(designs):  # pragma: no cover - runs in the worker
    import os

    os._exit(1)


class TestSolveCountReduction:
    def test_exploration_counter_reduction(
        self, case_study, critical_policy, space27
    ):
        from repro.srn.reachability import exploration_count

        shared = AvailabilityEvaluator(case_study, critical_policy)
        before = exploration_count()
        for design in space27:
            shared.coa(design)
        shared_explorations = exploration_count() - before

        fresh = AvailabilityEvaluator(
            case_study, critical_policy, structure_sharing=False
        )
        before = exploration_count()
        for design in space27:
            fresh.coa(design)
        fresh_explorations = exploration_count() - before

        # lower-layer server SRNs add a constant 3 explorations to each
        assert shared_explorations < fresh_explorations
        assert shared_explorations - 3 == 10
        assert fresh_explorations - 3 == len(space27)

"""Tests for the resident evaluation service (``repro serve``)."""

from __future__ import annotations

import json
import os
import signal
import threading
import time

import pytest

from repro.errors import EvaluationError
from repro.evaluation import SweepEngine, enumerate_designs
from repro.evaluation.service import (
    EvaluationService,
    ServiceClient,
    sweep_response,
    timeline_response,
)


@pytest.fixture(scope="module")
def serial_service():
    """One in-process service (serial engine) shared by the read-only tests."""
    service = EvaluationService(executor="serial", max_designs=32)
    client = service.start_in_thread()
    yield service, client
    service.close()


def _wire(payload: dict) -> dict:
    """Round-trip a payload the way the HTTP layer does."""
    return json.loads(json.dumps(payload))


class TestEndpoints:
    def test_healthz_shape(self, serial_service):
        _, client = serial_service
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["engine"]["executor"] == "serial"
        assert health["engine"]["persistent_pool"] is False
        assert health["max_designs"] == 32
        assert health["uptime_s"] >= 0
        assert "requests_total" in health["counters"]
        assert "cache_info" in health["engine"]

    def test_sweep_matches_cli_payload(self, serial_service):
        _, client = serial_service
        served = client.sweep(roles=["dns", "web"], max_replicas=2)
        designs = list(enumerate_designs(["dns", "web"], max_replicas=2))
        expected = sweep_response(
            ["dns", "web"], 2, None, False, "serial", SweepEngine().evaluate(designs)
        )
        assert served == _wire(expected)

    def test_timeline_matches_cli_payload(self, serial_service):
        from repro.evaluation.timeline import default_time_grid
        from repro.patching.campaign import PatchCampaign

        _, client = serial_service
        served = client.timeline(
            roles=["dns"],
            max_replicas=2,
            horizon=100,
            points=4,
            phases="canary:0.1:48,fleet:1.0",
        )
        times = default_time_grid(100.0, 4)
        campaign = PatchCampaign.parse("canary:0.1:48,fleet:1.0")
        designs = list(enumerate_designs(["dns"], max_replicas=2))
        timelines = SweepEngine().timeline(designs, times, campaign=campaign)
        expected = timeline_response(
            ["dns"], 2, None, False, "serial", campaign, times, timelines
        )
        assert served == _wire(expected)
        assert served["schema_version"] == 3
        assert served["campaign"]["phases"][0]["name"] == "canary"

    def test_variants_space_served(self, serial_service):
        _, client = serial_service
        served = client.sweep(roles=["web"], max_replicas=1, variants=True)
        assert served["variants"] is True
        assert served["design_count"] >= 1
        assert all("variants" in design for design in served["designs"])

    def test_repeat_request_hits_response_memory(self, serial_service):
        _, client = serial_service
        first = client.sweep(roles=["dns"], max_replicas=2)
        before = client.metrics()["counters"]["response_cache_hits"]
        second = client.sweep(roles=["dns"], max_replicas=2)
        after = client.metrics()["counters"]["response_cache_hits"]
        assert second == first
        assert after == before + 1

    def test_roles_accept_comma_string(self, serial_service):
        _, client = serial_service
        served = client.sweep(roles="dns,web", max_replicas=1)
        assert served["roles"] == ["dns", "web"]


class TestValidation:
    def test_unknown_field_is_400(self, serial_service):
        _, client = serial_service
        status, body = client.request("POST", "/sweep", {"bogus": 1})
        assert status == 400
        assert "bogus" in body["error"]

    def test_budget_enforced(self, serial_service):
        _, client = serial_service
        with pytest.raises(EvaluationError, match="budget"):
            client.sweep(roles=["dns"], max_replicas=9, max_designs=4)

    def test_request_cannot_raise_service_budget(self, serial_service):
        # 4 roles x max_replicas 3 = 81 designs > the service's 32 cap,
        # regardless of the huge per-request budget.
        _, client = serial_service
        with pytest.raises(EvaluationError, match="budget"):
            client.sweep(max_replicas=3, max_designs=10_000)

    def test_campaign_and_phases_exclusive(self, serial_service):
        _, client = serial_service
        status, body = client.request(
            "POST",
            "/timeline",
            {"campaign": {"phases": [{"name": "x"}]}, "phases": "x:1"},
        )
        assert status == 400
        assert "mutually exclusive" in body["error"]

    def test_bad_json_body_is_400(self, serial_service):
        import http.client

        service, _ = serial_service
        host, port = service.address
        connection = http.client.HTTPConnection(host, port, timeout=30)
        try:
            connection.request(
                "POST",
                "/sweep",
                body=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            body = json.loads(response.read())
        finally:
            connection.close()
        assert response.status == 400
        assert "invalid JSON" in body["error"]

    @pytest.mark.parametrize(
        "payload",
        [
            {"roles": 7},
            {"roles": []},
            {"max_replicas": 0},
            {"max_replicas": True},
            {"max_total": -1},
        ],
    )
    def test_bad_space_fields_are_400(self, serial_service, payload):
        _, client = serial_service
        status, _ = client.request("POST", "/sweep", payload)
        assert status == 400

    @pytest.mark.parametrize(
        "payload",
        [
            {"times": []},
            {"times": ["soon"]},
            {"horizon": "late"},
            {"points": 2.5},
            {"phases": ["canary"]},
        ],
    )
    def test_bad_timeline_fields_are_400(self, serial_service, payload):
        _, client = serial_service
        status, _ = client.request("POST", "/timeline", payload)
        assert status == 400

    def test_unknown_path_is_404(self, serial_service):
        _, client = serial_service
        status, body = client.request("GET", "/nope")
        assert status == 404
        assert "/sweep" in body["error"]

    def test_wrong_method_is_405(self, serial_service):
        _, client = serial_service
        assert client.request("GET", "/sweep")[0] == 405
        assert client.request("POST", "/healthz")[0] == 405


class TestDedup:
    def test_identical_inflight_requests_share_one_computation(self):
        service = EvaluationService(executor="serial", max_designs=32)
        original = service._sweep_job
        started, release = threading.Event(), threading.Event()

        def slow_job(space, designs):
            started.set()
            release.wait(timeout=30)
            return original(space, designs)

        service._sweep_job = slow_job
        client = service.start_in_thread()
        try:
            results = [None] * 4

            def hit(position):
                results[position] = client.sweep(roles=["dns"], max_replicas=2)

            threads = [
                threading.Thread(target=hit, args=(position,))
                for position in range(4)
            ]
            for thread in threads:
                thread.start()
            assert started.wait(timeout=30)
            time.sleep(0.2)  # let the rest queue up behind the in-flight key
            release.set()
            for thread in threads:
                thread.join(timeout=60)
            counters = client.metrics()["counters"]
            assert counters["computed"] == 1
            assert (
                counters["dedup_hits"] + counters["response_cache_hits"] == 3
            )
            assert all(result == results[0] for result in results)
        finally:
            release.set()
            service.close()


class TestWarmPoolService:
    def test_process_service_parity_and_killed_worker_recovery(self):
        service = EvaluationService(executor="process", max_designs=64)
        client = service.start_in_thread()
        try:
            first = client.sweep(roles=["dns", "web"], max_replicas=2)
            expected = sweep_response(
                ["dns", "web"],
                2,
                None,
                False,
                "process",
                SweepEngine().evaluate(
                    list(enumerate_designs(["dns", "web"], max_replicas=2))
                ),
            )
            assert first == _wire(expected)
            assert client.healthz()["engine"]["persistent_pool"] is True

            # Kill a warm worker between requests, then force a real
            # recompute: the pool must recycle, not the request fail.
            pool = service.engine.executor._pool
            assert pool is not None
            os.kill(next(iter(pool._processes)), signal.SIGKILL)
            service.engine.clear_cache()
            service._responses.clear()
            second = client.sweep(roles=["dns", "web"], max_replicas=2)
            assert second == first
            assert client.healthz()["engine"]["pool_recycles"] == 1
        finally:
            service.close()


class TestLifecycle:
    def test_start_twice_raises(self):
        service = EvaluationService(executor="serial")
        client = service.start_in_thread()
        try:
            with pytest.raises(EvaluationError, match="already started"):
                service.start_in_thread()
            assert client.healthz()["status"] == "ok"
        finally:
            service.close()

    def test_close_is_idempotent_and_frees_the_port(self):
        service = EvaluationService(executor="serial")
        client = service.start_in_thread()
        host, port = service.address
        assert client.healthz()["status"] == "ok"
        service.close()
        service.close()
        probe = ServiceClient(host, port, timeout=5)
        with pytest.raises(EvaluationError):
            probe.wait_until_ready(timeout=1.0, interval=0.1)

    def test_context_manager_closes(self):
        with EvaluationService(executor="serial") as service:
            client = service.start_in_thread()
            assert client.healthz()["status"] == "ok"
        assert service._closed

    def test_invalid_max_designs_rejected(self):
        with pytest.raises(Exception):
            EvaluationService(executor="serial", max_designs=0)

    def test_client_reports_unreachable_service(self):
        client = ServiceClient("127.0.0.1", 1, timeout=2)
        with pytest.raises(EvaluationError, match="not ready"):
            client.wait_until_ready(timeout=0.5, interval=0.1)


class TestObservability:
    def test_metrics_includes_registry(self, serial_service):
        _, client = serial_service
        client.sweep(roles=["dns"], max_replicas=1)
        payload = client.metrics()
        registry = payload["registry"]
        assert "repro_service_requests_total" in registry
        entry = registry["repro_service_requests_total"]
        assert entry["kind"] == "counter"
        assert any(
            series["labels"].get("endpoint") == "/sweep"
            for series in entry["series"]
        )

    def test_latency_aggregate_shape(self, serial_service):
        _, client = serial_service
        client.sweep(roles=["dns"], max_replicas=1)
        stats = client.metrics()["latency"]["/sweep"]
        assert set(stats) == {
            "count",
            "total_s",
            "mean_s",
            "min_s",
            "max_s",
            "last_s",
        }
        assert stats["count"] >= 1
        assert 0 <= stats["min_s"] <= stats["mean_s"] <= stats["max_s"]
        assert stats["mean_s"] == pytest.approx(
            stats["total_s"] / stats["count"], abs=1e-5
        )

    def test_counter_monotonicity_across_request_mix(self, serial_service):
        _, client = serial_service
        payload = {"roles": ["web"], "max_replicas": 2}
        client.sweep(**payload)  # computed (or already cached)
        before = client.metrics()["counters"]

        client.sweep(**payload)  # response-memory hit
        status, _ = client.request("POST", "/sweep", {"roles": []})  # error
        assert status == 400
        after = client.metrics()["counters"]

        assert after["requests_total"] > before["requests_total"]
        assert after["response_cache_hits"] == before["response_cache_hits"] + 1
        assert after["errors"] == before["errors"] + 1
        assert after["computed"] == before["computed"]
        for key in ("requests_total", "response_cache_hits", "errors"):
            assert after[key] >= before[key]

    def test_error_requests_record_latency(self, serial_service):
        _, client = serial_service
        before = (
            client.metrics()["latency"].get("/sweep#errors", {}).get("count", 0)
        )
        status, _ = client.request("POST", "/sweep", {"roles": []})
        assert status == 400
        stats = client.metrics()["latency"]["/sweep#errors"]
        assert stats["count"] == before + 1
        assert stats["min_s"] >= 0

    def test_prometheus_exposition(self, serial_service):
        _, client = serial_service
        client.sweep(roles=["dns"], max_replicas=1)
        text = client.metrics_text()
        lines = text.splitlines()
        assert "# TYPE repro_service_requests_total counter" in lines
        assert any(
            line.startswith("repro_service_requests_total{")
            and 'endpoint="/metrics"' in line
            for line in lines
        )
        assert "# TYPE repro_service_request_seconds histogram" in lines
        assert any(
            line.startswith("repro_service_request_seconds_bucket{")
            and 'le="+Inf"' in line
            for line in lines
        )
        # Every sample line parses as <name>{labels} <number> or <name> <number>
        for line in lines:
            if not line or line.startswith("#"):
                continue
            name_part, _, value = line.rpartition(" ")
            assert name_part
            float(value)

    def test_metrics_without_accept_header_stays_json(self, serial_service):
        _, client = serial_service
        status, payload = client.request("GET", "/metrics")
        assert status == 200
        assert isinstance(payload, dict)
        assert set(payload) >= {"counters", "latency", "registry"}

    def test_healthz_reports_registry(self, serial_service):
        _, client = serial_service
        health = client.healthz()
        assert "registry" in health
        assert "repro_service_requests_total" in health["registry"]

    def test_access_log_line_shape(self, serial_service, caplog):
        import logging

        _, client = serial_service
        with caplog.at_level(logging.INFO, logger="repro.serve.access"):
            client.healthz()
            # The access line is written by the server thread after the
            # response; give it a moment to land.
            deadline = time.monotonic() + 5.0
            records = []
            while not records and time.monotonic() < deadline:
                records = [
                    r
                    for r in caplog.records
                    if r.name == "repro.serve.access"
                ]
                if not records:
                    time.sleep(0.01)
        assert records
        line = json.loads(records[-1].getMessage())
        assert line["method"] == "GET"
        assert line["path"] == "/v1/healthz"
        assert line["status"] == 200
        assert line["duration_ms"] >= 0

"""Tests for the /v1 service surface: envelope, lanes, priorities,
streaming, and the connection-handling regression."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.errors import EvaluationError
from repro.evaluation import SweepEngine, enumerate_designs
from repro.evaluation.service import EvaluationService, sweep_response


@pytest.fixture(scope="module")
def serial_service():
    """One in-process service (serial engine, two lanes) shared by the
    read-only tests of this module."""
    service = EvaluationService(executor="serial", max_designs=32, lanes=2)
    client = service.start_in_thread()
    yield service, client
    service.close()


def _wire(payload: dict) -> dict:
    return json.loads(json.dumps(payload))


class TestEnvelope:
    def test_v1_sweep_matches_legacy(self, serial_service):
        _, client = serial_service
        status, legacy = client.request(
            "POST", "/sweep", {"roles": ["dns", "web"], "max_replicas": 2}
        )
        assert status == 200
        v1 = client.sweep(roles=["dns", "web"], max_replicas=2)
        assert v1 == legacy
        assert v1["schema_version"] == 3

    def test_priority_and_deadline_fields_accepted(self, serial_service):
        _, client = serial_service
        served = client.sweep(
            roles=["dns"],
            max_replicas=2,
            priority="batch",
            deadline_ms=60_000,
        )
        assert served["design_count"] == 2

    def test_unknown_envelope_field_is_invalid_request(self, serial_service):
        _, client = serial_service
        status, body = client.request(
            "POST", "/v1/sweep", {"space": {"roles": ["dns"]}, "bogus": 1}
        )
        assert status == 400
        assert body["error"]["code"] == "invalid_request"
        assert "bogus" in body["error"]["message"]
        assert set(body["error"]) == {"code", "message", "detail"}

    def test_unknown_priority_rejected(self, serial_service):
        _, client = serial_service
        status, body = client.request(
            "POST", "/v1/sweep", {"space": {"roles": ["dns"]}, "priority": "vip"}
        )
        assert status == 400
        assert body["error"]["code"] == "invalid_request"

    def test_over_budget_code(self, serial_service):
        _, client = serial_service
        status, body = client.request(
            "POST",
            "/v1/sweep",
            {"space": {"roles": ["dns", "web", "app", "db"], "max_replicas": 3}},
        )
        assert status == 400
        assert body["error"]["code"] == "over_budget"
        assert "budget" in body["error"]["message"]

    def test_evaluation_time_validation_error_is_invalid_request(
        self, serial_service
    ):
        """An unknown role only fails once the engine evaluates it, but
        it is still the client's mistake: 400, not 500/internal."""
        _, client = serial_service
        status, body = client.request(
            "POST", "/v1/sweep", {"space": {"roles": ["bogus"]}}
        )
        assert status == 400
        assert body["error"]["code"] == "invalid_request"
        assert "unknown role" in body["error"]["message"]

    def test_v1_unknown_path_is_not_found(self, serial_service):
        _, client = serial_service
        status, body = client.request("GET", "/v1/bogus")
        assert status == 404
        assert body["error"]["code"] == "not_found"

    def test_v1_wrong_method_code(self, serial_service):
        _, client = serial_service
        status, body = client.request("GET", "/v1/sweep")
        assert status == 405
        assert body["error"]["code"] == "method_not_allowed"

    def test_client_rejects_unknown_kwarg(self, serial_service):
        _, client = serial_service
        with pytest.raises(Exception, match="unknown sweep field"):
            client.sweep(roles=["dns"], horizon=10)

    def test_shard_option_filters_designs(self, serial_service):
        from repro.evaluation import api

        _, client = serial_service
        designs = list(enumerate_designs(["dns", "web"], max_replicas=2))
        full = client.sweep(roles=["dns", "web"], max_replicas=2)
        parts = [
            client.sweep(
                roles=["dns", "web"],
                max_replicas=2,
                shard={"index": index, "count": 2},
            )
            for index in range(2)
        ]
        assert sum(p["design_count"] for p in parts) == full["design_count"]
        for index, part in enumerate(parts):
            owned = [d for d in designs if api.shard_of(d, 2) == index]
            assert [d["label"] for d in part["designs"]] == [
                d.label for d in owned
            ]


class TestDeprecation:
    def test_legacy_path_answers_deprecation_header(self, serial_service):
        import http.client

        service, client = serial_service
        for path, deprecated in (("/healthz", True), ("/v1/healthz", False)):
            connection = http.client.HTTPConnection(
                client.host, client.port, timeout=30
            )
            try:
                connection.request("GET", path)
                response = connection.getresponse()
                response.read()
                header = response.getheader("Deprecation")
            finally:
                connection.close()
            assert (header == "true") is deprecated, path

    def test_legacy_counter_increments(self, serial_service):
        _, client = serial_service
        before = client.metrics()["counters"]["legacy_requests"]
        client.request("GET", "/healthz")
        after = client.metrics()["counters"]["legacy_requests"]
        assert after == before + 1
        registry = client.metrics()["registry"]
        entry = registry["repro_service_legacy_requests_total"]
        assert any(
            series["labels"].get("endpoint") == "/healthz"
            for series in entry["series"]
        )

    def test_v1_requests_do_not_touch_legacy_counter(self, serial_service):
        _, client = serial_service
        before = client.metrics()["counters"]["legacy_requests"]
        client.healthz()
        # metrics() itself is a /v1 call too.
        after = client.metrics()["counters"]["legacy_requests"]
        assert after == before


class TestLanes:
    def test_healthz_reports_lane_pool(self, serial_service):
        _, client = serial_service
        lanes = client.healthz()["lanes"]
        assert lanes["max_lanes"] == 2
        assert lanes["active"] >= 1
        contexts = [lane["context"] for lane in lanes["lanes"]]
        assert "default" in contexts
        default = lanes["lanes"][contexts.index("default")]
        assert default["engine"]["executor"] == "serial"
        assert {
            "busy",
            "queued_interactive",
            "queued_batch",
            "completed",
            "preemptions",
            "idle_s",
        } <= set(default)

    def test_scaled_request_runs_on_its_own_lane(self):
        from repro.enterprise import scaled_case_study

        with EvaluationService(
            executor="serial", max_designs=8, lanes=2
        ) as service:
            client = service.start_in_thread()
            served = client.sweep(scaled="3x2")
            case_study, design = scaled_case_study(3, 2)
            expected = sweep_response(
                list(design.roles),
                2,
                None,
                False,
                "serial",
                SweepEngine(case_study=case_study).evaluate([design]),
            )
            assert served == _wire(expected)
            contexts = [
                lane["context"] for lane in client.healthz()["lanes"]["lanes"]
            ]
            assert "scaled:3x2" in contexts

    def test_lane_pool_evicts_idle_lru_lane(self):
        with EvaluationService(
            executor="serial", max_designs=8, lanes=2
        ) as service:
            client = service.start_in_thread()
            client.sweep(scaled="2x2")
            client.sweep(scaled="3x2")  # pool full: default + one scaled
            lanes = client.healthz()["lanes"]
            assert lanes["active"] == 2
            assert lanes["evictions"] >= 1
            contexts = [lane["context"] for lane in lanes["lanes"]]
            assert "scaled:3x2" in contexts

    def test_lane_pooled_sweep_matches_single_engine_27_designs(self):
        roles = ["dns", "web", "app"]
        with EvaluationService(
            executor="serial", max_designs=64, lanes=2
        ) as service:
            client = service.start_in_thread()
            served = client.sweep(roles=roles, max_replicas=3)
            designs = list(enumerate_designs(roles, max_replicas=3))
            expected = sweep_response(
                roles, 3, None, False, "serial", SweepEngine().evaluate(designs)
            )
            assert served == _wire(expected)
            assert served["design_count"] == 27


class TestPriorities:
    def test_interactive_preempts_batch_on_shared_lane(self):
        """A batch sweep yields its lane at a chunk boundary (satellite:
        mixed-priority fairness, same-lane case)."""
        roles = ["dns", "web", "app", "db"]
        with EvaluationService(
            executor="serial", max_designs=128, lanes=1
        ) as service:
            client = service.start_in_thread()
            done: dict[str, float] = {}

            def run_batch():
                client.sweep(roles=roles, max_replicas=3, priority="batch")
                done["batch"] = time.monotonic()

            batch = threading.Thread(target=run_batch)
            batch.start()
            # Wait for the batch job to occupy the default lane.
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                lanes = client.healthz()["lanes"]["lanes"]
                if any(lane["busy"] for lane in lanes):
                    break
                time.sleep(0.005)
            client.sweep(roles=["dns"], max_replicas=1)
            done["interactive"] = time.monotonic()
            batch.join(timeout=120)
            assert "batch" in done
            assert done["interactive"] < done["batch"]
            lanes = client.healthz()["lanes"]
            default = next(
                lane
                for lane in lanes["lanes"]
                if lane["context"] == "default"
            )
            assert default["preemptions"] >= 1
            # The lane-wait histogram joined the engine's chunk-wait
            # family with queue="lane" children per priority.
            entry = client.metrics()["registry"][
                "repro_chunk_queue_wait_seconds"
            ]
            waits = {
                series["labels"]["priority"]: series
                for series in entry["series"]
                if series["labels"].get("queue") == "lane"
            }
            assert waits["interactive"]["count"] >= 1
            assert waits["batch"]["count"] >= 1

    def test_preempted_batch_result_matches_uncontended_run(self):
        """Preemption must not change the batch payload (chunks are
        re-served from the engine memo, not recomputed differently)."""
        roles = ["dns", "web", "app", "db"]
        with EvaluationService(
            executor="serial", max_designs=128, lanes=1
        ) as service:
            client = service.start_in_thread()
            result: dict[str, dict] = {}

            def run_batch():
                result["batch"] = client.sweep(
                    roles=roles, max_replicas=3, priority="batch"
                )

            batch = threading.Thread(target=run_batch)
            batch.start()
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if any(
                    lane["busy"]
                    for lane in client.healthz()["lanes"]["lanes"]
                ):
                    break
                time.sleep(0.005)
            client.sweep(roles=["web"], max_replicas=1)
            batch.join(timeout=120)
        designs = list(enumerate_designs(roles, max_replicas=3))
        expected = sweep_response(
            roles, 3, None, False, "serial", SweepEngine().evaluate(designs)
        )
        assert result["batch"] == _wire(expected)

    def test_scaled_batch_does_not_block_interactive(self):
        """Satellite: a batch --scaled sweep in flight must not delay an
        interactive 27-design request beyond one chunk boundary — with
        two lanes they never even share a queue."""
        with EvaluationService(
            executor="serial", max_designs=64, lanes=2
        ) as service:
            client = service.start_in_thread()
            order: list[str] = []

            def run_batch():
                client.sweep(scaled="6x4", priority="batch")
                order.append("batch")

            batch = threading.Thread(target=run_batch)
            batch.start()
            # Wait until the batch actually occupies its scaled lane.
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline and "batch" not in order:
                lanes = client.healthz()["lanes"]["lanes"]
                if any(
                    lane["context"] != "default" and lane["busy"]
                    for lane in lanes
                ):
                    break
                time.sleep(0.005)
            client.sweep(roles=["dns", "web", "app"], max_replicas=3)
            order.append("interactive")
            batch.join(timeout=180)
            assert order[0] == "interactive"
            entry = client.metrics()["registry"][
                "repro_chunk_queue_wait_seconds"
            ]
            interactive_waits = [
                series
                for series in entry["series"]
                if series["labels"].get("queue") == "lane"
                and series["labels"].get("priority") == "interactive"
            ]
            assert interactive_waits
            # The interactive request never queued behind the batch
            # sweep: its lane wait is bounded by scheduling noise, far
            # below one scaled chunk's solve time.
            assert interactive_waits[0]["max"] < 1.0


class TestStreaming:
    def test_sweep_stream_events(self):
        roles = ["dns", "web"]
        with EvaluationService(
            executor="serial", max_designs=16, lanes=1
        ) as service:
            client = service.start_in_thread()
            events = list(client.sweep_stream(roles=roles, max_replicas=2))
        kinds = [event["event"] for event in events]
        assert kinds[0] == "start"
        assert kinds[-1] == "complete"
        assert "chunk" in kinds
        start = events[0]
        assert start["schema_version"] == 3
        assert start["endpoint"] == "/sweep"
        assert start["design_count"] == 4
        streamed = [
            design["label"]
            for event in events
            if event["event"] == "chunk"
            for design in event["designs"]
        ]
        complete = events[-1]["response"]
        assert streamed == [d["label"] for d in complete["designs"]]
        designs = list(enumerate_designs(roles, max_replicas=2))
        expected = sweep_response(
            roles, 2, None, False, "serial", SweepEngine().evaluate(designs)
        )
        assert complete == _wire(expected)

    def test_memoised_designs_do_not_stream_again(self):
        with EvaluationService(
            executor="serial", max_designs=16, lanes=1
        ) as service:
            client = service.start_in_thread()
            first = list(client.sweep_stream(roles=["dns"], max_replicas=2))
            second = list(client.sweep_stream(roles=["dns"], max_replicas=2))
        assert any(event["event"] == "chunk" for event in first)
        # Second run: every design is in the engine memo, so no chunk
        # ever reaches the progress seam — but the complete payload is
        # identical.
        assert not any(event["event"] == "chunk" for event in second)
        assert second[-1]["response"] == first[-1]["response"]

    def test_timeline_stream_events(self):
        with EvaluationService(
            executor="serial", max_designs=16, lanes=1
        ) as service:
            client = service.start_in_thread()
            events = list(
                client.timeline_stream(
                    roles=["dns"], max_replicas=2, horizon=100, points=4
                )
            )
        kinds = [event["event"] for event in events]
        assert kinds[0] == "start"
        assert kinds[-1] == "complete"
        streamed = [
            design["label"]
            for event in events
            if event["event"] == "chunk"
            for design in event["designs"]
        ]
        complete = events[-1]["response"]
        assert complete["schema_version"] == 3
        assert streamed == [d["label"] for d in complete["designs"]]

    def test_stream_rejects_invalid_space(self, serial_service):
        _, client = serial_service
        with pytest.raises(EvaluationError, match="stream failed"):
            list(client.sweep_stream(roles=[]))


class TestConnectionHandling:
    def test_requests_send_connection_close(self, serial_service, monkeypatch):
        import http.client

        _, client = serial_service
        seen: list[dict] = []
        original = http.client.HTTPConnection.request

        def recording(self, method, url, body=None, headers=None, **kwargs):
            seen.append(dict(headers or {}))
            return original(
                self, method, url, body=body, headers=headers or {}, **kwargs
            )

        monkeypatch.setattr(http.client.HTTPConnection, "request", recording)
        client.healthz()
        client.sweep(roles=["dns"], max_replicas=1)
        assert seen
        assert all(
            headers.get("Connection") == "close" for headers in seen
        )

    def test_client_outlives_drained_server(self):
        """Regression: a client holding the address of a stopped service
        fails fast with a connection error, not a hang or a half-open
        socket reuse."""
        service = EvaluationService(executor="serial", max_designs=8)
        client = service.start_in_thread()
        assert client.healthz()["status"] == "ok"
        service.close()
        with pytest.raises(OSError):
            client.request("GET", "/v1/healthz")

"""Tests for the patch-timeline subsystem (transient design-space curves)."""

from __future__ import annotations

import math

import pytest

from repro.enterprise import (
    HeterogeneousDesign,
    RedundancyDesign,
    paper_designs,
    paper_variant_space,
)
from repro.errors import EvaluationError
from repro.evaluation import (
    AvailabilityEvaluator,
    SweepEngine,
    default_time_grid,
    evaluate_timeline,
    evaluate_timelines,
)
from repro.evaluation.timeline import _completion_chain, _patch_groups
from repro.vulnerability.diversity import diversity_database


@pytest.fixture(scope="module")
def grid():
    return default_time_grid(720.0, 7)


@pytest.fixture(scope="module")
def design_one():
    return paper_designs()[0]


@pytest.fixture(scope="module")
def timeline_one(design_one, grid):
    return evaluate_timeline(design_one, grid)


class TestDesignTimeline:
    def test_starts_all_up_and_unpatched(self, timeline_one):
        assert timeline_one.coa[0] == pytest.approx(1.0)
        assert timeline_one.unpatched_fraction[0] == pytest.approx(1.0)
        assert timeline_one.completion_probability[0] == 0.0

    def test_coa_converges_to_steady_state(self, design_one):
        timeline = evaluate_timeline(design_one, [0.0, 50_000.0])
        assert timeline.coa[-1] == pytest.approx(timeline.steady_coa, abs=1e-8)

    def test_completion_probability_monotone_to_one(self, design_one):
        timeline = evaluate_timeline(
            design_one, [0.0, 500.0, 2000.0, 10_000.0, 50_000.0]
        )
        curve = timeline.completion_probability
        assert all(b >= a - 1e-12 for a, b in zip(curve, curve[1:]))
        assert curve[-1] == pytest.approx(1.0, abs=1e-6)

    def test_unpatched_fraction_decays(self, timeline_one):
        curve = timeline_one.unpatched_fraction
        assert all(b <= a + 1e-12 for a, b in zip(curve, curve[1:]))

    def test_mean_time_to_completion_closed_form(self, timeline_one):
        # Four independent exponential patch clocks at the same rate:
        # E[max] = (1/lambda) * (1 + 1/2 + 1/3 + 1/4).
        from repro.enterprise import paper_case_study
        from repro.patching import CriticalVulnerabilityPolicy

        evaluator = AvailabilityEvaluator(
            paper_case_study(), CriticalVulnerabilityPolicy()
        )
        rate = evaluator.aggregate("dns").patch_rate
        expected = (1 + 1 / 2 + 1 / 3 + 1 / 4) / rate
        assert timeline_one.mean_time_to_completion == pytest.approx(expected)

    def test_security_curve_interpolates_exposure(self, timeline_one):
        curve = timeline_one.security_curve("ASP")
        before = timeline_one.before.as_dict()["ASP"]
        after = timeline_one.after.as_dict()["ASP"]
        assert curve[0] == pytest.approx(before)
        # decays toward the after-patch value with the unpatched fraction
        assert curve[-1] == pytest.approx(
            after + (before - after) * timeline_one.unpatched_fraction[-1]
        )
        with pytest.raises(EvaluationError):
            timeline_one.security_curve("NOPE")

    def test_security_curves_cover_all_metrics(self, timeline_one):
        curves = timeline_one.security_curves()
        assert set(curves) == set(timeline_one.before.as_dict())

    def test_redundancy_slows_completion(self, grid):
        # more replicas -> later expected completion (max of more clocks)
        single = evaluate_timeline(paper_designs()[0], grid)
        doubled = evaluate_timeline(
            RedundancyDesign({"dns": 2, "web": 2, "app": 2, "db": 2}), grid
        )
        assert (
            doubled.mean_time_to_completion > single.mean_time_to_completion
        )

    def test_validation(self, design_one):
        with pytest.raises(EvaluationError):
            evaluate_timeline(design_one, [])
        with pytest.raises(EvaluationError):
            evaluate_timeline(design_one, [-1.0, 2.0])
        with pytest.raises(EvaluationError):
            default_time_grid(0.0, 5)
        with pytest.raises(EvaluationError):
            default_time_grid(10.0, 1)


class TestHeterogeneousTimeline:
    def test_mixed_variant_design(self, grid):
        space = paper_variant_space()
        design = HeterogeneousDesign(
            {
                "dns": {space["dns"][0]: 1},
                "web": {space["web"][0]: 1, space["web"][1]: 1},
                "app": {space["app"][0]: 1},
                "db": {space["db"][0]: 1, space["db"][1]: 1},
            }
        )
        timeline = evaluate_timeline(design, grid, database=diversity_database())
        assert timeline.coa[0] == pytest.approx(1.0)
        assert timeline.unpatched_fraction[0] == pytest.approx(1.0)
        assert math.isfinite(timeline.mean_time_to_completion)
        # six servers -> six patch clocks: slower than the 4-server base
        base = evaluate_timeline(paper_designs()[0], grid)
        assert timeline.mean_time_to_completion > base.mean_time_to_completion

    def test_completion_chain_groups_per_variant(self):
        from repro.enterprise import paper_case_study
        from repro.patching import CriticalVulnerabilityPolicy

        space = paper_variant_space()
        design = HeterogeneousDesign(
            {"web": {space["web"][0]: 2, space["web"][1]: 1}}
        )
        evaluator = AvailabilityEvaluator(
            paper_case_study(),
            CriticalVulnerabilityPolicy(),
            database=diversity_database(),
        )
        groups = _patch_groups(evaluator, design)
        assert [(name, count) for name, count, _ in groups] == [
            ("web_apache", 2),
            ("web_nginx", 1),
        ]
        chain, full, zero = _completion_chain(groups)
        assert full == (2, 1)
        assert zero == (0, 0)
        assert chain.number_of_states() == 6


class TestEngineTimeline:
    def test_executors_byte_identical(self, grid):
        designs = paper_designs()
        reference = SweepEngine(executor="serial").timeline(designs, grid)
        for executor in ("thread", "process"):
            parallel = SweepEngine(executor=executor, max_workers=2).timeline(
                designs, grid
            )
            for a, b in zip(reference, parallel):
                assert a.coa == b.coa
                assert a.completion_probability == b.completion_probability
                assert a.unpatched_fraction == b.unpatched_fraction
                assert a.mean_time_to_completion == b.mean_time_to_completion
                assert a.before.as_dict() == b.before.as_dict()

    def test_memoised_per_design_and_grid(self, grid):
        engine = SweepEngine()
        designs = paper_designs()[:2]
        engine.timeline(designs, grid)
        misses = engine.cache_info["misses"]
        engine.timeline(designs, grid)
        assert engine.cache_info["misses"] == misses
        assert engine.cache_info["hits"] >= len(designs)
        # a different grid is a different computation
        engine.timeline(designs, [0.0, 1.0])
        assert engine.cache_info["misses"] > misses

    def test_evaluate_timelines_entrypoint_matches_engine(self, grid):
        designs = paper_designs()[:3]
        direct = evaluate_timelines(designs, grid)
        threaded = evaluate_timelines(designs, grid, executor="thread", max_workers=2)
        for a, b in zip(direct, threaded):
            assert a.coa == b.coa
            assert a.completion_probability == b.completion_probability

"""Tests for the upper-layer network model and COA (Table VI)."""

from __future__ import annotations

import pytest

from repro.availability import (
    NetworkAvailabilityModel,
    aggregate_service,
    coa_reward,
    paper_server_parameters,
    product_form_coa,
)
from repro.errors import EvaluationError
from repro.srn import Marking


@pytest.fixture(scope="module")
def aggregates():
    return {
        role: aggregate_service(params)
        for role, params in paper_server_parameters().items()
    }


@pytest.fixture(scope="module")
def example_model(aggregates):
    return NetworkAvailabilityModel(
        {"dns": 1, "web": 2, "app": 2, "db": 1}, aggregates
    )


class TestCoaReward:
    def test_reproduces_table_vi(self):
        """The generalized reward equals Table VI on the example network."""
        capacities = {"dns": 1, "web": 2, "app": 2, "db": 1}
        reward = coa_reward(capacities)
        index = {"Pdnsup": 0, "Pwebup": 1, "Pappup": 2, "Pdbup": 3}

        def value(dns, web, app, db):
            return reward(Marking(index, (dns, web, app, db)))

        assert value(1, 2, 2, 1) == pytest.approx(1.0)
        assert value(1, 1, 2, 1) == pytest.approx(0.83333, abs=1e-5)
        assert value(1, 2, 1, 1) == pytest.approx(0.83333, abs=1e-5)
        assert value(1, 1, 1, 1) == pytest.approx(0.66667, abs=1e-5)
        assert value(0, 2, 2, 1) == 0.0
        assert value(1, 0, 2, 1) == 0.0
        assert value(1, 2, 0, 1) == 0.0
        assert value(1, 2, 2, 0) == 0.0

    def test_empty_capacities_rejected(self):
        with pytest.raises(EvaluationError):
            coa_reward({})


class TestNetworkModel:
    def test_example_network_coa(self, example_model):
        """The paper's headline availability number: COA ~= 0.99707."""
        assert example_model.capacity_oriented_availability() == pytest.approx(
            0.99707, abs=5e-6
        )

    def test_matches_product_form(self, example_model, aggregates):
        closed = product_form_coa(
            {"dns": 1, "web": 2, "app": 2, "db": 1},
            {r: a.patch_rate for r, a in aggregates.items()},
            {r: a.recovery_rate for r, a in aggregates.items()},
        )
        assert example_model.capacity_oriented_availability() == pytest.approx(
            closed, abs=1e-12
        )

    def test_system_availability_exceeds_coa(self, example_model):
        system = example_model.system_availability()
        coa = example_model.capacity_oriented_availability()
        assert system >= coa

    def test_expected_running_servers(self, example_model):
        expected = example_model.expected_running_servers()
        assert 5.9 < expected < 6.0

    def test_service_up_distribution(self, example_model):
        distribution = example_model.service_up_distribution("web")
        assert set(distribution) == {0, 1, 2}
        assert sum(distribution.values()) == pytest.approx(1.0)
        assert distribution[2] > 0.99

    def test_unknown_service_distribution_rejected(self, example_model):
        with pytest.raises(EvaluationError):
            example_model.service_up_distribution("cache")

    def test_missing_aggregate_rejected(self, aggregates):
        with pytest.raises(EvaluationError):
            NetworkAvailabilityModel({"dns": 1, "cache": 1}, aggregates)

    def test_solution_is_cached(self, example_model):
        assert example_model.solve() is example_model.solve()


class TestDesignOrdering:
    def test_redundancy_improves_coa(self, aggregates):
        base = NetworkAvailabilityModel(
            {"dns": 1, "web": 1, "app": 1, "db": 1}, aggregates
        ).capacity_oriented_availability()
        for role in ("dns", "web", "app", "db"):
            counts = {"dns": 1, "web": 1, "app": 1, "db": 1}
            counts[role] = 2
            improved = NetworkAvailabilityModel(
                counts, aggregates
            ).capacity_oriented_availability()
            assert improved > base, role

    def test_app_redundancy_helps_most(self, aggregates):
        """Paper observation: duplicating the slowest-recovery tier wins."""
        coas = {}
        for role in ("dns", "web", "app", "db"):
            counts = {"dns": 1, "web": 1, "app": 1, "db": 1}
            counts[role] = 2
            coas[role] = NetworkAvailabilityModel(
                counts, aggregates
            ).capacity_oriented_availability()
        assert max(coas, key=coas.get) == "app"

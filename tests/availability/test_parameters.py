"""Tests for the Table IV parameter sets."""

from __future__ import annotations

import pytest

from repro.availability import (
    ComponentRates,
    PatchPipeline,
    ServerParameters,
    dns_server_parameters,
    paper_server_parameters,
)
from repro.errors import ValidationError


class TestComponentRates:
    def test_table_iv_defaults(self):
        rates = ComponentRates()
        assert 1.0 / rates.hardware_failure == pytest.approx(87600.0)
        assert 1.0 / rates.hardware_repair == pytest.approx(1.0)
        assert 1.0 / rates.os_failure == pytest.approx(1440.0)
        assert 1.0 / rates.os_repair == pytest.approx(1.0)
        assert 60.0 / rates.os_reboot == pytest.approx(10.0)  # minutes
        assert 1.0 / rates.service_failure == pytest.approx(336.0)
        assert 60.0 / rates.service_repair == pytest.approx(30.0)
        assert 60.0 / rates.service_reboot == pytest.approx(5.0)

    def test_rejects_zero_rate(self):
        with pytest.raises(ValidationError):
            ComponentRates(hardware_failure=0.0)


class TestPatchPipeline:
    def test_dns_durations(self):
        pipeline = PatchPipeline.from_vulnerability_counts(1, 2)
        assert 60.0 / pipeline.service_patch == pytest.approx(5.0)
        assert 60.0 / pipeline.os_patch == pytest.approx(20.0)
        assert 60.0 / pipeline.os_patch_reboot == pytest.approx(10.0)
        assert 60.0 / pipeline.service_patch_reboot == pytest.approx(5.0)

    def test_expected_downtime(self):
        pipeline = PatchPipeline.from_vulnerability_counts(1, 2)
        assert pipeline.expected_downtime_hours == pytest.approx(40.0 / 60.0)

    def test_zero_counts_use_negligible_stage(self):
        pipeline = PatchPipeline.from_vulnerability_counts(0, 0)
        assert 60.0 / pipeline.service_patch == pytest.approx(0.5)
        assert 60.0 / pipeline.os_patch == pytest.approx(0.5)

    def test_negative_count_rejected(self):
        with pytest.raises(ValidationError):
            PatchPipeline.from_vulnerability_counts(-1, 0)

    def test_custom_minutes_per_vuln(self):
        pipeline = PatchPipeline.from_vulnerability_counts(
            2, 1, app_minutes_per_vuln=6.0, os_minutes_per_vuln=12.0
        )
        assert 60.0 / pipeline.service_patch == pytest.approx(12.0)
        assert 60.0 / pipeline.os_patch == pytest.approx(12.0)


class TestServerParameters:
    def test_dns_parameter_set(self):
        params = dns_server_parameters()
        assert params.name == "dns"
        assert params.patch_interval_hours == 720.0
        assert params.patch_clock_rate == pytest.approx(1.0 / 720.0)

    def test_with_patch_interval(self):
        params = dns_server_parameters().with_patch_interval(168.0)
        assert params.patch_interval_hours == 168.0
        # original unchanged (frozen dataclass semantics)
        assert dns_server_parameters().patch_interval_hours == 720.0

    def test_paper_server_parameters_roles(self):
        params = paper_server_parameters()
        assert set(params) == {"dns", "web", "app", "db"}

    def test_paper_patch_downtimes_match_table_v(self):
        """Total expected downtime: 40/35/60/55 minutes."""
        expected_minutes = {"dns": 40.0, "web": 35.0, "app": 60.0, "db": 55.0}
        for role, params in paper_server_parameters().items():
            downtime = params.patch.expected_downtime_hours * 60.0
            assert downtime == pytest.approx(expected_minutes[role]), role

    def test_rejects_bad_interval(self):
        with pytest.raises(ValidationError):
            ServerParameters(
                name="x",
                rates=ComponentRates(),
                patch=PatchPipeline.from_vulnerability_counts(1, 1),
                patch_interval_hours=0.0,
            )

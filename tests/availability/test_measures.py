"""Tests for server-measure extraction."""

from __future__ import annotations

import pytest

from repro.availability import compute_measures, dns_server_parameters
from repro.availability.server import solve_server


@pytest.fixture(scope="module")
def measures():
    return compute_measures(solve_server(dns_server_parameters()))


class TestMeasures:
    def test_probabilities_in_unit_interval(self, measures):
        for value in (
            measures.service_up,
            measures.patch_down,
            measures.patch_ready_to_reboot,
            measures.service_failed,
            measures.hardware_down,
            measures.os_not_up,
        ):
            assert 0.0 <= value <= 1.0

    def test_availability_alias(self, measures):
        assert measures.availability == measures.service_up

    def test_prrb_is_subset_of_patch_down(self, measures):
        assert measures.patch_ready_to_reboot <= measures.patch_down

    def test_dominant_mass_is_up(self, measures):
        assert measures.service_up > 0.99

    def test_failure_probability_matches_rates(self, measures):
        """P(svc in repair) ~ repair time / MTTF.

        Psvcfd covers the 30-minute repair stage only (the reboot stage
        is a separate place), so the renewal-reward estimate is
        (0.5 h) / (336 h).
        """
        assert measures.service_failed == pytest.approx(
            (30.0 / 60.0) / 336.0, rel=0.05
        )

    def test_hardware_down_close_to_ratio(self, measures):
        assert measures.hardware_down == pytest.approx(1.0 / 87600.0, rel=0.1)

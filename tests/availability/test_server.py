"""Tests for the lower-layer server SRN (Fig. 5 + Table III)."""

from __future__ import annotations

import pytest

from repro.availability import dns_server_parameters
from repro.availability.server import build_server_srn, solve_server
from repro.srn import explore, simulate


@pytest.fixture(scope="module")
def dns_solution():
    return solve_server(dns_server_parameters())


class TestStructure:
    def test_state_space_is_finite_and_small(self):
        graph = explore(build_server_srn(dns_server_parameters()))
        assert 10 <= graph.number_of_states <= 120

    def test_single_token_invariants(self):
        """Each sub-model conserves its single token."""
        graph = explore(build_server_srn(dns_server_parameters()))
        hw = ("Phwup", "Phwd")
        os = ("Posup", "Posfd", "Posfrb", "Posd", "Posrp", "Posp")
        svc = (
            "Psvcup",
            "Psvcfd",
            "Psvcfrb",
            "Psvcd",
            "Psvcrp",
            "Psvcp",
            "Psvcrrb",
        )
        clock = ("Pclock", "Pdue", "Ptrigger")
        for marking in graph.tangible:
            for group in (hw, os, svc, clock):
                assert sum(marking[p] for p in group) == 1, marking

    def test_service_up_requires_os_and_hw_up(self):
        """No tangible marking has the service up while hw/OS is down.

        The immediate transitions Tsvcd/Tosd fire instantly on failure,
        so such markings are vanishing, never tangible.
        """
        graph = explore(build_server_srn(dns_server_parameters()))
        for marking in graph.tangible:
            if marking["Psvcup"] == 1:
                assert marking["Phwup"] == 1
                assert marking["Posup"] == 1


class TestSteadyState:
    def test_availability_is_high(self, dns_solution):
        availability = dns_solution.probability_of(lambda m: m["Psvcup"] == 1)
        assert 0.99 < availability < 1.0

    def test_patch_pipeline_probabilities(self, dns_solution):
        """p_pd ~ (40 min)/(720 h) and p_prrb ~ (5 min)/(720 h)."""
        p_pd = dns_solution.probability_of(
            lambda m: m["Psvcrp"] == 1 or m["Psvcp"] == 1 or m["Psvcrrb"] == 1
        )
        p_prrb = dns_solution.probability_of(
            lambda m: m["Psvcrrb"] == 1 and m["Posup"] == 1 and m["Phwup"] == 1
        )
        assert p_pd == pytest.approx(0.00092506, rel=2e-3)  # paper's value
        assert p_prrb == pytest.approx(0.00011563, rel=2e-3)

    def test_paper_probability_values(self, dns_solution):
        """The paper's example: p ~= 0.00092506 and 0.00011563."""
        p_pd = dns_solution.probability_of(
            lambda m: m["Psvcrp"] == 1 or m["Psvcp"] == 1 or m["Psvcrrb"] == 1
        )
        # within 0.3% of the published numbers
        assert abs(p_pd - 0.00092506) / 0.00092506 < 3e-3


class TestAssumptionFlags:
    def test_strict_hardware_assumption(self):
        solution = solve_server(
            dns_server_parameters(), hardware_can_fail_during_patch=False
        )
        # hardware never fails during patch: no marking with Phwd plus a
        # patch-pipeline token that arrived while patching
        for marking, probability in zip(solution.markings, solution.probabilities):
            if probability > 0 and (
                marking["Posrp"] == 1 or marking["Posp"] == 1
            ):
                assert marking["Phwd"] == 0

    def test_strict_software_assumption_changes_little(self):
        base = solve_server(dns_server_parameters())
        strict = solve_server(
            dns_server_parameters(), software_can_fail_during_patch=False
        )
        a = base.probability_of(lambda m: m["Psvcup"] == 1)
        b = strict.probability_of(lambda m: m["Psvcup"] == 1)
        assert a == pytest.approx(b, abs=5e-4)


class TestSimulationCrossCheck:
    def test_simulated_availability_matches_analytic(self):
        params = dns_server_parameters().with_patch_interval(24.0)
        # a short patch interval makes patching frequent enough to observe
        net = build_server_srn(params)
        from repro.srn import solve

        analytic = solve(net).probability_of(lambda m: m["Psvcup"] == 1)
        simulated = simulate(
            net, lambda m: float(m["Psvcup"]), horizon=20000.0, seed=13
        )
        assert simulated.time_averaged_reward == pytest.approx(analytic, abs=0.01)

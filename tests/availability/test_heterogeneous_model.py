"""Cross-checks for the heterogeneous availability model."""

from __future__ import annotations

import pytest

from repro.availability import (
    HeterogeneousAvailabilityModel,
    NetworkAvailabilityModel,
)


@pytest.fixture(scope="module")
def aggregates(availability_evaluator, example_design):
    return availability_evaluator.aggregates_for(example_design)


class TestHomogeneousEquivalence:
    """Single-variant tiers must reproduce the homogeneous model exactly."""

    def test_example_network_coa(self, aggregates):
        capacities = {"dns": 1, "web": 2, "app": 2, "db": 1}
        homogeneous = NetworkAvailabilityModel(capacities, aggregates)
        heterogeneous = HeterogeneousAvailabilityModel(
            {role: {role: count} for role, count in capacities.items()},
            aggregates,
        )
        assert heterogeneous.capacity_oriented_availability() == pytest.approx(
            homogeneous.capacity_oriented_availability(), abs=1e-12
        )

    def test_system_availability(self, aggregates):
        capacities = {"dns": 1, "web": 2, "app": 2, "db": 1}
        homogeneous = NetworkAvailabilityModel(capacities, aggregates)
        heterogeneous = HeterogeneousAvailabilityModel(
            {role: {role: count} for role, count in capacities.items()},
            aggregates,
        )
        assert heterogeneous.system_availability() == pytest.approx(
            homogeneous.system_availability(), abs=1e-12
        )


class TestVariantSplit:
    def test_splitting_a_tier_across_identical_variants_is_neutral(
        self, aggregates
    ):
        """2 servers of one variant == 1+1 of two identically-rated
        variants: the COA cannot tell them apart."""
        base = dict(aggregates)
        base["web_b"] = aggregates["web"]
        merged = HeterogeneousAvailabilityModel(
            {"dns": {"dns": 1}, "web": {"web": 2}, "db": {"db": 1}},
            base,
        )
        split = HeterogeneousAvailabilityModel(
            {"dns": {"dns": 1}, "web": {"web": 1, "web_b": 1}, "db": {"db": 1}},
            base,
        )
        assert split.capacity_oriented_availability() == pytest.approx(
            merged.capacity_oriented_availability(), abs=1e-12
        )

    def test_total_servers(self, aggregates):
        model = HeterogeneousAvailabilityModel(
            {"web": {"web": 2}, "db": {"db": 1}}, aggregates
        )
        assert model.total_servers == 3

    def test_solution_cached(self, aggregates):
        model = HeterogeneousAvailabilityModel(
            {"web": {"web": 1}, "db": {"db": 1}}, aggregates
        )
        assert model.solve() is model.solve()

"""Tests for time-to-outage and transient COA."""

from __future__ import annotations

import pytest

from repro.availability import mean_time_to_outage, transient_coa
from repro.errors import EvaluationError


@pytest.fixture(scope="module")
def example_model(availability_evaluator, example_design):
    return availability_evaluator.network_model(example_design)


class TestMeanTimeToOutage:
    def test_example_network_outage_driven_by_single_tiers(self, example_model):
        """dns and db have one replica; each is patched at rate 1/720 and
        the first patch of either takes a tier to zero, so the expected
        time to first outage is close to 720/2 = 360 hours."""
        mtto = mean_time_to_outage(example_model)
        assert mtto == pytest.approx(360.0, rel=0.01)

    def test_full_redundancy_survives_much_longer(
        self, availability_evaluator
    ):
        from repro.enterprise import RedundancyDesign

        redundant = RedundancyDesign({"dns": 2, "web": 2, "app": 2, "db": 2})
        model = availability_evaluator.network_model(redundant)
        mtto = mean_time_to_outage(model)
        # an outage now needs two replicas of one tier down at once
        assert mtto > 50_000.0

    def test_redundancy_monotone(self, availability_evaluator, example_model):
        from repro.enterprise import RedundancyDesign

        base = mean_time_to_outage(example_model)
        better = mean_time_to_outage(
            availability_evaluator.network_model(
                RedundancyDesign({"dns": 2, "web": 2, "app": 2, "db": 1})
            )
        )
        assert better > base


class TestTransientCoa:
    def test_starts_at_one(self, example_model):
        values = transient_coa(example_model, [0.0])
        assert values[0] == pytest.approx(1.0)

    def test_converges_to_steady_state(self, example_model):
        steady = example_model.capacity_oriented_availability()
        values = transient_coa(example_model, [50_000.0])
        assert values[0] == pytest.approx(steady, abs=1e-6)

    def test_monotone_decay_from_all_up(self, example_model):
        times = [0.0, 10.0, 100.0, 1000.0, 10000.0]
        values = transient_coa(example_model, times)
        assert all(
            values[i] >= values[i + 1] - 1e-9 for i in range(len(values) - 1)
        )

    def test_negative_time_rejected(self, example_model):
        with pytest.raises(EvaluationError):
            transient_coa(example_model, [-1.0])


class TestHeterogeneousDispatch:
    """The extensions dispatch per model/spec kind (PR 4 satellite)."""

    COUNTS = {"dns": 1, "web": 2, "app": 2, "db": 1}

    def _mirrored(self, case_study):
        from repro.enterprise import HeterogeneousDesign

        return HeterogeneousDesign(
            {
                role: {case_study.roles[role]: count}
                for role, count in self.COUNTS.items()
            }
        )

    def test_single_variant_outage_parity(
        self, availability_evaluator, case_study
    ):
        from repro.enterprise import RedundancyDesign

        homog = mean_time_to_outage(
            availability_evaluator.network_model(RedundancyDesign(self.COUNTS))
        )
        hetero = mean_time_to_outage(
            availability_evaluator.network_model(self._mirrored(case_study))
        )
        assert hetero == homog  # bit-for-bit, identical chains

    def test_evaluator_level_dispatch(self, availability_evaluator, case_study):
        from repro.enterprise import RedundancyDesign

        assert availability_evaluator.mean_time_to_outage(
            self._mirrored(case_study)
        ) == availability_evaluator.mean_time_to_outage(
            RedundancyDesign(self.COUNTS)
        )

    def test_diverse_tier_survives_single_variant_outage(
        self, case_study, critical_policy
    ):
        """A two-variant web tier is only down when both variant groups
        are down; the diverse design must survive longer than the same
        design with the whole web tier on one variant pair."""
        from repro.enterprise import HeterogeneousDesign, paper_variant_space
        from repro.evaluation import AvailabilityEvaluator
        from repro.vulnerability.diversity import diversity_database

        space = paper_variant_space()
        evaluator = AvailabilityEvaluator(
            case_study, critical_policy, database=diversity_database()
        )
        diverse = HeterogeneousDesign(
            {"web": {space["web"][0]: 1, space["web"][1]: 1}}
        )
        mtto = mean_time_to_outage(evaluator.network_model(diverse))
        single = HeterogeneousDesign({"web": {space["web"][0]: 1}})
        assert mtto > mean_time_to_outage(evaluator.network_model(single))

    def test_mttc_dispatches_per_spec_kind(self, case_study, critical_policy):
        from repro.enterprise import RedundancyDesign
        from repro.evaluation import SecurityEvaluator

        evaluator = SecurityEvaluator(case_study)
        homog = RedundancyDesign(self.COUNTS)
        hetero = self._mirrored(case_study)
        assert evaluator.mean_time_to_compromise(
            hetero
        ) == evaluator.mean_time_to_compromise(homog)
        assert evaluator.mean_time_to_compromise(
            hetero, critical_policy
        ) == evaluator.mean_time_to_compromise(homog, critical_policy)
        # patching slows the attacker down
        assert evaluator.mean_time_to_compromise(
            hetero, critical_policy
        ) > evaluator.mean_time_to_compromise(hetero)

"""Tests for time-to-outage and transient COA."""

from __future__ import annotations

import pytest

from repro.availability import mean_time_to_outage, transient_coa
from repro.errors import EvaluationError


@pytest.fixture(scope="module")
def example_model(availability_evaluator, example_design):
    return availability_evaluator.network_model(example_design)


class TestMeanTimeToOutage:
    def test_example_network_outage_driven_by_single_tiers(self, example_model):
        """dns and db have one replica; each is patched at rate 1/720 and
        the first patch of either takes a tier to zero, so the expected
        time to first outage is close to 720/2 = 360 hours."""
        mtto = mean_time_to_outage(example_model)
        assert mtto == pytest.approx(360.0, rel=0.01)

    def test_full_redundancy_survives_much_longer(
        self, availability_evaluator
    ):
        from repro.enterprise import RedundancyDesign

        redundant = RedundancyDesign({"dns": 2, "web": 2, "app": 2, "db": 2})
        model = availability_evaluator.network_model(redundant)
        mtto = mean_time_to_outage(model)
        # an outage now needs two replicas of one tier down at once
        assert mtto > 50_000.0

    def test_redundancy_monotone(self, availability_evaluator, example_model):
        from repro.enterprise import RedundancyDesign

        base = mean_time_to_outage(example_model)
        better = mean_time_to_outage(
            availability_evaluator.network_model(
                RedundancyDesign({"dns": 2, "web": 2, "app": 2, "db": 1})
            )
        )
        assert better > base


class TestTransientCoa:
    def test_starts_at_one(self, example_model):
        values = transient_coa(example_model, [0.0])
        assert values[0] == pytest.approx(1.0)

    def test_converges_to_steady_state(self, example_model):
        steady = example_model.capacity_oriented_availability()
        values = transient_coa(example_model, [50_000.0])
        assert values[0] == pytest.approx(steady, abs=1e-6)

    def test_monotone_decay_from_all_up(self, example_model):
        times = [0.0, 10.0, 100.0, 1000.0, 10000.0]
        values = transient_coa(example_model, times)
        assert all(
            values[i] >= values[i + 1] - 1e-9 for i in range(len(values) - 1)
        )

    def test_negative_time_rejected(self, example_model):
        with pytest.raises(EvaluationError):
            transient_coa(example_model, [-1.0])

"""Tests for Eqs. (1)-(2) aggregation: Table V reproduction."""

from __future__ import annotations

import pytest

from repro.availability import aggregate_service, paper_server_parameters

# Table V of the paper: service -> (MTTR hours, recovery rate).
TABLE_V = {
    "dns": (0.6667, 1.49992),
    "web": (0.5834, 1.71420),
    "app": (1.0001, 0.99995),
    "db": (0.9167, 1.09085),
}


@pytest.fixture(scope="module")
def aggregates():
    return {
        role: aggregate_service(params)
        for role, params in paper_server_parameters().items()
    }


class TestTableV:
    def test_patch_rate_is_clock_rate(self, aggregates):
        for role, aggregate in aggregates.items():
            assert aggregate.patch_rate == pytest.approx(1.0 / 720.0), role
            assert aggregate.mttp_hours == pytest.approx(720.0), role

    @pytest.mark.parametrize("role", sorted(TABLE_V))
    def test_recovery_rates_match_paper(self, aggregates, role):
        mttr, recovery = TABLE_V[role]
        assert aggregates[role].recovery_rate == pytest.approx(recovery, rel=1e-4)
        assert aggregates[role].mttr_hours == pytest.approx(mttr, abs=2e-4)

    def test_app_has_longest_mttr(self, aggregates):
        """The paper: the application tier has the lowest recovery rate."""
        slowest = min(aggregates.values(), key=lambda a: a.recovery_rate)
        assert slowest.name == "app"

    def test_web_has_shortest_mttr(self, aggregates):
        fastest = max(aggregates.values(), key=lambda a: a.recovery_rate)
        assert fastest.name == "web"

    def test_mttr_approximates_pipeline_downtime(self, aggregates):
        """MTTR ~= sum of the four patch-stage means."""
        for role, params in paper_server_parameters().items():
            assert aggregates[role].mttr_hours == pytest.approx(
                params.patch.expected_downtime_hours, rel=1e-3
            )

    def test_equivalent_availability_close_to_one(self, aggregates):
        for aggregate in aggregates.values():
            assert 0.998 < aggregate.equivalent_availability < 1.0

"""Tests for the closed-form COA."""

from __future__ import annotations

import pytest

from repro.availability import product_form_coa
from repro.availability.product_form import tier_up_distribution
from repro.errors import EvaluationError


class TestTierDistribution:
    def test_binomial_shape(self):
        dist = tier_up_distribution(2, 0.9)
        assert dist == pytest.approx([0.01, 0.18, 0.81])

    def test_sums_to_one(self):
        assert sum(tier_up_distribution(5, 0.37)) == pytest.approx(1.0)

    def test_bad_probability_rejected(self):
        with pytest.raises(EvaluationError):
            tier_up_distribution(2, 1.5)


class TestProductFormCoa:
    def test_single_service_single_server(self):
        coa = product_form_coa({"svc": 1}, {"svc": 1.0}, {"svc": 9.0})
        assert coa == pytest.approx(0.9)

    def test_single_service_two_servers(self):
        # p_up = 0.9; states: 2 up -> reward 1 (p=0.81), 1 up -> 0.5 (p=0.18)
        coa = product_form_coa({"svc": 2}, {"svc": 1.0}, {"svc": 9.0})
        assert coa == pytest.approx(0.81 + 0.5 * 0.18)

    def test_two_services_all_must_run(self):
        coa = product_form_coa(
            {"a": 1, "b": 1}, {"a": 1.0, "b": 1.0}, {"a": 9.0, "b": 9.0}
        )
        assert coa == pytest.approx(0.81)

    def test_missing_rates_rejected(self):
        with pytest.raises(EvaluationError):
            product_form_coa({"a": 1}, {}, {"a": 1.0})

    def test_empty_rejected(self):
        with pytest.raises(EvaluationError):
            product_form_coa({}, {}, {})

"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main


class TestCli:
    def test_reproduce_prints_tables(self, capsys):
        assert main(["reproduce"]) == 0
        out = capsys.readouterr().out
        assert "[Table I]" in out
        assert "[Table VI]" in out
        assert "0.99707" in out

    def test_designs_prints_regions(self, capsys):
        assert main(["designs"]) == 0
        out = capsys.readouterr().out
        assert "Eq.3 region 1: 1 DNS + 1 WEB + 2 APP + 1 DB" in out
        assert "Eq.4 region 2: 2 DNS + 1 WEB + 1 APP + 1 DB" in out

    def test_bundle_writes_artifacts(self, tmp_path, capsys):
        assert main(["bundle", "--out", str(tmp_path / "artifacts")]) == 0
        out = capsys.readouterr().out
        assert "table6_coa.txt" in out
        assert (tmp_path / "artifacts" / "design_selections.txt").exists()

    def test_sweep_json_schema(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--roles",
                    "dns,web",
                    "--max-replicas",
                    "2",
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["roles"] == ["dns", "web"]
        assert payload["max_replicas"] == 2
        assert payload["executor"] == "serial"
        assert payload["design_count"] == 4
        assert len(payload["designs"]) == 4
        snapshot_keys = {"AIM", "ASP", "NoEV", "NoAP", "NoEP", "COA"}
        for design in payload["designs"]:
            assert set(design) == {
                "label",
                "counts",
                "total_servers",
                "before",
                "after",
                "pareto",
            }
            assert set(design["before"]) == snapshot_keys
            assert set(design["after"]) == snapshot_keys
            assert design["total_servers"] == sum(design["counts"].values())
            assert 0.0 < design["after"]["COA"] <= 1.0
            assert isinstance(design["pareto"], bool)
        assert any(design["pareto"] for design in payload["designs"])

    def test_sweep_table_output(self, capsys):
        assert main(["sweep", "--roles", "dns,web", "--max-replicas", "2"]) == 0
        out = capsys.readouterr().out
        assert "COA" in out
        assert "Pareto front (after patch):" in out
        assert "2 DNS + 2 WEB" in out

    def test_sweep_max_total_caps_space(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--roles",
                    "dns,web",
                    "--max-replicas",
                    "3",
                    "--max-total",
                    "4",
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["design_count"] == 6
        assert all(d["total_servers"] <= 4 for d in payload["designs"])

    def test_sweep_variants_json_schema(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--variants",
                    "--roles",
                    "web,db",
                    "--max-replicas",
                    "2",
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["variants"] is True
        # 5 web-tier x 5 db-tier variant assignments
        assert payload["design_count"] == 25
        for design in payload["designs"]:
            assert set(design) == {
                "label",
                "counts",
                "total_servers",
                "before",
                "after",
                "pareto",
                "variants",
            }
            assert design["total_servers"] == sum(design["counts"].values())
            assert design["total_servers"] == sum(
                count
                for variants in design["variants"].values()
                for count in variants.values()
            )
        labels = {design["label"] for design in payload["designs"]}
        assert "web[1 web_apache + 1 web_nginx] / db[1 db_mysql]" in labels

    def test_sweep_variants_table_output(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--variants",
                    "--roles",
                    "web",
                    "--max-replicas",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "web[1 web_apache + 1 web_nginx]" in out
        assert "Pareto front (after patch):" in out

    def test_sweep_variants_unknown_role(self, capsys):
        assert main(["sweep", "--variants", "--roles", "cache"]) == 2
        assert "no variant pool" in capsys.readouterr().err

    def test_sweep_thread_executor(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--roles",
                    "dns,web",
                    "--max-replicas",
                    "2",
                    "--executor",
                    "thread",
                    "--jobs",
                    "2",
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["executor"] == "thread"
        assert payload["design_count"] == 4

    def test_sweep_rejects_empty_roles(self, capsys):
        assert main(["sweep", "--roles", " , "]) == 2

    def test_unknown_command_exits_nonzero(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["nonsense"])
        assert excinfo.value.code != 0

    def test_no_command_exits_nonzero(self):
        with pytest.raises(SystemExit):
            main([])

"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.__main__ import main


class TestCli:
    def test_reproduce_prints_tables(self, capsys):
        assert main(["reproduce"]) == 0
        out = capsys.readouterr().out
        assert "[Table I]" in out
        assert "[Table VI]" in out
        assert "0.99707" in out

    def test_designs_prints_regions(self, capsys):
        assert main(["designs"]) == 0
        out = capsys.readouterr().out
        assert "Eq.3 region 1: 1 DNS + 1 WEB + 2 APP + 1 DB" in out
        assert "Eq.4 region 2: 2 DNS + 1 WEB + 1 APP + 1 DB" in out

    def test_bundle_writes_artifacts(self, tmp_path, capsys):
        assert main(["bundle", "--out", str(tmp_path / "artifacts")]) == 0
        out = capsys.readouterr().out
        assert "table6_coa.txt" in out
        assert (tmp_path / "artifacts" / "design_selections.txt").exists()

    def test_unknown_command_exits_nonzero(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["nonsense"])
        assert excinfo.value.code != 0

    def test_no_command_exits_nonzero(self):
        with pytest.raises(SystemExit):
            main([])

"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main


class TestCli:
    def test_reproduce_prints_tables(self, capsys):
        assert main(["reproduce"]) == 0
        out = capsys.readouterr().out
        assert "[Table I]" in out
        assert "[Table VI]" in out
        assert "0.99707" in out

    def test_designs_prints_regions(self, capsys):
        assert main(["designs"]) == 0
        out = capsys.readouterr().out
        assert "Eq.3 region 1: 1 DNS + 1 WEB + 2 APP + 1 DB" in out
        assert "Eq.4 region 2: 2 DNS + 1 WEB + 1 APP + 1 DB" in out

    def test_bundle_writes_artifacts(self, tmp_path, capsys):
        assert main(["bundle", "--out", str(tmp_path / "artifacts")]) == 0
        out = capsys.readouterr().out
        assert "table6_coa.txt" in out
        assert (tmp_path / "artifacts" / "design_selections.txt").exists()

    def test_sweep_json_schema(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--roles",
                    "dns,web",
                    "--max-replicas",
                    "2",
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["roles"] == ["dns", "web"]
        assert payload["max_replicas"] == 2
        assert payload["executor"] == "serial"
        assert payload["design_count"] == 4
        assert len(payload["designs"]) == 4
        snapshot_keys = {"AIM", "ASP", "NoEV", "NoAP", "NoEP", "COA"}
        for design in payload["designs"]:
            assert set(design) == {
                "label",
                "counts",
                "total_servers",
                "before",
                "after",
                "pareto",
            }
            assert set(design["before"]) == snapshot_keys
            assert set(design["after"]) == snapshot_keys
            assert design["total_servers"] == sum(design["counts"].values())
            assert 0.0 < design["after"]["COA"] <= 1.0
            assert isinstance(design["pareto"], bool)
        assert any(design["pareto"] for design in payload["designs"])

    def test_sweep_table_output(self, capsys):
        assert main(["sweep", "--roles", "dns,web", "--max-replicas", "2"]) == 0
        out = capsys.readouterr().out
        assert "COA" in out
        assert "Pareto front (after patch):" in out
        assert "2 DNS + 2 WEB" in out

    def test_sweep_max_total_caps_space(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--roles",
                    "dns,web",
                    "--max-replicas",
                    "3",
                    "--max-total",
                    "4",
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["design_count"] == 6
        assert all(d["total_servers"] <= 4 for d in payload["designs"])

    def test_sweep_variants_json_schema(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--variants",
                    "--roles",
                    "web,db",
                    "--max-replicas",
                    "2",
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["variants"] is True
        # 5 web-tier x 5 db-tier variant assignments
        assert payload["design_count"] == 25
        for design in payload["designs"]:
            assert set(design) == {
                "label",
                "counts",
                "total_servers",
                "before",
                "after",
                "pareto",
                "variants",
            }
            assert design["total_servers"] == sum(design["counts"].values())
            assert design["total_servers"] == sum(
                count
                for variants in design["variants"].values()
                for count in variants.values()
            )
        labels = {design["label"] for design in payload["designs"]}
        assert "web[1 web_apache + 1 web_nginx] / db[1 db_mysql]" in labels

    def test_sweep_variants_table_output(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--variants",
                    "--roles",
                    "web",
                    "--max-replicas",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "web[1 web_apache + 1 web_nginx]" in out
        assert "Pareto front (after patch):" in out

    def test_sweep_variants_unknown_role(self, capsys):
        assert main(["sweep", "--variants", "--roles", "cache"]) == 2
        assert "no variant pool" in capsys.readouterr().err

    def test_sweep_thread_executor(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--roles",
                    "dns,web",
                    "--max-replicas",
                    "2",
                    "--executor",
                    "thread",
                    "--jobs",
                    "2",
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["executor"] == "thread"
        assert payload["design_count"] == 4

    def test_sweep_rejects_empty_roles(self, capsys):
        assert main(["sweep", "--roles", " , "]) == 2

    def test_unknown_command_exits_nonzero(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["nonsense"])
        assert excinfo.value.code != 0

    def test_no_command_exits_nonzero(self):
        with pytest.raises(SystemExit):
            main([])


class TestTimelineCli:
    def test_timeline_json_schema(self, capsys):
        assert (
            main(
                [
                    "timeline",
                    "--roles",
                    "dns,web",
                    "--max-replicas",
                    "2",
                    "--points",
                    "5",
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["roles"] == ["dns", "web"]
        assert payload["design_count"] == 4
        assert payload["times"] == [0.0, 180.0, 360.0, 540.0, 720.0]
        metric_keys = {"AIM", "ASP", "NoEV", "NoAP", "NoEP"}
        for design in payload["designs"]:
            assert set(design) >= {
                "label",
                "counts",
                "total_servers",
                "mean_time_to_completion",
                "steady_coa",
                "min_coa",
                "coa",
                "completion_probability",
                "unpatched_fraction",
                "security",
            }
            assert len(design["coa"]) == 5
            assert design["coa"][0] == 1.0
            assert design["completion_probability"][0] == 0.0
            assert design["mean_time_to_completion"] > 0
            assert set(design["security"]) == metric_keys
            assert all(len(curve) == 5 for curve in design["security"].values())

    def test_timeline_table_output(self, capsys):
        assert (
            main(["timeline", "--roles", "dns,web", "--points", "4"]) == 0
        )
        out = capsys.readouterr().out
        assert "MTTPC (h)" in out
        assert "2 DNS + 2 WEB" in out
        assert "grid 0..720 h x 4 points" in out

    def test_timeline_explicit_times(self, capsys):
        assert (
            main(
                [
                    "timeline",
                    "--roles",
                    "dns",
                    "--times",
                    "0,24,720",
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["times"] == [0.0, 24.0, 720.0]

    def test_timeline_variants(self, capsys):
        assert (
            main(
                [
                    "timeline",
                    "--variants",
                    "--roles",
                    "web",
                    "--max-replicas",
                    "1",
                    "--points",
                    "3",
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["variants"] is True
        assert payload["design_count"] == 2
        assert all("variants" in design for design in payload["designs"])

    def test_timeline_negative_time_exits_2(self, capsys):
        assert main(["timeline", "--roles", "dns", "--times=-5,3"]) == 2
        assert "timeline failed" in capsys.readouterr().err

    def test_timeline_bad_grid_exits_2(self, capsys):
        assert main(["timeline", "--roles", "dns", "--points", "1"]) == 2
        assert main(["timeline", "--roles", "dns", "--times", "abc"]) == 2

    def test_timeline_empty_roles_exits_2(self, capsys):
        assert main(["timeline", "--roles", " , "]) == 2

    def test_timeline_unknown_variant_role_exits_2(self, capsys):
        assert main(["timeline", "--variants", "--roles", "nosuch"]) == 2
        assert "variant pool" in capsys.readouterr().err


class TestScaledAndMethodCli:
    def _timeline_payload(self, capsys, *extra):
        argv = [
            "timeline",
            "--roles",
            "dns",
            "--times",
            "0,24,168",
            "--json",
            *extra,
        ]
        assert main(argv) == 0
        return json.loads(capsys.readouterr().out)

    def test_method_default_is_uniformisation(self, capsys):
        base = self._timeline_payload(capsys)
        explicit = self._timeline_payload(capsys, "--method", "uniformisation")
        assert base["designs"] == explicit["designs"]

    @pytest.mark.parametrize("method", ["krylov", "adaptive", "auto"])
    def test_method_curves_match_default(self, capsys, method):
        base = self._timeline_payload(capsys)
        other = self._timeline_payload(capsys, "--method", method)
        for a, b in zip(base["designs"], other["designs"]):
            assert a["coa"] == pytest.approx(b["coa"], abs=1e-8)

    def test_bad_method_exits_2(self, capsys):
        argv = ["timeline", "--roles", "dns", "--method", "simpson"]
        with pytest.raises(SystemExit):
            main(argv)

    def test_scaled_timeline_json(self, capsys):
        assert (
            main(
                [
                    "timeline",
                    "--scaled",
                    "2x3",
                    "--times",
                    "0,24,720",
                    "--method",
                    "auto",
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["roles"] == ["tier01", "tier02", "tier03"]
        assert payload["design_count"] == 1
        design = payload["designs"][0]
        assert design["counts"] == {"tier01": 2, "tier02": 2, "tier03": 2}
        assert design["coa"][0] == 1.0

    def test_scaled_sweep_table(self, capsys):
        assert main(["sweep", "--scaled", "2x2"]) == 0
        out = capsys.readouterr().out
        assert "TIER01" in out

    def test_scaled_rejects_variants(self, capsys):
        assert (
            main(["timeline", "--scaled", "2x2", "--variants", "--points", "3"])
            == 2
        )
        assert "mutually exclusive" in capsys.readouterr().err

    def test_bad_scaled_spec_exits_2(self, capsys):
        assert main(["timeline", "--scaled", "lots"]) == 2
        assert "HOSTSxTIERS" in capsys.readouterr().err


class TestCampaignCli:
    BASE = ["timeline", "--roles", "dns,web", "--max-replicas", "1", "--points", "4"]

    def test_schema_version_and_campaign_metadata(self, capsys):
        assert main(self.BASE + ["--phases", "canary:0.1:48,fleet:1.0", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 3
        assert payload["campaign"]["phases"][0] == {
            "name": "canary",
            "rate_multiplier": 0.1,
            "duration_hours": 48.0,
        }
        for design in payload["designs"]:
            assert design["phase_starts"] == [0.0, 48.0]

    def test_plain_timeline_has_null_campaign(self, capsys):
        assert main(self.BASE + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 3
        assert payload["campaign"] is None
        assert all("phase_starts" not in design for design in payload["designs"])

    def test_single_phase_campaign_matches_plain_curves(self, capsys):
        assert main(self.BASE + ["--json"]) == 0
        plain = json.loads(capsys.readouterr().out)
        assert main(self.BASE + ["--phases", "fleet:1.0", "--json"]) == 0
        staged = json.loads(capsys.readouterr().out)
        for a, b in zip(plain["designs"], staged["designs"]):
            b = dict(b)
            assert b.pop("phase_starts") == [0.0]
            assert a == b

    def test_campaign_json_file(self, tmp_path, capsys):
        spec = tmp_path / "campaign.json"
        spec.write_text(
            json.dumps(
                {
                    "name": "staged",
                    "phases": [
                        {
                            "name": "canary",
                            "rate_multiplier": 1.0,
                            "completion_fraction": 0.25,
                            "canary_hosts": 1,
                        },
                        {"name": "fleet", "rate_multiplier": 1.0},
                    ],
                }
            )
        )
        assert main(self.BASE + ["--campaign", str(spec), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["campaign"]["name"] == "staged"
        for design in payload["designs"]:
            starts = design["phase_starts"]
            assert starts[0] == 0.0 and starts[1] > 0.0

    def test_never_firing_trigger_serialises_null_start(self, capsys):
        assert main(
            self.BASE + ["--phases", "pause:0:50%,fleet:1.0", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        for design in payload["designs"]:
            assert design["phase_starts"] == [0.0, None]
            assert design["mean_time_to_completion"] is None

    def test_table_output_mentions_campaign(self, capsys):
        assert main(self.BASE + ["--phases", "canary:0.1:48,fleet:1.0"]) == 0
        out = capsys.readouterr().out
        assert "campaign" in out and "canary" in out

    def test_campaign_and_phases_mutually_exclusive(self, tmp_path, capsys):
        spec = tmp_path / "c.json"
        spec.write_text('{"name": "x", "phases": [{"name": "f", "rate_multiplier": 1}]}')
        assert (
            main(
                self.BASE
                + ["--campaign", str(spec), "--phases", "fleet:1.0"]
            )
            == 2
        )
        assert "mutually exclusive" in capsys.readouterr().err

    def test_bad_phase_spec_exits_2(self, capsys):
        assert main(self.BASE + ["--phases", "fleet:fast"]) == 2
        assert "timeline failed" in capsys.readouterr().err

    def test_missing_campaign_file_exits_2(self, capsys):
        assert main(self.BASE + ["--campaign", "/nonexistent/spec.json"]) == 2
        assert "cannot read" in capsys.readouterr().err


class TestCacheCli:
    def test_sweep_cache_reuse_is_identical(self, tmp_path, capsys):
        cache = str(tmp_path / "cache.sqlite")
        args = ["sweep", "--roles", "dns,web", "--json", "--cache", cache]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        second = capsys.readouterr().out
        assert first == second

    def test_timeline_cache_reuse_is_identical(self, tmp_path, capsys):
        cache = str(tmp_path / "cache.sqlite")
        args = [
            "timeline",
            "--roles",
            "dns,web",
            "--points",
            "4",
            "--json",
            "--cache",
            cache,
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        second = capsys.readouterr().out
        assert first == second

    def test_bad_cache_path_exits_2(self, tmp_path, capsys):
        missing = str(tmp_path / "no-such-dir" / "cache.sqlite")
        assert (
            main(["sweep", "--roles", "dns", "--cache", missing]) == 2
        )
        assert "sweep failed" in capsys.readouterr().err


class TestSharedMemoryFlag:
    def test_no_shared_memory_matches_default(self, capsys):
        args = ["sweep", "--roles", "dns,web", "--max-replicas", "2", "--json"]
        assert main(args) == 0
        default = json.loads(capsys.readouterr().out)
        assert main(args + ["--no-shared-memory"]) == 0
        baseline = json.loads(capsys.readouterr().out)
        assert default["designs"] == baseline["designs"]

    def test_process_executor_with_sharing(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--roles",
                    "dns,web",
                    "--max-replicas",
                    "2",
                    "--json",
                    "--executor",
                    "process",
                    "--jobs",
                    "2",
                    "--shared-memory",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["executor"] == "process"
        assert payload["design_count"] == 4

    def test_timeline_no_shared_memory_matches_default(self, capsys):
        args = [
            "timeline",
            "--roles",
            "dns,web",
            "--max-replicas",
            "2",
            "--points",
            "4",
            "--json",
        ]
        assert main(args) == 0
        default = json.loads(capsys.readouterr().out)
        assert main(args + ["--no-shared-memory"]) == 0
        baseline = json.loads(capsys.readouterr().out)
        assert default["designs"] == baseline["designs"]

    def test_help_epilog_documents_sharing(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        assert "structure sharing" in out
        assert "multiprocessing.shared_memory" in out


class TestCacheSubcommand:
    def _seed_cache(self, tmp_path):
        path = str(tmp_path / "cache.sqlite")
        assert (
            main(
                [
                    "sweep",
                    "--roles",
                    "dns,web",
                    "--max-replicas",
                    "2",
                    "--cache",
                    path,
                ]
            )
            == 0
        )
        return path

    def test_stats_reports_entries(self, tmp_path, capsys):
        path = self._seed_cache(tmp_path)
        capsys.readouterr()
        assert main(["cache", "stats", "--cache", path]) == 0
        out = capsys.readouterr().out
        assert "4 entries" in out
        assert "evaluation" in out

    def test_stats_json(self, tmp_path, capsys):
        path = self._seed_cache(tmp_path)
        capsys.readouterr()
        assert main(["cache", "stats", "--cache", path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"] == 4
        assert payload["scopes"]["evaluation"]["entries"] == 4

    def test_trim_evicts(self, tmp_path, capsys):
        path = self._seed_cache(tmp_path)
        capsys.readouterr()
        assert (
            main(["cache", "trim", "--cache", path, "--max-entries", "1"]) == 0
        )
        assert "evicted 3" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache", path, "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["entries"] == 1

    def test_trim_without_bounds_exits_2(self, tmp_path, capsys):
        path = self._seed_cache(tmp_path)
        capsys.readouterr()
        assert main(["cache", "trim", "--cache", path]) == 2

    def test_purge_all(self, tmp_path, capsys):
        path = self._seed_cache(tmp_path)
        capsys.readouterr()
        assert main(["cache", "purge", "--cache", path]) == 0
        assert "purged 4" in capsys.readouterr().out

    def test_purge_by_scope(self, tmp_path, capsys):
        path = self._seed_cache(tmp_path)
        capsys.readouterr()
        assert (
            main(["cache", "purge", "--cache", path, "--scope", "timeline"])
            == 0
        )
        assert "purged 0" in capsys.readouterr().out

    def test_bad_cache_path_exits_2(self, tmp_path, capsys):
        missing = str(tmp_path / "no-dir" / "cache.sqlite")
        assert main(["cache", "stats", "--cache", missing]) == 2
        assert "cache failed" in capsys.readouterr().err


class TestObservabilityCli:
    def test_sweep_trace_writes_chrome_trace(self, tmp_path, capsys):
        trace = tmp_path / "sweep-trace.json"
        assert (
            main(
                [
                    "sweep",
                    "--roles",
                    "dns",
                    "--max-replicas",
                    "1",
                    "--trace",
                    str(trace),
                ]
            )
            == 0
        )
        err = capsys.readouterr().err
        assert "trace: wrote" in err
        payload = json.loads(trace.read_text())
        events = payload["traceEvents"]
        names = {e["name"] for e in events if e.get("ph") == "X"}
        assert "engine:evaluate" in names
        assert any(e["name"] == "process_name" for e in events)

    def test_trace_disabled_after_run(self, tmp_path):
        from repro.observability import tracing

        trace = tmp_path / "t.json"
        main(["sweep", "--roles", "dns", "--max-replicas", "1",
              "--trace", str(trace)])
        assert not tracing.is_enabled()
        assert tracing.events() == []

    def test_timeline_trace_writes_file(self, tmp_path, capsys):
        trace = tmp_path / "timeline-trace.json"
        assert (
            main(
                [
                    "timeline",
                    "--roles",
                    "dns",
                    "--max-replicas",
                    "1",
                    "--points",
                    "3",
                    "--trace",
                    str(trace),
                ]
            )
            == 0
        )
        names = {
            e["name"]
            for e in json.loads(trace.read_text())["traceEvents"]
            if e.get("ph") == "X"
        }
        assert "engine:timeline" in names

    def test_sweep_without_trace_leaves_no_file(self, tmp_path, capsys):
        assert main(["sweep", "--roles", "dns", "--max-replicas", "1"]) == 0
        assert "trace:" not in capsys.readouterr().err

    def test_verbose_flag_accepted_before_subcommand(self, capsys):
        import logging

        root = logging.getLogger()
        previous_level = root.level
        previous_handlers = list(root.handlers)
        try:
            assert main(["-v", "sweep", "--roles", "dns",
                         "--max-replicas", "1"]) == 0
        finally:
            root.setLevel(previous_level)
            root.handlers[:] = previous_handlers


class TestShardCli:
    def test_sharded_sweep_json_matches_single_process_sweep(self, capsys):
        from repro.evaluation.service import EvaluationService

        services = [
            EvaluationService(executor="serial", max_designs=64)
            for _ in range(2)
        ]
        try:
            for service in services:
                service.start_in_thread()
            endpoints = ",".join(
                f"{s.address[0]}:{s.address[1]}" for s in services
            )
            args = ["--roles", "dns,web,app", "--max-replicas", "3", "--json"]
            assert main(["sweep"] + args) == 0
            single = capsys.readouterr().out
            assert main(["shard", "--endpoints", endpoints] + args) == 0
            merged = capsys.readouterr().out
        finally:
            for service in services:
                service.close()
        # Byte-identical stdout: the CI shard smoke `cmp`s these files.
        assert merged == single

    def test_shard_summary_output(self, capsys):
        from repro.evaluation.service import EvaluationService

        with EvaluationService(executor="serial", max_designs=8) as service:
            service.start_in_thread()
            endpoint = f"{service.address[0]}:{service.address[1]}"
            assert (
                main(
                    [
                        "shard",
                        "--endpoints",
                        endpoint,
                        "--roles",
                        "dns",
                        "--max-replicas",
                        "2",
                    ]
                )
                == 0
            )
        out = capsys.readouterr().out
        assert "designs merged from 1 shard(s)" in out
        assert "Pareto front" in out

    def test_unreachable_endpoints_exit_2(self, capsys):
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        assert (
            main(
                [
                    "shard",
                    "--endpoints",
                    f"127.0.0.1:{port}",
                    "--roles",
                    "dns",
                    "--timeout",
                    "2",
                ]
            )
            == 2
        )
        assert "shard failed" in capsys.readouterr().err

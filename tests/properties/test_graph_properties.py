"""Property-based tests for the graph substrate against networkx."""

from __future__ import annotations

import networkx as nx
from hypothesis import given, settings, strategies as st

from repro.graphs import (
    DiGraph,
    all_simple_paths,
    has_cycle,
    reachable_from,
    topological_sort,
)


@st.composite
def random_graphs(draw, max_nodes=8):
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=20,
        )
    )
    ours = DiGraph()
    theirs = nx.DiGraph()
    for node in range(n):
        ours.add_node(node)
        theirs.add_node(node)
    for src, dst in edges:
        if src != dst:
            ours.add_edge(src, dst)
            theirs.add_edge(src, dst)
    return ours, theirs


class TestAgainstNetworkx:
    @given(random_graphs())
    @settings(max_examples=60, deadline=None)
    def test_reachability_matches(self, pair):
        ours, theirs = pair
        expected = set(nx.descendants(theirs, 0)) | {0}
        assert reachable_from(ours, 0) == expected

    @given(random_graphs())
    @settings(max_examples=60, deadline=None)
    def test_cycle_detection_matches(self, pair):
        ours, theirs = pair
        assert has_cycle(ours) == (not nx.is_directed_acyclic_graph(theirs))

    @given(random_graphs())
    @settings(max_examples=40, deadline=None)
    def test_simple_paths_match(self, pair):
        ours, theirs = pair
        n = ours.number_of_nodes()
        expected = sorted(tuple(p) for p in nx.all_simple_paths(theirs, 0, n - 1))
        actual = sorted(tuple(p) for p in all_simple_paths(ours, 0, n - 1))
        assert actual == expected

    @given(random_graphs())
    @settings(max_examples=40, deadline=None)
    def test_topological_sort_valid_when_acyclic(self, pair):
        ours, theirs = pair
        if not nx.is_directed_acyclic_graph(theirs):
            return
        order = topological_sort(ours)
        position = {node: i for i, node in enumerate(order)}
        for src, dst in ours.edges():
            assert position[src] < position[dst]

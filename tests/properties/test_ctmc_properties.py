"""Property-based tests for the CTMC solvers."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.ctmc import Ctmc, aggregate_two_state, steady_state
from repro.ctmc.steady import steady_state_direct, steady_state_gth
from repro.ctmc.transient import transient_distribution


@st.composite
def irreducible_chains(draw, max_states=7):
    """Random chains made irreducible by a base cycle."""
    n = draw(st.integers(min_value=2, max_value=max_states))
    chain = Ctmc(list(range(n)))
    # base cycle guarantees a single recurrent class
    for i in range(n):
        chain.add_rate(
            i,
            (i + 1) % n,
            draw(st.floats(min_value=0.01, max_value=100.0, allow_nan=False)),
        )
    extra = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1),
                st.integers(0, n - 1),
                st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
            ),
            max_size=12,
        )
    )
    for src, dst, rate in extra:
        if src != dst:
            chain.add_rate(src, dst, rate)
    return chain


class TestSteadyStateProperties:
    @given(irreducible_chains())
    @settings(max_examples=60, deadline=None)
    def test_distribution_properties(self, chain):
        pi = steady_state(chain)
        assert pi.shape == (chain.number_of_states(),)
        assert np.all(pi >= 0.0)
        assert abs(pi.sum() - 1.0) < 1e-9
        residual = pi @ chain.dense_generator()
        assert np.abs(residual).max() < 1e-7

    @given(irreducible_chains())
    @settings(max_examples=40, deadline=None)
    def test_gth_matches_direct(self, chain):
        gth = steady_state_gth(chain)
        direct = steady_state_direct(chain)
        assert np.abs(gth - direct).max() < 1e-7

    @given(irreducible_chains(), st.floats(min_value=0.0, max_value=5.0))
    @settings(max_examples=40, deadline=None)
    def test_transient_is_distribution(self, chain, t):
        initial = {chain.states[0]: 1.0}
        pi_t = transient_distribution(chain, initial, t)
        assert np.all(pi_t >= 0.0)
        assert abs(pi_t.sum() - 1.0) < 1e-9

    @given(irreducible_chains())
    @settings(max_examples=30, deadline=None)
    def test_transient_converges_to_steady_state(self, chain):
        initial = {chain.states[0]: 1.0}
        pi = steady_state(chain)
        # time constant: a few multiples of the slowest rate scale
        horizon = 200.0 / max(
            min(rate for _, _, rate in chain.transitions()), 1e-2
        )
        pi_t = transient_distribution(chain, initial, horizon)
        assert np.abs(pi_t - pi).max() < 1e-5


class TestAggregationProperties:
    @given(irreducible_chains())
    @settings(max_examples=40, deadline=None)
    def test_aggregate_preserves_up_probability(self, chain):
        n = chain.number_of_states()
        is_up = lambda s: s < max(1, n // 2)  # noqa: E731 - concise predicate
        aggregate = aggregate_two_state(chain, is_up)
        # the two-state equivalent reproduces the original P(up)
        assert abs(aggregate.availability - aggregate.up_probability) < 1e-9

    @given(irreducible_chains())
    @settings(max_examples=40, deadline=None)
    def test_aggregate_rates_positive(self, chain):
        aggregate = aggregate_two_state(chain, lambda s: s == 0)
        assert aggregate.failure_rate > 0.0
        assert aggregate.repair_rate > 0.0
        assert 0.0 < aggregate.availability < 1.0


class TestBatchTransientProperties:
    @given(irreducible_chains(), st.lists(st.floats(min_value=0.0, max_value=20.0), min_size=1, max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_batch_rows_are_distributions_matching_reference(self, chain, times):
        from repro.ctmc.transient import BatchTransientSolver

        initial = {chain.states[0]: 1.0}
        dists = BatchTransientSolver(chain).distributions(initial, times)
        assert np.all(dists >= 0.0)
        assert np.abs(dists.sum(axis=1) - 1.0).max() < 1e-9
        for row, t in zip(dists, times):
            reference = transient_distribution(chain, initial, t)
            assert np.abs(row - reference).max() < 1e-8

    @given(irreducible_chains(), st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_batch_is_bit_identical_to_per_time_loop(self, chain, times):
        from repro.ctmc.transient import BatchTransientSolver, transient_rewards

        initial = {chain.states[0]: 1.0}
        rewards = np.arange(chain.number_of_states(), dtype=float)
        batch = BatchTransientSolver(chain).rewards(initial, rewards, times)
        oracle = transient_rewards(chain, initial, rewards, times)
        assert batch.tobytes() == oracle.tobytes()

    @given(irreducible_chains())
    @settings(max_examples=20, deadline=None)
    def test_batch_converges_to_steady_state(self, chain):
        from repro.ctmc.transient import BatchTransientSolver

        initial = {chain.states[0]: 1.0}
        pi = steady_state(chain)
        horizon = 200.0 / max(
            min(rate for _, _, rate in chain.transitions()), 1e-2
        )
        dists = BatchTransientSolver(chain).distributions(initial, [horizon])
        assert np.abs(dists[0] - pi).max() < 1e-5

    @given(
        st.floats(min_value=0.05, max_value=30.0),
        st.integers(min_value=1, max_value=4),
        st.lists(st.floats(min_value=0.0, max_value=50.0), min_size=2, max_size=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_absorption_is_monotone(self, rate, tokens, times):
        from repro.ctmc.transient import BatchTransientSolver

        # pure-death chain: tokens, tokens-1, ..., 0 (absorbing)
        chain = Ctmc(list(range(tokens, -1, -1)))
        for k in range(tokens, 0, -1):
            chain.add_rate(k, k - 1, rate * k)
        times = sorted(times)
        dists = BatchTransientSolver(chain).distributions({tokens: 1.0}, times)
        absorbed = dists[:, chain.index_of(0)]
        assert np.all(np.diff(absorbed) >= -1e-12)

"""Property-based tests for the SRN engine on random safe nets."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.srn import StochasticRewardNet, explore, solve


@st.composite
def cyclic_nets(draw):
    """A ring of places with one token and random extra transitions.

    The ring guarantees liveness and irreducibility; extra chords add
    conflict and branching.  Some transitions are immediate, exercising
    vanishing-marking elimination.
    """
    n = draw(st.integers(min_value=2, max_value=6))
    net = StochasticRewardNet("random")
    for i in range(n):
        net.add_place(f"p{i}", tokens=1 if i == 0 else 0)
    for i in range(n):
        rate = draw(st.floats(min_value=0.1, max_value=10.0, allow_nan=False))
        net.add_timed_transition(f"ring{i}", rate=rate)
        net.add_arc(f"p{i}", f"ring{i}")
        net.add_arc(f"ring{i}", f"p{(i + 1) % n}")
    chord_count = draw(st.integers(min_value=0, max_value=3))
    for c in range(chord_count):
        src = draw(st.integers(0, n - 1))
        dst = draw(st.integers(0, n - 1))
        if src == dst:
            continue
        immediate = draw(st.booleans())
        name = f"chord{c}"
        if immediate and src < dst:
            # Immediate chords only point "forward" (src < dst), so no
            # cycle of immediate transitions — and hence no timeless
            # trap — can form.
            weight = draw(st.floats(min_value=0.5, max_value=5.0))
            net.add_immediate_transition(name, weight=weight)
        else:
            rate = draw(st.floats(min_value=0.1, max_value=10.0))
            net.add_timed_transition(name, rate=rate)
        net.add_arc(f"p{src}", name)
        net.add_arc(name, f"p{dst}")
    return net


class TestStateSpaceProperties:
    @given(cyclic_nets())
    @settings(max_examples=50, deadline=None)
    def test_token_conservation(self, net):
        graph = explore(net)
        for marking in graph.tangible:
            assert sum(marking.tokens) == 1

    @given(cyclic_nets())
    @settings(max_examples=50, deadline=None)
    def test_tangible_markings_have_no_enabled_immediates(self, net):
        graph = explore(net)
        for marking in graph.tangible:
            assert not net.is_vanishing(marking)

    @given(cyclic_nets())
    @settings(max_examples=50, deadline=None)
    def test_initial_distribution_is_stochastic(self, net):
        graph = explore(net)
        dist = graph.initial_distribution
        assert np.all(dist >= 0.0)
        assert abs(dist.sum() - 1.0) < 1e-9

    @given(cyclic_nets())
    @settings(max_examples=50, deadline=None)
    def test_effective_rates_non_negative(self, net):
        graph = explore(net)
        assert all(rate >= 0.0 for rate in graph.rates.values())


class TestSolutionProperties:
    @given(cyclic_nets())
    @settings(max_examples=30, deadline=None)
    def test_steady_state_is_distribution(self, net):
        solution = solve(net)
        assert np.all(solution.probabilities >= 0.0)
        assert abs(solution.probabilities.sum() - 1.0) < 1e-9

    @given(cyclic_nets())
    @settings(max_examples=30, deadline=None)
    def test_expected_tokens_bounded(self, net):
        solution = solve(net)
        total = sum(solution.expected_tokens(p.name) for p in net.places)
        assert abs(total - 1.0) < 1e-9

    @given(cyclic_nets())
    @settings(max_examples=20, deadline=None)
    def test_probability_of_complementary_predicates(self, net):
        solution = solve(net)
        p = solution.probability_of(lambda m: m["p0"] == 1)
        q = solution.probability_of(lambda m: m["p0"] == 0)
        assert abs(p + q - 1.0) < 1e-9

"""Property-based tests for the availability model invariants."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.availability import (
    ComponentRates,
    NetworkAvailabilityModel,
    PatchPipeline,
    ServerParameters,
    aggregate_service,
    product_form_coa,
)
from repro.availability.aggregation import ServiceAggregate
from repro.availability.measures import ServerMeasures


def _fake_aggregate(name, patch_rate, recovery_rate):
    measures = ServerMeasures(0.99, 0.001, 0.0001, 0.0, 0.0, 0.0)
    return ServiceAggregate(
        name=name,
        patch_rate=patch_rate,
        recovery_rate=recovery_rate,
        measures=measures,
    )


rates = st.floats(min_value=1e-4, max_value=10.0, allow_nan=False)


class TestCoaProperties:
    @given(
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=1, max_value=3),
        rates,
        rates,
    )
    @settings(max_examples=40, deadline=None)
    def test_srn_matches_product_form(self, n_a, n_b, lam, mu):
        aggregates = {
            "a": _fake_aggregate("a", lam, mu),
            "b": _fake_aggregate("b", lam * 0.5 + 1e-4, mu * 2.0),
        }
        capacities = {"a": n_a, "b": n_b}
        model = NetworkAvailabilityModel(capacities, aggregates)
        srn_coa = model.capacity_oriented_availability()
        closed = product_form_coa(
            capacities,
            {k: v.patch_rate for k, v in aggregates.items()},
            {k: v.recovery_rate for k, v in aggregates.items()},
        )
        assert abs(srn_coa - closed) < 1e-9

    @given(st.integers(min_value=1, max_value=4), rates, rates)
    @settings(max_examples=40, deadline=None)
    def test_redundancy_monotone(self, n, lam, mu):
        """COA never decreases when a replica is added."""
        def coa(count):
            return product_form_coa({"svc": count}, {"svc": lam}, {"svc": mu})

        assert coa(n + 1) >= coa(n) - 1e-12

    @given(rates, rates)
    @settings(max_examples=40, deadline=None)
    def test_coa_bounded_by_availability(self, lam, mu):
        """COA <= single-server availability <= 1."""
        single = product_form_coa({"svc": 1}, {"svc": lam}, {"svc": mu})
        assert 0.0 <= single <= 1.0
        assert single == mu / (lam + mu) or abs(single - mu / (lam + mu)) < 1e-12


class TestServerPipelineProperties:
    @given(
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=0, max_value=4),
    )
    @settings(max_examples=10, deadline=None)
    def test_mttr_tracks_vulnerability_counts(self, app_count, os_count):
        """The aggregated MTTR approximates the pipeline downtime for any
        vulnerability workload."""
        params = ServerParameters(
            name="x",
            rates=ComponentRates(),
            patch=PatchPipeline.from_vulnerability_counts(app_count, os_count),
        )
        aggregate = aggregate_service(params)
        assert aggregate.mttr_hours == (
            params.patch.expected_downtime_hours
        ) or abs(
            aggregate.mttr_hours - params.patch.expected_downtime_hours
        ) / params.patch.expected_downtime_hours < 5e-3

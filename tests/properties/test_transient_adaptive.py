"""Property-based tests for the adaptive transient solver.

The adaptive method may stop the uniformisation recurrence early once
the iterate has converged, serving the remaining Poisson tail from the
fixed-point estimate.  Its contract: the result never deviates from the
exact uniformisation sum by more than the declared ``atol``.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.ctmc import Ctmc
from repro.ctmc.transient import BatchTransientSolver


@st.composite
def irreducible_chains(draw, max_states=7):
    """Random chains made irreducible by a base cycle."""
    n = draw(st.integers(min_value=2, max_value=max_states))
    chain = Ctmc(list(range(n)))
    for i in range(n):
        chain.add_rate(
            i,
            (i + 1) % n,
            draw(st.floats(min_value=0.01, max_value=50.0, allow_nan=False)),
        )
    extra = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1),
                st.integers(0, n - 1),
                st.floats(min_value=0.01, max_value=50.0, allow_nan=False),
            ),
            max_size=10,
        )
    )
    for src, dst, rate in extra:
        if src != dst:
            chain.add_rate(src, dst, rate)
    return chain


@st.composite
def time_grids(draw):
    times = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
            min_size=1,
            max_size=5,
        )
    )
    return times


class TestAdaptiveErrorBound:
    @given(
        irreducible_chains(),
        time_grids(),
        st.sampled_from([1e-6, 1e-8, 1e-10]),
    )
    @settings(max_examples=60, deadline=None)
    def test_early_exit_never_exceeds_declared_atol(self, chain, times, atol):
        n = chain.number_of_states()
        pi0 = np.zeros(n)
        pi0[0] = 1.0
        adaptive = BatchTransientSolver(chain, method="adaptive", atol=atol)
        exact = BatchTransientSolver(chain, method="uniformisation")
        a = adaptive.distributions(pi0, times)
        b = exact.distributions(pi0, times)
        assert np.abs(a - b).max() <= atol

    @given(irreducible_chains(), time_grids())
    @settings(max_examples=40, deadline=None)
    def test_results_are_distributions(self, chain, times):
        n = chain.number_of_states()
        pi0 = np.zeros(n)
        pi0[0] = 1.0
        solver = BatchTransientSolver(chain, method="adaptive", atol=1e-8)
        out = solver.distributions(pi0, times)
        assert np.all(out >= 0.0)
        np.testing.assert_allclose(out.sum(axis=1), 1.0, rtol=0.0, atol=1e-12)

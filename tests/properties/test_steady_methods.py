"""Cross-checks of the steady-state solvers and the sweep engine.

Property 1: ``gth``, ``direct`` and ``power`` agree on random
irreducible generators (and on the vectorized batch-assembly path).

Property 2: a :class:`SweepEngine` parallel run of a >= 64-design space
is identical to the serial run — same order, and every float is
bit-for-bit equal.
"""

from __future__ import annotations

import struct

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ctmc import BatchSteadySolver, Ctmc, steady_state_batch
from repro.ctmc.steady import (
    steady_state_direct,
    steady_state_gth,
    steady_state_power,
)
from repro.evaluation import SweepEngine, enumerate_designs


@st.composite
def irreducible_chains(draw, max_states=7):
    """Random chains made irreducible by a base cycle."""
    n = draw(st.integers(min_value=2, max_value=max_states))
    chain = Ctmc(list(range(n)))
    for i in range(n):
        chain.add_rate(
            i,
            (i + 1) % n,
            draw(st.floats(min_value=0.01, max_value=100.0, allow_nan=False)),
        )
    extra = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1),
                st.integers(0, n - 1),
                st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
            ),
            max_size=2 * n,
        )
    )
    for src, dst, rate in extra:
        if src != dst:
            chain.add_rate(src, dst, rate)
    return chain


class TestSteadyMethodAgreement:
    @settings(max_examples=40, deadline=None)
    @given(chain=irreducible_chains())
    def test_gth_direct_power_agree(self, chain):
        gth = steady_state_gth(chain)
        direct = steady_state_direct(chain)
        power = steady_state_power(chain, tolerance=1e-13)
        for pi in (gth, direct, power):
            assert np.all(pi >= 0.0)
            assert abs(pi.sum() - 1.0) < 1e-9
        assert np.max(np.abs(gth - direct)) < 1e-8
        assert np.max(np.abs(gth - power)) < 1e-7

    @settings(max_examples=40, deadline=None)
    @given(chain=irreducible_chains())
    def test_balance_equations_hold(self, chain):
        pi = steady_state_gth(chain)
        residual = pi @ chain.dense_generator()
        assert np.max(np.abs(residual)) < 1e-8

    @settings(max_examples=30, deadline=None)
    @given(chain=irreducible_chains())
    def test_batch_solver_matches_per_chain_methods(self, chain):
        solver = BatchSteadySolver.from_chain(chain)
        rates = solver.rates_of(chain)
        for method, reference in (
            ("gth", steady_state_gth),
            ("direct", steady_state_direct),
        ):
            batched = solver.solve(rates, method=method)
            assert np.max(np.abs(batched - reference(chain))) < 1e-12

    @settings(max_examples=20, deadline=None)
    @given(chains=st.lists(irreducible_chains(max_states=5), min_size=1, max_size=4))
    def test_steady_state_batch_order_and_values(self, chains):
        batched = steady_state_batch(chains)
        assert len(batched) == len(chains)
        for pi, chain in zip(batched, chains):
            assert np.max(np.abs(pi - steady_state_gth(chain))) < 1e-12


def _float_bits(value: float) -> bytes:
    return struct.pack("<d", value)


def _evaluation_bits(evaluation) -> tuple:
    """Every float of one evaluation as exact bit patterns."""
    out = [evaluation.label]
    for snapshot in (evaluation.before, evaluation.after):
        out.append(_float_bits(snapshot.coa))
        for value in snapshot.security.as_dict().values():
            out.append(_float_bits(float(value)))
        out.append(_float_bits(snapshot.security.total_risk))
        out.append(_float_bits(snapshot.security.max_path_probability))
    return tuple(out)


class TestEngineExecutorIdentity:
    @pytest.fixture(scope="class")
    def design_space(self):
        designs = list(enumerate_designs(["dns", "web", "app"], max_replicas=4))
        assert len(designs) == 64
        return designs

    def test_parallel_identical_to_serial(self, design_space):
        serial = SweepEngine(executor="serial").evaluate(design_space)
        parallel = SweepEngine(
            executor="process", max_workers=2, chunk_size=8
        ).evaluate(design_space)
        assert len(serial) == len(parallel) == 64
        # Same order.
        assert [e.label for e in serial] == [e.label for e in parallel]
        # Same values, field by field (dataclass equality).
        assert serial == parallel
        # Bit-for-bit identical floats.
        for left, right in zip(serial, parallel):
            assert _evaluation_bits(left) == _evaluation_bits(right)

    def test_serial_rerun_is_deterministic(self, design_space):
        first = SweepEngine(executor="serial").evaluate(design_space)
        second = SweepEngine(executor="serial").evaluate(design_space)
        for left, right in zip(first, second):
            assert _evaluation_bits(left) == _evaluation_bits(right)

"""Property-based tests on the evaluation layer's invariants."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.evaluation.requirements import (
    MultiMetricRequirement,
    TwoMetricRequirement,
    satisfying_designs,
)


class TestRequirementMonotonicity:
    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_relaxing_bounds_never_shrinks_selection(
        self, design_evaluations, phi1, phi2, psi1, psi2
    ):
        """A looser region contains every design a tighter one accepts."""
        phi_tight, phi_loose = sorted((phi1, phi2))
        psi_loose, psi_tight = sorted((psi1, psi2))
        tight = TwoMetricRequirement(phi_tight, psi_tight)
        loose = TwoMetricRequirement(phi_loose, psi_loose)
        selected_tight = {
            e.label for e in satisfying_designs(design_evaluations, tight)
        }
        selected_loose = {
            e.label for e in satisfying_designs(design_evaluations, loose)
        }
        assert selected_tight <= selected_loose

    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.integers(min_value=0, max_value=30),
        st.integers(min_value=0, max_value=10),
        st.integers(min_value=0, max_value=5),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_multi_metric_subset_of_two_metric(
        self, design_evaluations, phi, xi, omega, kappa, psi
    ):
        """Eq. (4) adds constraints to Eq. (3): its selection is a subset."""
        two = TwoMetricRequirement(phi, psi)
        multi = MultiMetricRequirement(phi, xi, omega, kappa, psi)
        selected_two = {
            e.label for e in satisfying_designs(design_evaluations, two)
        }
        selected_multi = {
            e.label for e in satisfying_designs(design_evaluations, multi)
        }
        assert selected_multi <= selected_two

    @given(st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=30, deadline=None)
    def test_impossible_region_selects_nothing(self, design_evaluations, phi):
        region = TwoMetricRequirement(phi, 1.0)  # COA must be exactly 1
        assert satisfying_designs(design_evaluations, region) == []

    @given(st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=30, deadline=None)
    def test_trivial_region_selects_everything(self, design_evaluations, psi_ignored):
        region = TwoMetricRequirement(1.0, 0.0)
        assert len(satisfying_designs(design_evaluations, region)) == len(
            design_evaluations
        )

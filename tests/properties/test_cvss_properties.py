"""Property-based tests for the CVSS substrate."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.cvss import (
    CvssVector,
    base_score,
    exploitability_subscore,
    impact_subscore,
    severity_from_score,
)

vectors = st.builds(
    CvssVector,
    access_vector=st.sampled_from("LAN"),
    access_complexity=st.sampled_from("HML"),
    authentication=st.sampled_from("MSN"),
    conf_impact=st.sampled_from("NPC"),
    integ_impact=st.sampled_from("NPC"),
    avail_impact=st.sampled_from("NPC"),
)

_IMPACT_ORDER = {"N": 0, "P": 1, "C": 2}
_AV_ORDER = {"L": 0, "A": 1, "N": 2}
_AC_ORDER = {"H": 0, "M": 1, "L": 2}
_AU_ORDER = {"M": 0, "S": 1, "N": 2}


class TestScoreBounds:
    @given(vectors)
    def test_scores_within_range(self, vector):
        assert 0.0 <= impact_subscore(vector) <= 10.0
        assert 0.0 <= exploitability_subscore(vector) <= 10.0
        assert 0.0 <= base_score(vector) <= 10.0

    @given(vectors)
    def test_scores_have_one_decimal(self, vector):
        for value in (
            impact_subscore(vector),
            exploitability_subscore(vector),
            base_score(vector),
        ):
            assert value == round(value, 1)

    @given(vectors)
    def test_zero_impact_zeroes_base(self, vector):
        if impact_subscore(vector) == 0.0:
            assert base_score(vector) == 0.0

    @given(vectors)
    def test_severity_total_on_scores(self, vector):
        # severity banding accepts every producible score
        severity_from_score(base_score(vector))

    @given(vectors)
    def test_roundtrip_parse(self, vector):
        assert CvssVector.parse(vector.to_string()) == vector


class TestMonotonicity:
    @given(vectors, st.sampled_from("NPC"))
    def test_raising_conf_impact_never_lowers_scores(self, vector, new_level):
        if _IMPACT_ORDER[new_level] < _IMPACT_ORDER[vector.conf_impact]:
            return
        raised = CvssVector(
            access_vector=vector.access_vector,
            access_complexity=vector.access_complexity,
            authentication=vector.authentication,
            conf_impact=new_level,
            integ_impact=vector.integ_impact,
            avail_impact=vector.avail_impact,
        )
        assert impact_subscore(raised) >= impact_subscore(vector)
        assert base_score(raised) >= base_score(vector)

    @given(vectors, st.sampled_from("LAN"))
    def test_widening_access_vector_never_lowers_base(self, vector, new_level):
        if _AV_ORDER[new_level] < _AV_ORDER[vector.access_vector]:
            return
        widened = CvssVector(
            access_vector=new_level,
            access_complexity=vector.access_complexity,
            authentication=vector.authentication,
            conf_impact=vector.conf_impact,
            integ_impact=vector.integ_impact,
            avail_impact=vector.avail_impact,
        )
        assert exploitability_subscore(widened) >= exploitability_subscore(vector)
        assert base_score(widened) >= base_score(vector)

"""Property-based tests for the structure-sharing pipeline.

The load-bearing invariant: pattern-grouped (shared-structure) solves
are **bit-identical** to per-design solves, over arbitrary mixed
populations of homogeneous and heterogeneous designs — the acceptance
contract that lets the sweep engine group freely without changing a
single result.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.enterprise import (
    HeterogeneousDesign,
    RedundancyDesign,
    paper_case_study,
    paper_variant_space,
)
from repro.evaluation import AvailabilityEvaluator
from repro.patching import CriticalVulnerabilityPolicy
from repro.srn import StochasticRewardNet, solve, solve_families
from repro.vulnerability.diversity import diversity_database

_CASE_STUDY = paper_case_study()
_POLICY = CriticalVulnerabilityPolicy()
_SPACE = paper_variant_space()
_DATABASE = diversity_database()

_ROLES = ("dns", "web", "app", "db")


def _homogeneous(draw):
    roles = draw(
        st.lists(
            st.sampled_from(_ROLES), min_size=1, max_size=3, unique=True
        )
    )
    counts = {
        role: draw(st.integers(min_value=1, max_value=3)) for role in roles
    }
    return RedundancyDesign(counts)


def _heterogeneous(draw):
    roles = draw(
        st.lists(
            st.sampled_from(_ROLES), min_size=1, max_size=2, unique=True
        )
    )
    assignment = {}
    for role in roles:
        pool = _SPACE[role]
        chosen = draw(
            st.lists(
                st.sampled_from(range(len(pool))),
                min_size=1,
                max_size=len(pool),
                unique=True,
            )
        )
        assignment[role] = {
            pool[index]: draw(st.integers(min_value=1, max_value=2))
            for index in chosen
        }
    return HeterogeneousDesign(assignment)


@st.composite
def design_populations(draw):
    population = []
    for _ in range(draw(st.integers(min_value=2, max_value=6))):
        if draw(st.booleans()):
            population.append(_homogeneous(draw))
        else:
            population.append(_heterogeneous(draw))
    return population


class TestGroupedSolveParity:
    @given(design_populations())
    @settings(max_examples=15, deadline=None)
    def test_grouped_coa_bit_identical_to_per_design(self, population):
        shared = AvailabilityEvaluator(
            _CASE_STUDY, _POLICY, database=_DATABASE
        )
        fresh = AvailabilityEvaluator(
            _CASE_STUDY, _POLICY, database=_DATABASE, structure_sharing=False
        )
        for design in population:
            assert shared.coa(design).hex() == fresh.coa(design).hex()

    @given(design_populations(), st.integers(min_value=1, max_value=4))
    @settings(max_examples=8, deadline=None)
    def test_grouped_transient_bit_identical(self, population, points):
        times = tuple(float(24 * 30 * i) for i in range(points + 1))
        shared = AvailabilityEvaluator(
            _CASE_STUDY, _POLICY, database=_DATABASE
        )
        fresh = AvailabilityEvaluator(
            _CASE_STUDY, _POLICY, database=_DATABASE, structure_sharing=False
        )
        for design in population:
            a = shared.transient_coa(design, times)
            b = fresh.transient_coa(design, times)
            assert a.tobytes() == b.tobytes()


class TestSolveFamiliesParity:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=4),  # tokens
                st.floats(min_value=0.01, max_value=50.0),  # down rate
                st.floats(min_value=0.01, max_value=50.0),  # up rate
            ),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_families_bit_identical_to_solo_solves(self, specs):
        nets = []
        for i, (tokens, down_rate, up_rate) in enumerate(specs):
            net = StochasticRewardNet(f"net{i}")
            net.add_place("Pup", tokens=tokens)
            net.add_place("Pdown")

            def down(m, _r=down_rate):
                return _r * m["Pup"]

            def up(m, _r=up_rate):
                return _r * m["Pdown"]

            net.add_timed_transition("Td", rate=down)
            net.add_arc("Pup", "Td")
            net.add_arc("Td", "Pdown")
            net.add_timed_transition("Tu", rate=up)
            net.add_arc("Pdown", "Tu")
            net.add_arc("Tu", "Pup")
            nets.append(net)

        grouped = solve_families(nets)
        for net, solution in zip(nets, grouped):
            reference = solve(net)
            assert (
                solution.probabilities.tobytes()
                == reference.probabilities.tobytes()
            )
            assert np.array_equal(
                solution.graph.initial_distribution,
                reference.graph.initial_distribution,
            )

"""Property-based tests for attack trees: bounds and pruning monotonicity."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.attacktree import AttackTree, PROBABILISTIC, WORST_CASE
from repro.attacktree.nodes import Gate, GateNode, LeafNode

leaf_strategy = st.builds(
    LeafNode,
    name=st.text(
        alphabet=st.characters(whitelist_categories=("Ll", "Nd")), min_size=1, max_size=6
    ),
    impact=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    probability=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)


def node_strategy(depth=3):
    if depth == 0:
        return leaf_strategy
    return st.one_of(
        leaf_strategy,
        st.builds(
            GateNode,
            gate=st.sampled_from([Gate.AND, Gate.OR]),
            children=st.lists(node_strategy(depth - 1), min_size=1, max_size=3).map(
                tuple
            ),
        ),
    )


trees = node_strategy().map(AttackTree)


class TestEvaluationBounds:
    @given(trees)
    def test_probability_in_unit_interval(self, tree):
        for semantics in (WORST_CASE, PROBABILISTIC):
            assert 0.0 <= tree.probability(semantics) <= 1.0

    @given(trees)
    def test_impact_non_negative_and_bounded_by_leaf_sum(self, tree):
        total = sum(leaf.impact for leaf in tree.leaves())
        impact = tree.impact()
        assert 0.0 <= impact <= total + 1e-9

    @given(trees)
    def test_probabilistic_at_least_worst_case(self, tree):
        assert (
            tree.probability(PROBABILISTIC) >= tree.probability(WORST_CASE) - 1e-12
        )

    @given(trees)
    def test_size_counts_leaves_and_gates(self, tree):
        assert tree.size() >= len(tree.leaves())
        assert tree.depth() >= 1


class TestPruningProperties:
    @given(trees, st.data())
    def test_pruning_never_increases_metrics(self, tree, data):
        names = tree.leaf_names()
        to_drop = data.draw(
            st.lists(st.sampled_from(names), max_size=len(names), unique=True)
        )
        pruned = tree.without_leaves(to_drop)
        if pruned is None:
            return
        assert pruned.probability() <= tree.probability() + 1e-12
        assert pruned.impact() <= tree.impact() + 1e-9

    @given(trees)
    def test_pruning_all_leaves_kills_tree(self, tree):
        assert tree.without_leaves(tree.leaf_names()) is None

    @given(trees)
    def test_pruning_nothing_preserves_metrics(self, tree):
        same = tree.without_leaves([])
        assert same.probability() == tree.probability()
        assert same.impact() == tree.impact()

    @given(trees, st.data())
    def test_pruned_leaves_absent(self, tree, data):
        names = tree.leaf_names()
        to_drop = set(
            data.draw(
                st.lists(st.sampled_from(names), max_size=len(names), unique=True)
            )
        )
        pruned = tree.without_leaves(to_drop)
        if pruned is not None:
            assert not (set(pruned.leaf_names()) & to_drop)

"""User-oriented performance extension (Section V of the paper).

The paper leaves client-request performance to future work and suggests
queueing models.  :mod:`repro.performance.mmc` implements the M/M/c
queue (Erlang-C); :mod:`repro.performance.performability` composes it
with the availability model: the number of working servers fluctuates
with the patch process, so the expected response time is the
availability-weighted mixture over server-count states.
"""

from repro.performance.mmc import MmcQueue
from repro.performance.performability import (
    PerformabilityResult,
    expected_response_time,
)

__all__ = ["MmcQueue", "PerformabilityResult", "expected_response_time"]

"""Performability: response time under patch-induced capacity loss.

The number of working servers of a tier fluctuates as the patch process
takes replicas down.  Conditioning the M/M/c response time on the
steady-state distribution of up-servers gives the expected response time
a client sees, plus the probability of total outage (no server up, or an
unstable queue) — a concrete version of the paper's "user oriented
performance" future-work item.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._validation import check_positive
from repro.availability.network import NetworkAvailabilityModel
from repro.errors import EvaluationError
from repro.performance.mmc import MmcQueue

__all__ = ["PerformabilityResult", "expected_response_time"]


@dataclass(frozen=True)
class PerformabilityResult:
    """Availability-weighted queueing measures for one service tier."""

    service: str
    mean_response_time: float
    outage_probability: float
    per_state: dict[int, float]

    def describe(self) -> str:
        """One-line summary."""
        return (
            f"{self.service}: E[T]={self.mean_response_time:.4f}h "
            f"(outage probability {self.outage_probability:.2e})"
        )


def expected_response_time(
    model: NetworkAvailabilityModel,
    service: str,
    arrival_rate: float,
    service_rate: float,
) -> PerformabilityResult:
    """Availability-weighted mean response time of one tier.

    Parameters
    ----------
    model:
        A solved (or solvable) network availability model.
    service:
        The tier to analyse.
    arrival_rate, service_rate:
        Client-request arrival rate and per-server service rate (same
        time unit as the availability model, hours in the paper).

    States with zero up-servers — or where the queue would be unstable —
    count as outages and are excluded from the response-time average,
    which is reported conditional on the service being usable.
    """
    check_positive(arrival_rate, "arrival_rate")
    check_positive(service_rate, "service_rate")
    distribution = model.service_up_distribution(service)
    outage = 0.0
    weighted = 0.0
    usable_mass = 0.0
    per_state: dict[int, float] = {}
    for up_count, probability in distribution.items():
        if up_count == 0:
            outage += probability
            continue
        queue = MmcQueue(
            arrival_rate=arrival_rate,
            service_rate=service_rate,
            servers=up_count,
        )
        if not queue.is_stable:
            outage += probability
            continue
        response = queue.mean_response_time()
        per_state[up_count] = response
        weighted += probability * response
        usable_mass += probability
    if usable_mass <= 0.0:
        raise EvaluationError(
            f"service {service!r} is never usable under these rates"
        )
    return PerformabilityResult(
        service=service,
        mean_response_time=weighted / usable_mass,
        outage_probability=outage,
        per_state=per_state,
    )

"""M/M/c queueing formulas (Erlang C)."""

from __future__ import annotations

from dataclasses import dataclass
from math import factorial

from repro._validation import check_positive, check_positive_int
from repro.errors import EvaluationError

__all__ = ["MmcQueue"]


@dataclass(frozen=True)
class MmcQueue:
    """An M/M/c queue: Poisson arrivals, c exponential servers, FCFS.

    Examples
    --------
    >>> queue = MmcQueue(arrival_rate=8.0, service_rate=10.0, servers=1)
    >>> round(queue.mean_response_time(), 3)
    0.5
    """

    arrival_rate: float
    service_rate: float
    servers: int

    def __post_init__(self) -> None:
        check_positive(self.arrival_rate, "arrival_rate")
        check_positive(self.service_rate, "service_rate")
        check_positive_int(self.servers, "servers")

    @property
    def offered_load(self) -> float:
        """a = lambda / mu (Erlangs)."""
        return self.arrival_rate / self.service_rate

    @property
    def utilisation(self) -> float:
        """rho = lambda / (c mu)."""
        return self.offered_load / self.servers

    @property
    def is_stable(self) -> bool:
        """Whether the queue has a steady state (rho < 1)."""
        return self.utilisation < 1.0

    def _require_stable(self) -> None:
        if not self.is_stable:
            raise EvaluationError(
                f"M/M/{self.servers} queue is unstable: utilisation "
                f"{self.utilisation:.3f} >= 1"
            )

    def erlang_c(self) -> float:
        """Probability an arriving job must wait (Erlang-C formula)."""
        self._require_stable()
        a = self.offered_load
        c = self.servers
        summation = sum(a**k / factorial(k) for k in range(c))
        tail = a**c / (factorial(c) * (1.0 - self.utilisation))
        return tail / (summation + tail)

    def mean_queue_length(self) -> float:
        """Expected number of waiting jobs, Lq."""
        self._require_stable()
        rho = self.utilisation
        return self.erlang_c() * rho / (1.0 - rho)

    def mean_waiting_time(self) -> float:
        """Expected waiting time before service, Wq."""
        return self.mean_queue_length() / self.arrival_rate

    def mean_response_time(self) -> float:
        """Expected sojourn time W = Wq + 1/mu."""
        return self.mean_waiting_time() + 1.0 / self.service_rate

    def mean_jobs_in_system(self) -> float:
        """Expected jobs in the system, L = lambda W (Little's law)."""
        return self.arrival_rate * self.mean_response_time()

"""Absorbing-state analysis: mean time to absorption and hit probabilities.

Used for survivability-style questions the steady-state pipeline cannot
answer, e.g. "starting from all servers up, how long until the network
first loses a whole service tier?".  Transient states T and absorbing
states A partition the chain; with Q_TT the sub-generator on T,

    MTTA  = solve(Q_TT m = -1)          (per starting state)
    B     = solve(Q_TT B = -Q_TA)       (absorption probabilities)
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np
from scipy.sparse import linalg as sparse_linalg

from repro.ctmc.chain import Ctmc, State
from repro.errors import CtmcError, SolverError

__all__ = ["mean_time_to_absorption", "absorption_probabilities", "make_absorbing"]


def make_absorbing(chain: Ctmc, is_absorbing: Callable[[State], bool]) -> Ctmc:
    """A copy of *chain* with outgoing rates of absorbing states removed."""
    states = chain.states
    absorbing = {state for state in states if is_absorbing(state)}
    if not absorbing:
        raise CtmcError("no state satisfies the absorbing predicate")
    clone = Ctmc(states)
    for i, j, rate in chain.transitions():
        if states[i] not in absorbing:
            clone.add_rate(states[i], states[j], rate)
    return clone


def _partition(chain: Ctmc) -> tuple[list[int], list[int]]:
    states = chain.states
    absorbing = set(chain.absorbing_states())
    transient_idx = [i for i, s in enumerate(states) if s not in absorbing]
    absorbing_idx = [i for i, s in enumerate(states) if s in absorbing]
    if not absorbing_idx:
        raise CtmcError("chain has no absorbing states")
    if not transient_idx:
        raise CtmcError("chain has no transient states")
    return transient_idx, absorbing_idx


def mean_time_to_absorption(
    chain: Ctmc, start: State | None = None
) -> float | dict[State, float]:
    """Expected time until absorption.

    With *start* given, returns a float for that state; otherwise a
    mapping over every transient state.  Raises if some transient state
    cannot reach an absorbing state (infinite expectation).
    """
    transient_idx, _ = _partition(chain)
    q = chain.generator().tocsc().astype(float)
    q_tt = q[np.ix_(transient_idx, transient_idx)]
    ones = np.ones(len(transient_idx))
    try:
        times = sparse_linalg.spsolve(q_tt.tocsc(), -ones)
    except Exception as exc:
        raise SolverError(f"MTTA solve failed: {exc}") from exc
    times = np.atleast_1d(times)
    if not np.all(np.isfinite(times)) or np.any(times < -1e-9):
        raise SolverError(
            "MTTA is undefined: some transient state never reaches absorption"
        )
    states = chain.states
    table = {states[i]: float(t) for i, t in zip(transient_idx, times)}
    if start is not None:
        try:
            return table[start]
        except KeyError:
            raise CtmcError(
                f"state {start!r} is absorbing or unknown; MTTA undefined"
            ) from None
    return table


def absorption_probabilities(
    chain: Ctmc, start: State
) -> dict[State, float]:
    """Probability of ending in each absorbing state, from *start*."""
    transient_idx, absorbing_idx = _partition(chain)
    states = chain.states
    start_position = {states[i]: k for k, i in enumerate(transient_idx)}.get(start)
    if start_position is None:
        raise CtmcError(f"start state {start!r} must be transient")
    q = chain.generator().tocsc().astype(float)
    q_ta = q[np.ix_(transient_idx, absorbing_idx)]
    q_tt = q[np.ix_(transient_idx, transient_idx)]
    try:
        solution = sparse_linalg.spsolve(q_tt.tocsc(), -q_ta.toarray())
    except Exception as exc:
        raise SolverError(f"absorption-probability solve failed: {exc}") from exc
    matrix = np.atleast_2d(solution)
    if matrix.shape[0] != len(transient_idx):
        matrix = matrix.reshape(len(transient_idx), len(absorbing_idx))
    row = matrix[start_position]
    return {states[j]: float(p) for j, p in zip(absorbing_idx, row)}

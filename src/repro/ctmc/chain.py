"""Labelled continuous-time Markov chains."""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping, Sequence

import numpy as np
from scipy import sparse

from repro.errors import CtmcError

__all__ = ["Ctmc"]

State = Hashable


class Ctmc:
    """A finite CTMC with hashable state labels.

    The chain is defined by transition *rates* between labelled states;
    the infinitesimal generator ``Q`` is derived with diagonal entries
    ``-sum(row)``.  States keep insertion order, which fixes the index of
    each label in every vector the solvers return.

    Examples
    --------
    >>> chain = Ctmc.from_rates({("up", "down"): 2.0, ("down", "up"): 8.0})
    >>> chain.number_of_states()
    2
    """

    def __init__(self, states: Sequence[State]) -> None:
        if not states:
            raise CtmcError("a CTMC needs at least one state")
        self._states: list[State] = list(states)
        self._index: dict[State, int] = {}
        for position, state in enumerate(self._states):
            if state in self._index:
                raise CtmcError(f"duplicate state label {state!r}")
            self._index[state] = position
        self._rates: dict[tuple[int, int], float] = {}

    # -- constructors ------------------------------------------------------------

    @classmethod
    def from_rates(
        cls,
        rates: Mapping[tuple[State, State], float],
        states: Iterable[State] | None = None,
    ) -> "Ctmc":
        """Build a chain from a ``{(src, dst): rate}`` mapping.

        Extra isolated states may be supplied via *states*; otherwise the
        state set is inferred from the mapping keys in encounter order.
        """
        if states is None:
            ordered: list[State] = []
            seen = set()
            for src, dst in rates:
                for state in (src, dst):
                    if state not in seen:
                        seen.add(state)
                        ordered.append(state)
            states = ordered
        chain = cls(list(states))
        for (src, dst), rate in rates.items():
            chain.add_rate(src, dst, rate)
        return chain

    # -- construction ------------------------------------------------------------

    def add_rate(self, src: State, dst: State, rate: float) -> None:
        """Add (accumulate) a transition rate from *src* to *dst*."""
        i = self.index_of(src)
        j = self.index_of(dst)
        if i == j:
            raise CtmcError(f"self-loop rate on state {src!r} is meaningless")
        if not isinstance(rate, (int, float)) or rate != rate:
            raise CtmcError(f"rate must be a finite number, got {rate!r}")
        if rate < 0:
            raise CtmcError(f"rate must be >= 0, got {rate!r}")
        if rate == 0:
            return
        self._rates[(i, j)] = self._rates.get((i, j), 0.0) + float(rate)

    # -- structure ---------------------------------------------------------------

    @property
    def states(self) -> list[State]:
        """State labels in index order."""
        return list(self._states)

    def index_of(self, state: State) -> int:
        """The index of *state*.

        Raises
        ------
        CtmcError
            If the label is unknown.
        """
        try:
            return self._index[state]
        except KeyError:
            raise CtmcError(f"unknown state {state!r}") from None

    def number_of_states(self) -> int:
        """State count."""
        return len(self._states)

    def number_of_transitions(self) -> int:
        """Number of distinct nonzero rate entries."""
        return len(self._rates)

    def rate(self, src: State, dst: State) -> float:
        """The transition rate from *src* to *dst* (0 if absent)."""
        return self._rates.get((self.index_of(src), self.index_of(dst)), 0.0)

    def exit_rate(self, state: State) -> float:
        """Total rate out of *state*."""
        i = self.index_of(state)
        return sum(rate for (src, _), rate in self._rates.items() if src == i)

    def absorbing_states(self) -> list[State]:
        """States with no outgoing transitions."""
        have_exit = {src for (src, _) in self._rates}
        return [s for i, s in enumerate(self._states) if i not in have_exit]

    def transitions(self) -> list[tuple[int, int, float]]:
        """All transitions as ``(src_index, dst_index, rate)`` triples."""
        return [(i, j, rate) for (i, j), rate in self._rates.items()]

    # -- matrices ----------------------------------------------------------------

    def generator(self) -> sparse.csr_matrix:
        """The infinitesimal generator ``Q`` as a CSR sparse matrix."""
        n = len(self._states)
        if not self._rates:
            return sparse.csr_matrix((n, n))
        rows, cols, vals = [], [], []
        diagonal = np.zeros(n)
        for (i, j), rate in self._rates.items():
            rows.append(i)
            cols.append(j)
            vals.append(rate)
            diagonal[i] -= rate
        for i in range(n):
            if diagonal[i] != 0.0:
                rows.append(i)
                cols.append(i)
                vals.append(diagonal[i])
        return sparse.csr_matrix((vals, (rows, cols)), shape=(n, n))

    def dense_generator(self) -> np.ndarray:
        """The generator as a dense array (small chains only)."""
        return self.generator().toarray()

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"Ctmc(states={self.number_of_states()}, "
            f"transitions={self.number_of_transitions()})"
        )

"""Transient analysis by uniformisation (Jensen's method).

``pi(t) = sum_k PoissonPMF(k; Lambda t) * pi(0) P^k`` with
``P = I + Q / Lambda``.  The truncation point is chosen so the neglected
Poisson tail is below the requested tolerance.

Two evaluation paths are provided:

:func:`transient_distribution`
    The single-time reference implementation (one uniformisation per
    call, matrix-power left-truncation shortcut for dense chains).
:class:`BatchTransientSolver` / :func:`transient_batch`
    The batched path: uniformise *once* per chain — one generator, one
    Poisson-weight table, one stream of uniformised iterates — and
    evaluate many time points and many reward vectors in a single pass.
    Iterates are anchored at absolute Poisson indices (blocks of
    precomputed matrix powers for dense chains, a plain sequential
    recurrence for sparse ones), so evaluating a set of times in one
    call is **bit-identical** to evaluating them one call at a time:
    the per-time loop in :func:`transient_rewards` is the parity oracle
    the batch solver is tested against.
:func:`transient_piecewise`
    The non-stationary path: a piecewise-constant chain described by
    ``(solver, duration)`` segments (one uniformised solver per
    segment, e.g. one per patch-campaign phase).  The state vector is
    carried across segment boundaries and each segment serves every
    time point falling inside it (plus the boundary itself) from one
    batch pass — so an n-segment evaluation costs n passes, and the
    anchored-iterate contract makes it bit-identical to the brute-force
    oracle that re-propagates phase by phase for every single time
    point.

Large state spaces pick an alternative backend through
``BatchTransientSolver(method=...)``:

``"uniformisation"`` (default)
    The exact anchored-iterate path above.
``"krylov"``
    Sparse Krylov propagation via :func:`scipy.sparse.linalg.expm_multiply`:
    the state vector is advanced interval by interval over the sorted
    time points, never materialising ``P`` or its powers.  Accuracy is
    near machine precision but not bit-identical to uniformisation.
``"adaptive"``
    Steady-state-detecting uniformisation for long horizons: iterate
    streaming stops once successive uniformised iterates converge
    (L1 difference small enough that the remaining Poisson tail cannot
    move any answer by more than ``atol``), and all remaining weight is
    served from the detected fixed point.
``"auto"``
    Size dispatch: exact uniformisation up to the auto threshold
    (:data:`_AUTO_CUTOFF`, env ``REPRO_AUTO_METHOD_THRESHOLD``),
    adaptive above it (it shares the exact path's arithmetic until its
    bounded early exit, and dominates Krylov on the repair-dominated
    chains this repo solves).  The paper-scale models stay below the
    threshold, so ``auto`` is bit-identical to the default there.
"""

from __future__ import annotations

import logging
import math
import os
from collections.abc import Mapping, Sequence

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import expm_multiply

from repro.ctmc.chain import Ctmc, State
from repro.errors import SolverError
from repro.observability import metrics as _metrics
from repro.observability import tracing as _tracing
from repro.resilience.faults import fault_point

_logger = logging.getLogger(__name__)

_SOLVER_BUILDS = _metrics.counter(
    "repro_transient_solver_builds_total",
    "Transient solver constructions by resolved method and backend.",
)
_SOLVES = _metrics.counter(
    "repro_transient_solves_total",
    "Transient distribution solves (propagation actually performed).",
)
_ITERATIONS = _metrics.counter(
    "repro_transient_uniformisation_iterations_total",
    "Uniformisation iterates streamed (vector-matrix products).",
).labels()
_ADAPTIVE_EXITS = _metrics.counter(
    "repro_transient_adaptive_exits_total",
    "Adaptive uniformisation solves that detected steady state early.",
).labels()
_KRYLOV = _metrics.counter(
    "repro_transient_krylov_propagations_total",
    "Krylov expm_multiply interval propagations.",
).labels()

__all__ = [
    "transient_distribution",
    "transient_rewards",
    "BatchTransientSolver",
    "transient_batch",
    "transient_piecewise",
]

#: Below this state count the uniformisation matrix is densified: numpy
#: matvecs beat scipy-sparse call overhead, and the left-truncation
#: advance can use matrix powers (repeated squaring) instead of
#: ``left`` sequential multiplications — for stiff chains ``left`` is of
#: the order ``Lambda t`` and the sequential loop dominated whole runs.
#: Overridable per solver (``dense_threshold=``) or process-wide via
#: the ``REPRO_DENSE_THRESHOLD`` environment variable.
_DENSE_CUTOFF = 400
_DENSE_CUTOFF_ENV = "REPRO_DENSE_THRESHOLD"

#: Safety net on the Poisson truncation search (matches the historical
#: per-side cap of the list-based implementation).
_MAX_POISSON_TERMS = 100_000

#: Memory cap (in matrix entries) for the dense block-power table; the
#: block size is chosen so ``block * n * n`` stays below this.
#: Overridable per solver (``block_entry_budget=``) or via the
#: ``REPRO_DENSE_BLOCK_BUDGET`` environment variable.
_BLOCK_ENTRY_BUDGET = 1 << 21
_BLOCK_BUDGET_ENV = "REPRO_DENSE_BLOCK_BUDGET"

#: Above this state count ``method="auto"`` switches from exact
#: uniformisation to adaptive (steady-state-detecting) streaming.
#: Deliberately above the 2401-state paper model so paper-scale results
#: stay bit-identical.  Overridable via ``REPRO_AUTO_METHOD_THRESHOLD``.
_AUTO_CUTOFF = 5000
_AUTO_CUTOFF_ENV = "REPRO_AUTO_METHOD_THRESHOLD"

_METHODS = ("uniformisation", "krylov", "adaptive", "auto")


def _positive_int(value: object, label: str) -> int:
    try:
        number = int(value)  # type: ignore[call-overload]
    except (TypeError, ValueError):
        raise SolverError(f"{label} must be an integer, got {value!r}") from None
    if number < 1:
        raise SolverError(f"{label} must be >= 1, got {number}")
    return number


def _env_int(env: str, default: int) -> int:
    raw = os.environ.get(env)
    if raw is None:
        return default
    return _positive_int(raw, env)


def _resolve_dense_threshold(override: int | None = None) -> int:
    """Densification threshold: constructor override > env var > default."""
    if override is not None:
        return _positive_int(override, "dense_threshold")
    return _env_int(_DENSE_CUTOFF_ENV, _DENSE_CUTOFF)


def _resolve_block_budget(override: int | None = None) -> int:
    """Dense block-power memory cap: override > env var > default."""
    if override is not None:
        return _positive_int(override, "block_entry_budget")
    return _env_int(_BLOCK_BUDGET_ENV, _BLOCK_ENTRY_BUDGET)


def _resolve_auto_cutoff() -> int:
    """State count above which ``method="auto"`` leaves the exact path."""
    return _env_int(_AUTO_CUTOFF_ENV, _AUTO_CUTOFF)


def _check_method(method: str) -> str:
    if method not in _METHODS:
        raise SolverError(
            f"unknown transient method {method!r}; expected one of {_METHODS}"
        )
    return method


def _use_matrix_power(n: int, left: int) -> bool:
    """Whether repeated squaring beats ``left`` sequential vec-mats.

    Squaring costs ~log2(left) n^3 multiplies vs left n^2 for the loop,
    so the break-even scales with the state count (factor 3 for safety).
    """
    return left > 64 and left > 3 * n * math.log2(left)


def _block_size(n: int, budget: int = _BLOCK_ENTRY_BUDGET) -> int:
    """Power block length for dense chains (pure function of ``n``).

    The batch solver streams uniformised iterates in blocks of this
    many Poisson indices per BLAS call; it must depend on nothing but
    the state count and the solver's fixed entry budget so that any two
    calls over the same chain walk the exact same block boundaries (the
    bit-identity contract).
    """
    return max(1, min(128, budget // (n * n)))


def transient_distribution(
    chain: Ctmc,
    initial: Mapping[State, float] | np.ndarray,
    time: float,
    tolerance: float = 1e-10,
) -> np.ndarray:
    """Distribution over states at *time*, starting from *initial*.

    *initial* is either a probability vector indexed like
    ``chain.states`` or a mapping from state label to probability.
    """
    if time < 0:
        raise SolverError(f"time must be >= 0, got {time}")
    pi0 = _initial_vector(chain, initial)
    if time == 0:
        return pi0
    n = chain.number_of_states()
    q = chain.generator().tocsr().astype(float)
    max_exit = float(np.max(-q.diagonal())) if n else 0.0
    if max_exit == 0.0:
        return pi0  # no transitions: distribution is frozen
    lam = max_exit * 1.02
    p = sparse.identity(n, format="csr") + q / lam
    if n <= _resolve_dense_threshold():
        p = p.toarray()

    # Poisson weights with left/right truncation.
    mean = lam * time
    weights, left = _poisson_weights(mean, tolerance)

    term = pi0.copy()
    # Advance to the left truncation point.
    if isinstance(p, np.ndarray) and _use_matrix_power(n, left):
        term = term @ np.linalg.matrix_power(p, left)
    else:
        for _ in range(left):
            term = np.asarray(term @ p).ravel()
    result = np.zeros(n)
    for weight in weights:
        result += weight * term
        term = np.asarray(term @ p).ravel()
    result = np.clip(result, 0.0, None)
    total = result.sum()
    if total <= 0:
        raise SolverError("uniformisation lost all probability mass")
    return result / total


def transient_rewards(
    chain: Ctmc,
    initial: Mapping[State, float] | np.ndarray,
    rewards: np.ndarray,
    times: Sequence[float],
    tolerance: float = 1e-10,
) -> np.ndarray:
    """Expected instantaneous reward rate at each time in *times*.

    This is the **per-time loop**: one uniformisation setup and one
    Poisson-weight table are shared across all times, but each time
    point streams its own pass over the uniformised iterates.  It is
    kept as the parity oracle for :class:`BatchTransientSolver`, which
    serves every time point from a single pass and must agree with this
    loop bit for bit.
    """
    rewards = np.asarray(rewards, dtype=float)
    if rewards.shape != (chain.number_of_states(),):
        raise SolverError(
            f"reward vector has shape {rewards.shape}, expected "
            f"({chain.number_of_states()},)"
        )
    times = list(times)
    solver = BatchTransientSolver(chain, tolerance=tolerance)
    table = solver.poisson_rows(times)
    out = np.empty(len(times), dtype=float)
    for i, (time, row) in enumerate(zip(times, table)):
        dist = solver.distributions(initial, [time], rows=[row])[0]
        out[i] = float(dist @ rewards)
    return out


class BatchTransientSolver:
    """Evaluate many time points and many reward vectors on one chain.

    The generator, the uniformisation constant ``Lambda``, the
    (densified) probability matrix ``P`` and — for dense chains — a
    table of its first few powers are computed once at construction.
    Each :meth:`distributions` call then streams the uniformised
    iterates ``pi(0) P^k`` exactly once over the union of the Poisson
    truncation windows of the requested times, accumulating every
    time's distribution on the fly.

    Iterates are anchored at absolute indices ``k`` (block boundaries
    are multiples of :func:`_block_size`), so the iterate at index ``k``
    is the same bit pattern no matter which set of times is requested:
    a batched call over ``times`` equals a per-time loop byte for byte.

    *method* selects the backend (see the module docstring): the exact
    default ``"uniformisation"``, ``"krylov"`` propagation via
    ``expm_multiply``, steady-state-detecting ``"adaptive"``
    uniformisation (early exit bounded by *atol*, default *tolerance*),
    or ``"auto"`` size dispatch.  ``solver.method`` records the request,
    ``solver.resolved_method`` what dispatch chose, and
    ``solver.backend`` the storage path (``"dense"``, ``"sparse"``,
    ``"krylov"`` or ``"frozen"``).

    Examples
    --------
    >>> chain = Ctmc.from_rates({("up", "down"): 2.0, ("down", "up"): 8.0})
    >>> solver = BatchTransientSolver(chain)
    >>> solver.distributions({"up": 1.0}, [0.0]).round(3).tolist()
    [[1.0, 0.0]]
    """

    def __init__(
        self,
        chain: Ctmc,
        tolerance: float = 1e-10,
        method: str = "uniformisation",
        dense_threshold: int | None = None,
        block_entry_budget: int | None = None,
        atol: float | None = None,
    ) -> None:
        if tolerance <= 0:
            raise SolverError(f"tolerance must be > 0, got {tolerance}")
        self._chain = chain
        self.tolerance = float(tolerance)
        self.n = chain.number_of_states()
        self._configure(method, dense_threshold, block_entry_budget, atol)
        q = chain.generator().tocsr().astype(float)
        self._init_from_generator(q)

    @classmethod
    def from_generator(
        cls,
        q: sparse.spmatrix,
        states: Sequence[State] | None = None,
        tolerance: float = 1e-10,
        method: str = "uniformisation",
        dense_threshold: int | None = None,
        block_entry_budget: int | None = None,
        atol: float | None = None,
    ) -> "BatchTransientSolver":
        """A solver over an already-assembled generator matrix.

        *states* optionally supplies the labels behind each index so
        mapping-style initial distributions keep working; without it the
        initial distribution must be a plain probability vector.
        """
        solver = cls.__new__(cls)
        if tolerance <= 0:
            raise SolverError(f"tolerance must be > 0, got {tolerance}")
        solver._chain = None
        solver.tolerance = float(tolerance)
        q = q.tocsr().astype(float)
        if q.shape[0] != q.shape[1] or q.shape[0] < 1:
            raise SolverError(f"generator must be square, got shape {q.shape}")
        solver.n = q.shape[0]
        solver._states = list(states) if states is not None else None
        solver._configure(method, dense_threshold, block_entry_budget, atol)
        solver._init_from_generator(q)
        return solver

    def _configure(
        self,
        method: str,
        dense_threshold: int | None,
        block_entry_budget: int | None,
        atol: float | None,
    ) -> None:
        self.method = _check_method(method)
        self.dense_threshold = _resolve_dense_threshold(dense_threshold)
        self.block_entry_budget = _resolve_block_budget(block_entry_budget)
        if atol is not None and atol <= 0:
            raise SolverError(f"atol must be > 0, got {atol}")
        self.atol = float(atol) if atol is not None else self.tolerance
        self.adaptive_exits = 0
        self.last_adaptive_exit: int | None = None

    def _init_from_generator(self, q: sparse.csr_matrix) -> None:
        if not hasattr(self, "_states"):
            self._states = None
        self._q = q
        self._qt: sparse.csr_matrix | None = None
        if self.method == "auto":
            cutoff = _resolve_auto_cutoff()
            self.resolved_method = (
                "adaptive" if self.n > cutoff else "uniformisation"
            )
        else:
            self.resolved_method = self.method
        max_exit = float(np.max(-q.diagonal())) if self.n else 0.0
        if max_exit == 0.0:
            # No transitions: every distribution is frozen at pi(0).
            self.lam = 0.0
            self._p = None
            self._powers = None
            self._block = 1
            self.backend = "frozen"
            self._log_path()
            return
        self.lam = max_exit * 1.02
        if self.resolved_method == "krylov":
            # No P, no power table: the generator itself is propagated
            # through expm_multiply, transposed lazily on first use.
            self._p = None
            self._powers = None
            self._block = 1
            self.backend = "krylov"
            self._log_path()
            return
        p = sparse.identity(self.n, format="csr") + q / self.lam
        if self.n <= self.dense_threshold:
            p = p.toarray()
            self.backend = "dense"
        else:
            self.backend = "sparse"
        if self.backend == "dense" and self.resolved_method == "uniformisation":
            self._block = _block_size(self.n, self.block_entry_budget)
            # powers[:, (j-1)*n:j*n] = P^j for j = 1..block, laid out so
            # one vec-mat produces a whole block of iterates.  Built by
            # doubling: [P^1..P^m] @ P^m = [P^(m+1)..P^(2m)].
            stack = p[None, :, :]
            while stack.shape[0] < self._block:
                grown = np.matmul(stack, stack[-1])
                stack = np.concatenate((stack, grown))[: self._block]
            self._powers = np.ascontiguousarray(
                stack.transpose(1, 0, 2).reshape(self.n, self._block * self.n)
            )
        else:
            # The adaptive path streams iterates sequentially (it must
            # inspect every successive difference), so it skips the
            # block-power table even when P is densified.
            self._block = 1
            self._powers = None
        self._p = p
        self._log_path()

    def _log_path(self) -> None:
        _logger.debug(
            "transient solver: n=%d method=%s resolved=%s backend=%s "
            "dense_threshold=%d block=%d",
            self.n,
            self.method,
            self.resolved_method,
            self.backend,
            self.dense_threshold,
            self._block,
        )
        _SOLVER_BUILDS.inc(
            method=self.resolved_method, backend=self.backend
        )

    # -- Poisson table -------------------------------------------------------

    def poisson_rows(
        self, times: Sequence[float]
    ) -> list[tuple[np.ndarray, int] | None]:
        """The Poisson-weight table: one ``(weights, left)`` row per time.

        Rows are ``None`` for times that need no series (``t == 0`` or a
        frozen chain).  The same table is computed internally by
        :meth:`distributions`; pass it back via ``rows=`` to share one
        table across several calls (the per-time oracle loop does).
        """
        rows: list[tuple[np.ndarray, int] | None] = []
        for time in times:
            if time < 0:
                raise SolverError(f"time must be >= 0, got {time}")
            if time == 0 or self.lam == 0.0:
                rows.append(None)
            else:
                weights, left = _poisson_weights(self.lam * time, self.tolerance)
                rows.append((weights, left))
        return rows

    # -- distributions -------------------------------------------------------

    def distributions(
        self,
        initial: Mapping[State, float] | np.ndarray,
        times: Sequence[float],
        rows: Sequence[tuple[np.ndarray, int] | None] | None = None,
    ) -> np.ndarray:
        """State distributions at each time, as a ``(times, n)`` array.

        *rows* optionally supplies a precomputed :meth:`poisson_rows`
        table for exactly these times.
        """
        times = list(times)
        pi0 = self._initial(initial)
        if rows is None:
            rows = self.poisson_rows(times)
        elif len(rows) != len(times):
            raise SolverError(
                f"got {len(rows)} Poisson rows for {len(times)} times"
            )
        else:
            for time in times:
                if time < 0:
                    raise SolverError(f"time must be >= 0, got {time}")
        out = np.zeros((len(times), self.n))
        active: list[tuple[int, int, np.ndarray]] = []
        for i, row in enumerate(rows):
            if row is None:
                out[i] = pi0
            else:
                weights, left = row
                active.append((i, left, weights))
        if active:
            fault_point(
                "solver.transient",
                error=SolverError("injected transient solve failure"),
            )
            _SOLVES.inc(method=self.resolved_method)
            with _tracing.span(
                "ctmc:transient",
                states=self.n,
                method=self.resolved_method,
                backend=self.backend,
                times=len(active),
            ):
                if self.resolved_method == "krylov":
                    self._krylov_propagate(
                        pi0, [(i, times[i]) for i, _, _ in active], out
                    )
                elif self.resolved_method == "adaptive":
                    self._accumulate_adaptive(pi0, active, out)
                else:
                    self._accumulate(pi0, active, out)
            for i, _, _ in active:
                result = np.clip(out[i], 0.0, None)
                total = result.sum()
                if total <= 0:
                    raise SolverError("uniformisation lost all probability mass")
                out[i] = result / total
        return out

    def propagate(
        self,
        initial: Mapping[State, float] | np.ndarray,
        duration: float,
    ) -> np.ndarray:
        """The state distribution after *duration*, as a plain vector.

        The segment primitive of :func:`transient_piecewise`: carrying a
        vector across a phase boundary is one single-time
        :meth:`distributions` call, so a chained sequence of
        ``propagate`` calls is the brute-force oracle the piecewise
        batch path is bit-identical to.
        """
        return self.distributions(initial, [duration])[0]

    def rewards(
        self,
        initial: Mapping[State, float] | np.ndarray,
        rewards: np.ndarray,
        times: Sequence[float],
    ) -> np.ndarray:
        """Expected reward rates at each time for one or many rewards.

        A 1-D reward vector gives a ``(times,)`` array (the
        :func:`transient_rewards` shape); a 2-D ``(m, n)`` reward matrix
        gives ``(times, m)`` — every reward evaluated from the same
        single pass over the uniformised iterates.
        """
        rewards = np.asarray(rewards, dtype=float)
        squeeze = rewards.ndim == 1
        matrix = rewards[None, :] if squeeze else rewards
        if matrix.ndim != 2 or matrix.shape[1] != self.n:
            raise SolverError(
                f"reward matrix has shape {rewards.shape}, expected "
                f"(m, {self.n}) or ({self.n},)"
            )
        dists = self.distributions(initial, times)
        out = np.empty((dists.shape[0], matrix.shape[0]))
        for i in range(dists.shape[0]):
            for j in range(matrix.shape[0]):
                out[i, j] = float(dists[i] @ matrix[j])
        return out[:, 0] if squeeze else out

    # -- internals -----------------------------------------------------------

    def _accumulate(
        self,
        pi0: np.ndarray,
        active: list[tuple[int, int, np.ndarray]],
        out: np.ndarray,
    ) -> None:
        """Stream iterates ``pi0 P^k`` once, accumulating every window.

        ``active`` holds ``(row index, left truncation, weights)``; each
        row receives ``sum_k weights[k - left] * pi0 P^k``.  Iterates
        are produced in blocks anchored at absolute multiples of the
        block size, so the value of iterate ``k`` is independent of
        which windows are requested.
        """
        last = max(left + len(weights) for _, left, weights in active) - 1
        _ITERATIONS.inc(last + 1)
        if self._powers is not None:
            block, n = self._block, self.n
            lefts = np.array([left for _, left, _ in active])
            ends = np.array([left + len(weights) for _, left, weights in active])
            start = pi0  # iterate at k = m * block
            m = 0
            while m * block <= last:
                base = m * block
                products = (start @ self._powers).reshape(block, n)
                # iterates base .. base+block-1
                terms = np.concatenate((start[None, :], products[: block - 1]))
                los = np.maximum(lefts, base)
                his = np.minimum(ends, base + block)
                for position in np.nonzero(los < his)[0]:
                    i, left, weights = active[position]
                    lo, hi = los[position], his[position]
                    out[i] += (
                        weights[lo - left : hi - left]
                        @ terms[lo - base : hi - base]
                    )
                start = products[block - 1]
                m += 1
        else:
            term = pi0.copy()
            for k in range(last + 1):
                for i, left, weights in active:
                    offset = k - left
                    if 0 <= offset < len(weights):
                        out[i] += weights[offset] * term
                term = np.asarray(term @ self._p).ravel()

    def _accumulate_adaptive(
        self,
        pi0: np.ndarray,
        active: list[tuple[int, int, np.ndarray]],
        out: np.ndarray,
    ) -> None:
        """Sequential streaming with steady-state early exit.

        ``P`` is stochastic, so ``||x P||_1 <= ||x||_1`` for any ``x``
        and successive-iterate differences can only shrink: once
        ``delta = ||pi_{k+1} - pi_k||_1`` satisfies
        ``delta * (last - k) <= atol / 2``, every later iterate lies
        within ``atol / 2`` (L1) of ``pi_{k+1}``.  The remaining Poisson
        weight of every window is then served from that fixed-point
        estimate, changing no accumulated row by more than ``atol``
        even after the final renormalisation.
        """
        last = max(left + len(weights) for _, left, weights in active) - 1
        ran = last + 1
        term = pi0.copy()
        self.last_adaptive_exit = None
        for k in range(last + 1):
            for i, left, weights in active:
                offset = k - left
                if 0 <= offset < len(weights):
                    out[i] += weights[offset] * term
            if k == last:
                break
            nxt = np.asarray(term @ self._p).ravel()
            delta = float(np.abs(nxt - term).sum())
            if delta * (last - k) <= 0.5 * self.atol:
                for i, left, weights in active:
                    lo = max(k + 1 - left, 0)
                    if lo < len(weights):
                        out[i] += float(weights[lo:].sum()) * nxt
                self.last_adaptive_exit = k
                self.adaptive_exits += 1
                _ADAPTIVE_EXITS.inc()
                ran = k + 1
                _logger.debug(
                    "adaptive uniformisation: steady state at iterate "
                    "%d of %d (delta=%.3e)",
                    k,
                    last,
                    delta,
                )
                break
            term = nxt
        _ITERATIONS.inc(ran)

    def _krylov_propagate(
        self,
        pi0: np.ndarray,
        targets: list[tuple[int, float]],
        out: np.ndarray,
    ) -> None:
        """Advance ``pi0`` interval by interval with ``expm_multiply``.

        ``targets`` pairs each output row with its (positive) time; the
        vector is propagated once through the sorted time points, so a
        batch over many times costs one Krylov sweep over the largest.
        """
        if self._qt is None:
            self._qt = self._q.transpose().tocsr()
        vector = pi0
        previous = 0.0
        for i, time in sorted(targets, key=lambda pair: pair[1]):
            if time > previous:
                vector = expm_multiply(self._qt * (time - previous), vector)
                previous = time
                _KRYLOV.inc()
            out[i] = vector

    def _initial(
        self, initial: Mapping[State, float] | np.ndarray
    ) -> np.ndarray:
        if self._chain is not None:
            return _initial_vector(self._chain, initial)
        if not isinstance(initial, np.ndarray):
            if self._states is None:
                raise SolverError(
                    "a solver built from a bare generator needs a vector "
                    "initial distribution (no state labels to map)"
                )
            vector = np.zeros(self.n)
            index = {state: i for i, state in enumerate(self._states)}
            for state, mass in initial.items():
                try:
                    vector[index[state]] = float(mass)
                except KeyError:
                    raise SolverError(f"unknown state {state!r}") from None
            initial = vector
        vector = initial.astype(float)
        if vector.shape != (self.n,):
            raise SolverError(
                f"initial vector has shape {vector.shape}, expected ({self.n},)"
            )
        if np.any(vector < 0) or not np.isclose(vector.sum(), 1.0, atol=1e-9):
            raise SolverError(
                "initial distribution must be non-negative and sum to 1"
            )
        return vector / vector.sum()


def transient_batch(
    chains: Sequence[Ctmc],
    initials: Mapping[State, float] | np.ndarray | Sequence,
    rewards: np.ndarray | Sequence[np.ndarray],
    times: Sequence[float],
    tolerance: float = 1e-10,
    method: str = "uniformisation",
) -> list[np.ndarray]:
    """Transient rewards of many chains, reusing structure where shared.

    The family counterpart of :func:`~repro.ctmc.steady.steady_state_batch`:
    chains are grouped by (state count, transition pattern) and each
    group assembles its generators through one
    :class:`~repro.ctmc.steady.BatchSteadySolver` pattern (index arrays
    built once per distinct structure); each chain then gets one
    :class:`BatchTransientSolver` that serves every time point and
    reward vector in a single pass.

    *initials* and *rewards* are either one shared value (a mapping /
    vector applied to every chain) or sequences aligned with *chains*.
    Results are returned in input order, one array per chain shaped like
    :meth:`BatchTransientSolver.rewards` output.
    """
    from repro.ctmc.steady import BatchSteadySolver

    chains = list(chains)
    shared_initial = isinstance(initials, (Mapping, np.ndarray))
    shared_rewards = isinstance(rewards, np.ndarray)
    if not shared_initial and len(initials) != len(chains):
        raise SolverError(
            f"got {len(initials)} initial distributions for {len(chains)} chains"
        )
    if not shared_rewards and len(rewards) != len(chains):
        raise SolverError(
            f"got {len(rewards)} reward specs for {len(chains)} chains"
        )
    groups: dict[tuple[int, tuple[tuple[int, int], ...]], BatchSteadySolver] = {}
    results: list[np.ndarray] = []
    for position, chain in enumerate(chains):
        key = (
            chain.number_of_states(),
            tuple(sorted((i, j) for i, j, _ in chain.transitions())),
        )
        assembler = groups.get(key)
        if assembler is None:
            assembler = BatchSteadySolver(key[0], key[1])
            groups[key] = assembler
        solver = BatchTransientSolver.from_generator(
            assembler.generator(assembler.rates_of(chain)),
            states=chain.states,
            tolerance=tolerance,
            method=method,
        )
        initial = initials if shared_initial else initials[position]
        reward = rewards if shared_rewards else rewards[position]
        results.append(solver.rewards(initial, reward, times))
    return results


def transient_piecewise(
    segments: Sequence[tuple["BatchTransientSolver", float]],
    initial: Mapping[State, float] | np.ndarray,
    times: Sequence[float],
    return_carries: bool = False,
) -> np.ndarray | tuple[np.ndarray, list[np.ndarray]]:
    """Distributions of a piecewise-constant chain at each time.

    *segments* is an ordered sequence of ``(solver, duration)`` pairs —
    one uniformised :class:`BatchTransientSolver` per constant-rate
    regime (e.g. one per patch-campaign phase) over the **same** state
    space, active for *duration* hours.  The final segment is
    open-ended: its duration (``math.inf`` by convention) only matters
    in that no segment follows it.  A non-final ``math.inf`` duration
    marks a phase that never ends (a trigger that never fires): every
    later segment is unreachable and all remaining times are served by
    it.

    Each segment evaluates the time points falling in its half-open
    window ``[start, start + duration)`` *and* the boundary itself in a
    single batch pass, carrying the boundary distribution into the next
    segment.  Because batch iterates are anchored at absolute Poisson
    indices, every returned row is bit-identical to the brute-force
    oracle that, for each time separately, chains one
    :meth:`BatchTransientSolver.propagate` call per earlier segment and
    a final single-time :meth:`~BatchTransientSolver.distributions`
    call.  A time landing exactly on a phase boundary belongs to the
    *next* segment at offset zero, which returns the carried vector
    unchanged — the same bits either way.

    With *return_carries* the entry distribution of every segment is
    returned alongside (``carries[0]`` is the validated initial
    vector); unreachable segments get no entry.
    """
    segments = list(segments)
    if not segments:
        raise SolverError("transient_piecewise needs at least one segment")
    n = None
    for solver, duration in segments:
        if not isinstance(solver, BatchTransientSolver):
            raise SolverError(
                f"segments must pair BatchTransientSolver with a duration, "
                f"got {solver!r}"
            )
        if n is None:
            n = solver.n
        elif solver.n != n:
            raise SolverError(
                f"piecewise segments must share one state space; got sizes "
                f"{n} and {solver.n}"
            )
        if duration != duration or duration < 0:
            raise SolverError(f"segment duration must be >= 0, got {duration}")
    times = [float(t) for t in times]
    for time in times:
        # NaN fails every window test, which would leave its np.empty
        # output row unassigned — reject non-finite times outright.
        if not math.isfinite(time) or time < 0:
            raise SolverError(f"time must be finite and >= 0, got {time}")

    out = np.empty((len(times), n))
    carry: Mapping[State, float] | np.ndarray = initial
    carries: list[np.ndarray] = []
    start = 0.0
    for position, (solver, duration) in enumerate(segments):
        last = position == len(segments) - 1
        end = math.inf if last else start + duration
        indices = [i for i, t in enumerate(times) if start <= t < end]
        offsets = [times[i] - start for i in indices]
        carry_needed = not last and math.isfinite(duration)
        if return_carries:
            # Record the densified entry vector for occupancy algebra,
            # but keep propagating the raw carry: re-normalising it here
            # could shift the downstream rows by an ulp.
            carries.append(solver._initial(carry))
        if carry_needed and duration > 0.0:
            # One batch pass serves the in-window times and the boundary;
            # anchored iterates make each row equal its solo evaluation.
            batch = solver.distributions(carry, offsets + [duration])
            if indices:
                out[indices] = batch[:-1]
            carry = batch[-1]
        else:
            if indices:
                out[indices] = solver.distributions(carry, offsets)
            if not carry_needed:
                # Open-ended (or never-ending) segment: nothing follows.
                break
            # duration == 0: the segment owns no window; carry unchanged.
        start = end
    if return_carries:
        return out, carries
    return out


def _initial_vector(
    chain: Ctmc, initial: Mapping[State, float] | np.ndarray
) -> np.ndarray:
    n = chain.number_of_states()
    if isinstance(initial, np.ndarray):
        vector = initial.astype(float)
        if vector.shape != (n,):
            raise SolverError(f"initial vector has shape {vector.shape}, expected ({n},)")
    else:
        vector = np.zeros(n)
        for state, mass in initial.items():
            vector[chain.index_of(state)] = float(mass)
    if np.any(vector < 0) or not np.isclose(vector.sum(), 1.0, atol=1e-9):
        raise SolverError("initial distribution must be non-negative and sum to 1")
    return vector / vector.sum()


def _poisson_weights(mean: float, tolerance: float) -> tuple[np.ndarray, int]:
    """Poisson(mean) pmf values covering 1 - tolerance mass.

    Returns the weights and the left truncation index.  Weights are
    computed in a numerically stable way by starting at the mode; the
    recurrence on both sides runs as one numpy cumulative product
    instead of a Python list walk.
    """
    if mean <= 0:
        return np.array([1.0]), 0
    mode = int(mean)
    cut = tolerance * 1e-4

    # Right side: u_j = prod_{i=1..j} mean / (mode + i), j = 0, 1, ...
    # truncated after the first value below the cut (which is kept, as
    # the list-based recurrence did).
    span = int(12.0 * math.sqrt(mean) + 40.0)
    while True:
        ks = np.arange(mode + 1, mode + 1 + min(span, _MAX_POISSON_TERMS))
        right = np.cumprod(mean / ks)
        below = np.nonzero(right < cut)[0]
        if below.size:
            right = right[: below[0] + 1]
            break
        if span >= _MAX_POISSON_TERMS:  # pragma: no cover - safety net
            break
        span *= 2

    # Left side: v_j = prod_{i=0..j-1} (mode - i) / mean, j = 1..mode,
    # truncated the same way (grown in chunks so a huge mode does not
    # materialise mode-many terms when only ~sqrt(mean) are needed).
    if mode > 0:
        span = int(12.0 * math.sqrt(mean) + 40.0)
        while True:
            ks = np.arange(mode, max(0, mode - min(span, _MAX_POISSON_TERMS)), -1)
            left_values = np.cumprod(ks / mean)
            below = np.nonzero(left_values < cut)[0]
            if below.size:
                left_values = left_values[: below[0] + 1]
                break
            if len(ks) >= mode or span >= _MAX_POISSON_TERMS:
                break  # reached k = 0 (or the safety cap) above the cut
            span *= 2
        left_index = mode - len(left_values)
    else:
        left_values = np.empty(0)
        left_index = 0

    weights = np.concatenate((left_values[::-1], [1.0], right))
    return weights / weights.sum(), left_index

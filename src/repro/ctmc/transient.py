"""Transient analysis by uniformisation (Jensen's method).

``pi(t) = sum_k PoissonPMF(k; Lambda t) * pi(0) P^k`` with
``P = I + Q / Lambda``.  The truncation point is chosen so the neglected
Poisson tail is below the requested tolerance.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

import numpy as np
from scipy import sparse

from repro.ctmc.chain import Ctmc, State
from repro.errors import SolverError

__all__ = ["transient_distribution", "transient_rewards"]

#: Below this state count the uniformisation matrix is densified: numpy
#: matvecs beat scipy-sparse call overhead, and the left-truncation
#: advance can use matrix powers (repeated squaring) instead of
#: ``left`` sequential multiplications — for stiff chains ``left`` is of
#: the order ``Lambda t`` and the sequential loop dominated whole runs.
_DENSE_CUTOFF = 400


def _use_matrix_power(n: int, left: int) -> bool:
    """Whether repeated squaring beats ``left`` sequential vec-mats.

    Squaring costs ~log2(left) n^3 multiplies vs left n^2 for the loop,
    so the break-even scales with the state count (factor 3 for safety).
    """
    return left > 64 and left > 3 * n * math.log2(left)


def transient_distribution(
    chain: Ctmc,
    initial: Mapping[State, float] | np.ndarray,
    time: float,
    tolerance: float = 1e-10,
) -> np.ndarray:
    """Distribution over states at *time*, starting from *initial*.

    *initial* is either a probability vector indexed like
    ``chain.states`` or a mapping from state label to probability.
    """
    if time < 0:
        raise SolverError(f"time must be >= 0, got {time}")
    pi0 = _initial_vector(chain, initial)
    if time == 0:
        return pi0
    n = chain.number_of_states()
    q = chain.generator().tocsr().astype(float)
    max_exit = float(np.max(-q.diagonal())) if n else 0.0
    if max_exit == 0.0:
        return pi0  # no transitions: distribution is frozen
    lam = max_exit * 1.02
    p = sparse.identity(n, format="csr") + q / lam
    if n <= _DENSE_CUTOFF:
        p = p.toarray()

    # Poisson weights with left/right truncation.
    mean = lam * time
    weights, left = _poisson_weights(mean, tolerance)

    term = pi0.copy()
    # Advance to the left truncation point.
    if isinstance(p, np.ndarray) and _use_matrix_power(n, left):
        term = term @ np.linalg.matrix_power(p, left)
    else:
        for _ in range(left):
            term = np.asarray(term @ p).ravel()
    result = np.zeros(n)
    for weight in weights:
        result += weight * term
        term = np.asarray(term @ p).ravel()
    result = np.clip(result, 0.0, None)
    total = result.sum()
    if total <= 0:
        raise SolverError("uniformisation lost all probability mass")
    return result / total


def transient_rewards(
    chain: Ctmc,
    initial: Mapping[State, float] | np.ndarray,
    rewards: np.ndarray,
    times: Sequence[float],
    tolerance: float = 1e-10,
) -> np.ndarray:
    """Expected instantaneous reward rate at each time in *times*."""
    rewards = np.asarray(rewards, dtype=float)
    if rewards.shape != (chain.number_of_states(),):
        raise SolverError(
            f"reward vector has shape {rewards.shape}, expected "
            f"({chain.number_of_states()},)"
        )
    return np.array(
        [
            float(transient_distribution(chain, initial, t, tolerance) @ rewards)
            for t in times
        ]
    )


def _initial_vector(
    chain: Ctmc, initial: Mapping[State, float] | np.ndarray
) -> np.ndarray:
    n = chain.number_of_states()
    if isinstance(initial, np.ndarray):
        vector = initial.astype(float)
        if vector.shape != (n,):
            raise SolverError(f"initial vector has shape {vector.shape}, expected ({n},)")
    else:
        vector = np.zeros(n)
        for state, mass in initial.items():
            vector[chain.index_of(state)] = float(mass)
    if np.any(vector < 0) or not np.isclose(vector.sum(), 1.0, atol=1e-9):
        raise SolverError("initial distribution must be non-negative and sum to 1")
    return vector / vector.sum()


def _poisson_weights(mean: float, tolerance: float) -> tuple[list[float], int]:
    """Poisson(mean) pmf values covering 1 - tolerance mass.

    Returns the weights and the left truncation index.  Weights are
    computed in a numerically stable way by starting at the mode.
    """
    if mean <= 0:
        return [1.0], 0
    mode = int(mean)
    # Unnormalised pmf via recurrence from the mode.
    right = [1.0]
    k = mode
    while True:
        k += 1
        nxt = right[-1] * mean / k
        right.append(nxt)
        if nxt < tolerance * 1e-4 and k > mean:
            break
        if k - mode > 100_000:  # pragma: no cover - safety net
            break
    left_part = []
    k = mode
    value = 1.0
    while k > 0:
        value = value * k / mean
        left_part.append(value)
        k -= 1
        if value < tolerance * 1e-4 and k < mean:
            break
        if mode - k > 100_000:  # pragma: no cover - safety net
            break
    left_index = k
    weights = list(reversed(left_part)) + right
    total = sum(weights)
    return [w / total for w in weights], left_index

"""Continuous-time Markov chain engine.

:class:`Ctmc` wraps a labelled infinitesimal generator; solvers compute
steady-state and transient distributions; :mod:`repro.ctmc.rewards`
evaluates expected reward rates (the SPNP-style output measures);
:mod:`repro.ctmc.aggregate` implements the Trivedi-style two-state
aggregation the paper uses in Eqs. (1)-(2); and
:mod:`repro.ctmc.birthdeath` provides closed-form birth-death chains used
for cross-validation.
"""

from repro.ctmc.absorbing import (
    absorption_probabilities,
    make_absorbing,
    mean_time_to_absorption,
)
from repro.ctmc.aggregate import TwoStateAggregate, aggregate_two_state
from repro.ctmc.birthdeath import birth_death_steady_state
from repro.ctmc.chain import Ctmc
from repro.ctmc.rewards import expected_reward_rate, reward_vector
from repro.ctmc.steady import (
    BatchSteadySolver,
    steady_state,
    steady_state_batch,
    steady_state_iterative,
)
from repro.ctmc.transient import (
    BatchTransientSolver,
    transient_batch,
    transient_distribution,
    transient_rewards,
)

__all__ = [
    "Ctmc",
    "steady_state",
    "steady_state_batch",
    "steady_state_iterative",
    "BatchSteadySolver",
    "BatchTransientSolver",
    "transient_distribution",
    "transient_rewards",
    "transient_batch",
    "expected_reward_rate",
    "reward_vector",
    "TwoStateAggregate",
    "aggregate_two_state",
    "birth_death_steady_state",
    "mean_time_to_absorption",
    "absorption_probabilities",
    "make_absorbing",
]

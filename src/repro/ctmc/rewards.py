"""Reward-rate evaluation over CTMC states (SPNP-style output measures)."""

from __future__ import annotations

from collections.abc import Callable, Mapping

import numpy as np

from repro.ctmc.chain import Ctmc, State
from repro.ctmc.steady import steady_state
from repro.errors import CtmcError

__all__ = ["reward_vector", "expected_reward_rate"]


def reward_vector(
    chain: Ctmc,
    reward: Mapping[State, float] | Callable[[State], float],
) -> np.ndarray:
    """Per-state reward rates aligned with ``chain.states``.

    *reward* is either a mapping (missing states get reward 0) or a
    callable evaluated on each state label — the analogue of an SPNP
    reward function over markings.
    """
    states = chain.states
    if callable(reward):
        values = [float(reward(state)) for state in states]
    else:
        values = [float(reward.get(state, 0.0)) for state in states]
    vector = np.asarray(values, dtype=float)
    if not np.all(np.isfinite(vector)):
        raise CtmcError("reward function produced non-finite values")
    return vector


def expected_reward_rate(
    chain: Ctmc,
    reward: Mapping[State, float] | Callable[[State], float],
    probabilities: np.ndarray | None = None,
) -> float:
    """Expected steady-state reward rate ``sum_i pi_i * r_i``.

    If *probabilities* is omitted the steady state is solved on demand.
    """
    if probabilities is None:
        probabilities = steady_state(chain)
    vector = reward_vector(chain, reward)
    if probabilities.shape != vector.shape:
        raise CtmcError(
            f"probability vector shape {probabilities.shape} does not match "
            f"state count {vector.shape}"
        )
    return float(probabilities @ vector)

"""Steady-state solvers.

The steady-state distribution satisfies ``pi Q = 0`` with ``sum(pi) = 1``.
Three methods are provided:

``direct``
    Replace one balance equation by the normalisation condition and solve
    the sparse linear system.  Fast and accurate for irreducible chains.
``gth``
    The Grassmann-Taksar-Heyman elimination: division-free of subtractions,
    numerically exact up to rounding even for stiff chains; O(n^3) dense,
    used for small or ill-conditioned models and for cross-checking.
``power``
    Uniformised power iteration; a derivative-free fallback.

``steady_state`` picks ``gth`` for small chains and ``direct`` otherwise,
falling back across methods on numerical failure.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as sparse_linalg

from repro.ctmc.chain import Ctmc
from repro.errors import SolverError

__all__ = ["steady_state", "steady_state_direct", "steady_state_gth", "steady_state_power"]

_GTH_CUTOFF = 200


def steady_state(chain: Ctmc, method: str = "auto") -> np.ndarray:
    """Steady-state probability vector of *chain* (indexed like states).

    Parameters
    ----------
    chain:
        The CTMC to solve.  It must have a single recurrent class for the
        result to be meaningful.
    method:
        ``"auto"``, ``"direct"``, ``"gth"`` or ``"power"``.
    """
    if method == "auto":
        if chain.number_of_states() <= _GTH_CUTOFF:
            return steady_state_gth(chain)
        try:
            return steady_state_direct(chain)
        except SolverError:
            return steady_state_power(chain)
    if method == "direct":
        return steady_state_direct(chain)
    if method == "gth":
        return steady_state_gth(chain)
    if method == "power":
        return steady_state_power(chain)
    raise SolverError(f"unknown steady-state method {method!r}")


def steady_state_direct(chain: Ctmc) -> np.ndarray:
    """Sparse direct solve of ``pi Q = 0`` with normalisation."""
    n = chain.number_of_states()
    if n == 1:
        return np.array([1.0])
    q = chain.generator().transpose().tocsr().astype(float)
    # Replace the last equation with sum(pi) = 1.
    a = q.tolil()
    a[n - 1, :] = np.ones(n)
    b = np.zeros(n)
    b[n - 1] = 1.0
    try:
        pi = sparse_linalg.spsolve(a.tocsr(), b)
    except Exception as exc:  # scipy raises several distinct types
        raise SolverError(f"sparse steady-state solve failed: {exc}") from exc
    if not np.all(np.isfinite(pi)):
        raise SolverError("sparse steady-state solve produced non-finite values")
    pi = np.where(np.abs(pi) < 1e-300, 0.0, pi)
    if np.any(pi < -1e-8):
        raise SolverError("sparse steady-state solve produced negative probabilities")
    pi = np.clip(pi, 0.0, None)
    total = pi.sum()
    if total <= 0:
        raise SolverError("sparse steady-state solve produced a zero vector")
    return pi / total


def steady_state_gth(chain: Ctmc) -> np.ndarray:
    """Grassmann-Taksar-Heyman elimination (dense, subtraction-free)."""
    n = chain.number_of_states()
    if n == 1:
        return np.array([1.0])
    q = chain.dense_generator()
    # Work on the off-diagonal rate matrix.
    a = q.copy()
    np.fill_diagonal(a, 0.0)
    a = np.abs(a)
    # Forward elimination.
    for k in range(n - 1, 0, -1):
        total = a[k, :k].sum()
        if total <= 0.0:
            # State k unreachable-from/isolated in the reduced chain; give it
            # an infinitesimal self-consistency to avoid division by zero.
            raise SolverError(
                "GTH elimination hit a state with no outflow to lower indices; "
                "the chain is reducible"
            )
        a[:k, k] /= total
        for j in range(k):
            if a[k, j] != 0.0:
                a[:k, j] += a[:k, k] * a[k, j]
    # Back substitution.
    pi = np.zeros(n)
    pi[0] = 1.0
    for k in range(1, n):
        pi[k] = pi[:k] @ a[:k, k]
    total = pi.sum()
    if not np.isfinite(total) or total <= 0:
        raise SolverError("GTH produced a non-normalisable vector")
    return pi / total


def steady_state_power(
    chain: Ctmc,
    tolerance: float = 1e-12,
    max_iterations: int = 2_000_000,
) -> np.ndarray:
    """Uniformised power iteration.

    Builds ``P = I + Q / Lambda`` with ``Lambda`` slightly above the
    largest exit rate and iterates ``pi P`` until the L1 change falls
    below *tolerance*.
    """
    n = chain.number_of_states()
    if n == 1:
        return np.array([1.0])
    q = chain.generator().tocsr().astype(float)
    max_exit = float(np.max(-q.diagonal())) if n else 0.0
    if max_exit <= 0.0:
        # No transitions at all: every state is absorbing.
        raise SolverError("chain has no transitions; steady state undefined")
    lam = max_exit * 1.02
    p = sparse.identity(n, format="csr") + q / lam
    pi = np.full(n, 1.0 / n)
    for _ in range(max_iterations):
        nxt = pi @ p
        nxt = np.asarray(nxt).ravel()
        delta = np.abs(nxt - pi).sum()
        pi = nxt
        if delta < tolerance:
            total = pi.sum()
            return np.clip(pi, 0.0, None) / total
    raise SolverError(
        f"power iteration did not converge within {max_iterations} iterations"
    )

"""Steady-state solvers.

The steady-state distribution satisfies ``pi Q = 0`` with ``sum(pi) = 1``.
Three methods are provided:

``direct``
    Replace one balance equation by the normalisation condition and solve
    the sparse linear system.  Fast and accurate for irreducible chains.
``gth``
    The Grassmann-Taksar-Heyman elimination: division-free of subtractions,
    numerically exact up to rounding even for stiff chains; O(n^3) dense,
    used for small or ill-conditioned models and for cross-checking.
``power``
    Uniformised power iteration; a derivative-free fallback.

``steady_state`` picks ``gth`` for small chains and ``direct`` otherwise,
falling back across methods on numerical failure.

Each method is split into a matrix-level core (operating on the generator
directly) and a thin :class:`~repro.ctmc.chain.Ctmc` wrapper, so that
:class:`BatchSteadySolver` can solve whole families of chains that share
one transition structure without rebuilding per-chain ``Ctmc`` objects:
the sparsity pattern, index arrays and dense scaffolding are assembled
once and only the rate values change between solves.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as sparse_linalg

from repro.ctmc.chain import Ctmc
from repro.errors import SolverError

__all__ = [
    "steady_state",
    "steady_state_direct",
    "steady_state_gth",
    "steady_state_power",
    "steady_state_batch",
    "BatchSteadySolver",
]

_GTH_CUTOFF = 200


def steady_state(chain: Ctmc, method: str = "auto") -> np.ndarray:
    """Steady-state probability vector of *chain* (indexed like states).

    Parameters
    ----------
    chain:
        The CTMC to solve.  It must have a single recurrent class for the
        result to be meaningful.
    method:
        ``"auto"``, ``"direct"``, ``"gth"`` or ``"power"``.
    """
    if method == "auto":
        if chain.number_of_states() <= _GTH_CUTOFF:
            return steady_state_gth(chain)
        try:
            return steady_state_direct(chain)
        except SolverError:
            return steady_state_power(chain)
    if method == "direct":
        return steady_state_direct(chain)
    if method == "gth":
        return steady_state_gth(chain)
    if method == "power":
        return steady_state_power(chain)
    raise SolverError(f"unknown steady-state method {method!r}")


def steady_state_direct(chain: Ctmc) -> np.ndarray:
    """Sparse direct solve of ``pi Q = 0`` with normalisation."""
    n = chain.number_of_states()
    if n == 1:
        return np.array([1.0])
    return _direct_core(chain.generator().astype(float))


def steady_state_gth(chain: Ctmc) -> np.ndarray:
    """Grassmann-Taksar-Heyman elimination (dense, subtraction-free)."""
    n = chain.number_of_states()
    if n == 1:
        return np.array([1.0])
    return _gth_core(chain.dense_generator())


def steady_state_power(
    chain: Ctmc,
    tolerance: float = 1e-12,
    max_iterations: int = 2_000_000,
) -> np.ndarray:
    """Uniformised power iteration.

    Builds ``P = I + Q / Lambda`` with ``Lambda`` slightly above the
    largest exit rate and iterates ``pi P`` until the L1 change falls
    below *tolerance*.
    """
    n = chain.number_of_states()
    if n == 1:
        return np.array([1.0])
    return _power_core(
        chain.generator().tocsr().astype(float),
        tolerance=tolerance,
        max_iterations=max_iterations,
    )


# -- matrix-level cores -------------------------------------------------------


def _direct_core(q: sparse.spmatrix) -> np.ndarray:
    """Direct solve given the sparse generator ``Q`` (n >= 2)."""
    n = q.shape[0]
    a = q.transpose().tolil()
    # Replace the last equation with sum(pi) = 1.
    a[n - 1, :] = np.ones(n)
    b = np.zeros(n)
    b[n - 1] = 1.0
    try:
        pi = sparse_linalg.spsolve(a.tocsr(), b)
    except Exception as exc:  # scipy raises several distinct types
        raise SolverError(f"sparse steady-state solve failed: {exc}") from exc
    if not np.all(np.isfinite(pi)):
        raise SolverError("sparse steady-state solve produced non-finite values")
    pi = np.where(np.abs(pi) < 1e-300, 0.0, pi)
    if np.any(pi < -1e-8):
        raise SolverError("sparse steady-state solve produced negative probabilities")
    pi = np.clip(pi, 0.0, None)
    total = pi.sum()
    if total <= 0:
        raise SolverError("sparse steady-state solve produced a zero vector")
    return pi / total


def _gth_core(q: np.ndarray) -> np.ndarray:
    """GTH elimination given the dense generator ``Q`` (n >= 2)."""
    n = q.shape[0]
    # Work on the off-diagonal rate matrix.
    a = q.copy()
    np.fill_diagonal(a, 0.0)
    a = np.abs(a)
    # Forward elimination.
    for k in range(n - 1, 0, -1):
        total = a[k, :k].sum()
        if total <= 0.0:
            # State k unreachable-from/isolated in the reduced chain; give it
            # an infinitesimal self-consistency to avoid division by zero.
            raise SolverError(
                "GTH elimination hit a state with no outflow to lower indices; "
                "the chain is reducible"
            )
        a[:k, k] /= total
        for j in range(k):
            if a[k, j] != 0.0:
                a[:k, j] += a[:k, k] * a[k, j]
    # Back substitution.
    pi = np.zeros(n)
    pi[0] = 1.0
    for k in range(1, n):
        pi[k] = pi[:k] @ a[:k, k]
    total = pi.sum()
    if not np.isfinite(total) or total <= 0:
        raise SolverError("GTH produced a non-normalisable vector")
    return pi / total


def _power_core(
    q: sparse.csr_matrix,
    tolerance: float = 1e-12,
    max_iterations: int = 2_000_000,
) -> np.ndarray:
    """Uniformised power iteration given the sparse generator (n >= 2)."""
    n = q.shape[0]
    max_exit = float(np.max(-q.diagonal())) if n else 0.0
    if max_exit <= 0.0:
        # No transitions at all: every state is absorbing.
        raise SolverError("chain has no transitions; steady state undefined")
    lam = max_exit * 1.02
    p = sparse.identity(n, format="csr") + q / lam
    pi = np.full(n, 1.0 / n)
    for _ in range(max_iterations):
        nxt = pi @ p
        nxt = np.asarray(nxt).ravel()
        delta = np.abs(nxt - pi).sum()
        pi = nxt
        if delta < tolerance:
            total = pi.sum()
            return np.clip(pi, 0.0, None) / total
    raise SolverError(
        f"power iteration did not converge within {max_iterations} iterations"
    )


# -- batched solves over a shared structure -----------------------------------


class BatchSteadySolver:
    """Solve many CTMCs that share one transition structure.

    The solver is built once from the state count and the off-diagonal
    transition pattern (``(src, dst)`` index pairs); each solve then only
    supplies the rate *values* aligned with that pattern.  Generator
    assembly is fully vectorised (index arrays + ``bincount`` for the
    diagonal), so sweeping a parameter space costs one numpy assembly and
    one linear solve per point instead of a Python dict walk per point.

    Examples
    --------
    >>> solver = BatchSteadySolver(2, [(0, 1), (1, 0)])
    >>> solver.solve([2.0, 8.0]).round(3).tolist()
    [0.8, 0.2]
    """

    def __init__(self, n: int, transitions: Sequence[tuple[int, int]]) -> None:
        if n < 1:
            raise SolverError("a chain needs at least one state")
        self.n = int(n)
        pattern = list(transitions)
        if len(set(pattern)) != len(pattern):
            raise SolverError("transition pattern contains duplicate pairs")
        for src, dst in pattern:
            if src == dst:
                raise SolverError(f"self-loop ({src}, {dst}) in transition pattern")
            if not (0 <= src < n and 0 <= dst < n):
                raise SolverError(f"transition ({src}, {dst}) outside 0..{n - 1}")
        self._pattern: tuple[tuple[int, int], ...] = tuple(pattern)
        self._src = np.array([s for s, _ in pattern], dtype=np.intp)
        self._dst = np.array([d for _, d in pattern], dtype=np.intp)
        diag = np.arange(n, dtype=np.intp)
        self._rows = np.concatenate([self._src, diag])
        self._cols = np.concatenate([self._dst, diag])

    @classmethod
    def from_chain(cls, chain: Ctmc) -> "BatchSteadySolver":
        """A solver over *chain*'s transition pattern."""
        pattern = [(i, j) for i, j, _ in chain.transitions()]
        return cls(chain.number_of_states(), pattern)

    @property
    def pattern(self) -> tuple[tuple[int, int], ...]:
        """The off-diagonal ``(src, dst)`` pairs, in rate-vector order."""
        return self._pattern

    def rates_of(self, chain: Ctmc) -> np.ndarray:
        """*chain*'s rates aligned with :attr:`pattern` (0 where absent).

        Raises
        ------
        SolverError
            If the chain has a transition outside this solver's pattern.
        """
        lookup = {(i, j): rate for i, j, rate in chain.transitions()}
        rates = np.array([lookup.pop(pair, 0.0) for pair in self._pattern])
        if lookup:
            extra = next(iter(lookup))
            raise SolverError(f"chain transition {extra} not in solver pattern")
        return rates

    def generator(self, rates: Sequence[float]) -> sparse.csr_matrix:
        """Assemble the sparse generator for one rate vector."""
        values = self._values(rates)
        outflow = np.bincount(self._src, weights=values, minlength=self.n)
        data = np.concatenate([values, -outflow])
        return sparse.csr_matrix(
            (data, (self._rows, self._cols)), shape=(self.n, self.n)
        )

    def dense_generator(self, rates: Sequence[float]) -> np.ndarray:
        """Assemble the dense generator for one rate vector."""
        values = self._values(rates)
        q = np.zeros((self.n, self.n))
        q[self._src, self._dst] = values
        q[np.arange(self.n), np.arange(self.n)] = -np.bincount(
            self._src, weights=values, minlength=self.n
        )
        return q

    def solve(self, rates: Sequence[float], method: str = "auto") -> np.ndarray:
        """Steady-state vector for the chain with the given rate values."""
        if self.n == 1:
            return np.array([1.0])
        if method == "auto":
            if self.n <= _GTH_CUTOFF:
                return _gth_core(self.dense_generator(rates))
            try:
                return _direct_core(self.generator(rates))
            except SolverError:
                return _power_core(self.generator(rates))
        if method == "gth":
            return _gth_core(self.dense_generator(rates))
        if method == "direct":
            return _direct_core(self.generator(rates))
        if method == "power":
            return _power_core(self.generator(rates))
        raise SolverError(f"unknown steady-state method {method!r}")

    def solve_batch(
        self, rate_rows: Iterable[Sequence[float]], method: str = "auto"
    ) -> np.ndarray:
        """Solve one chain per row of *rate_rows*; rows align with input."""
        rows = [self.solve(rates, method=method) for rates in rate_rows]
        if not rows:
            return np.zeros((0, self.n))
        return np.vstack(rows)

    def _values(self, rates: Sequence[float]) -> np.ndarray:
        values = np.asarray(rates, dtype=float)
        if values.shape != (len(self._pattern),):
            raise SolverError(
                f"expected {len(self._pattern)} rates, got shape {values.shape}"
            )
        if np.any(~np.isfinite(values)) or np.any(values < 0):
            raise SolverError("rates must be finite and non-negative")
        return values


def steady_state_batch(
    chains: Sequence[Ctmc], method: str = "auto"
) -> list[np.ndarray]:
    """Steady states of many chains, reusing structure where shared.

    Chains are grouped by (state count, transition pattern); each group
    shares one :class:`BatchSteadySolver` so pattern index arrays and
    dense scaffolding are built once per distinct structure.  Results are
    returned in input order.
    """
    groups: dict[tuple[int, tuple[tuple[int, int], ...]], BatchSteadySolver] = {}
    results: list[np.ndarray] = []
    for chain in chains:
        key = (
            chain.number_of_states(),
            tuple(sorted((i, j) for i, j, _ in chain.transitions())),
        )
        solver = groups.get(key)
        if solver is None:
            solver = BatchSteadySolver(key[0], key[1])
            groups[key] = solver
        results.append(solver.solve(solver.rates_of(chain), method=method))
    return results

"""Steady-state solvers.

The steady-state distribution satisfies ``pi Q = 0`` with ``sum(pi) = 1``.
Four methods are provided:

``direct``
    Replace one balance equation by the normalisation condition and solve
    the sparse linear system.  Fast and accurate for irreducible chains.
``gth``
    The Grassmann-Taksar-Heyman elimination: division-free of subtractions,
    numerically exact up to rounding even for stiff chains; O(n^3) dense,
    used for small or ill-conditioned models and for cross-checking.
``iterative``
    BiCGStab (GMRES fallback) on the same augmented system with a
    diagonal preconditioner: the large-n path — sparse LU fill-in makes
    ``direct`` quadratic-ish in practice, while the Krylov solve stays
    near-linear in the number of non-zeros.
``power``
    Uniformised power iteration; a derivative-free fallback.

``steady_state`` picks ``gth`` for small chains, ``iterative`` above
:data:`_ITERATIVE_CUTOFF` states (env ``REPRO_ITERATIVE_THRESHOLD``)
and ``direct`` otherwise, falling back across methods on numerical
failure.

Each method is split into a matrix-level core (operating on the generator
directly) and a thin :class:`~repro.ctmc.chain.Ctmc` wrapper, so that
:class:`BatchSteadySolver` can solve whole families of chains that share
one transition structure without rebuilding per-chain ``Ctmc`` objects:
the sparsity pattern, index arrays and dense scaffolding are assembled
once and only the rate values change between solves.
"""

from __future__ import annotations

import logging
import os
from collections.abc import Iterable, Sequence

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as sparse_linalg

from repro.ctmc.chain import Ctmc
from repro.errors import SolverError
from repro.observability import metrics as _metrics
from repro.observability import tracing as _tracing
from repro.resilience.breaker import CircuitBreaker, breaker
from repro.resilience.faults import fault_point

__all__ = [
    "steady_state",
    "steady_state_direct",
    "steady_state_gth",
    "steady_state_iterative",
    "steady_state_power",
    "steady_state_batch",
    "BatchSteadySolver",
]

_logger = logging.getLogger(__name__)

_STEADY_SOLVES = _metrics.counter(
    "repro_steady_solves_total",
    "Steady-state solves by elimination path (core invocations).",
)

_GTH_CUTOFF = 200

#: Above this state count ``method="auto"`` tries the preconditioned
#: Krylov solve before the sparse direct factorisation (whose LU
#: fill-in dominates runtime from a few thousand states up).  Kept
#: above the 2401-state paper model so paper-scale solves stay on the
#: exact direct path.  Overridable via ``REPRO_ITERATIVE_THRESHOLD``.
_ITERATIVE_CUTOFF = 5000
_ITERATIVE_CUTOFF_ENV = "REPRO_ITERATIVE_THRESHOLD"


def _iterative_cutoff() -> int:
    raw = os.environ.get(_ITERATIVE_CUTOFF_ENV)
    if raw is None:
        return _ITERATIVE_CUTOFF
    try:
        value = int(raw)
    except ValueError:
        raise SolverError(
            f"{_ITERATIVE_CUTOFF_ENV} must be an integer, got {raw!r}"
        ) from None
    if value < 1:
        raise SolverError(f"{_ITERATIVE_CUTOFF_ENV} must be >= 1, got {value}")
    return value


#: Consecutive iterative failures before ``auto`` stops attempting the
#: Krylov path and routes straight to the direct factorisation for
#: ``REPRO_BREAKER_RECOVERY`` seconds.  The fallback is always correct
#: (just slower at large n), so an open breaker degrades latency, never
#: results.  Overridable via ``REPRO_BREAKER_THRESHOLD``.
_BREAKER_THRESHOLD = 3
_BREAKER_THRESHOLD_ENV = "REPRO_BREAKER_THRESHOLD"
_BREAKER_RECOVERY = 60.0
_BREAKER_RECOVERY_ENV = "REPRO_BREAKER_RECOVERY"


def _env_number(env: str, default: float, kind=float) -> float:
    raw = os.environ.get(env)
    if raw is None:
        return default
    try:
        value = kind(raw)
    except ValueError:
        raise SolverError(f"{env} must be a number, got {raw!r}") from None
    if value < (1 if kind is int else 0.0):
        raise SolverError(f"{env} is out of range: {value}")
    return value


def _iterative_breaker() -> CircuitBreaker:
    # The registry caches the first construction, so the env knobs are
    # read once per process (consistent with the cutoff envs, which
    # workers inherit on fork).
    return breaker(
        "solver.iterative",
        failure_threshold=int(_env_number(_BREAKER_THRESHOLD_ENV, _BREAKER_THRESHOLD, int)),
        recovery_time=_env_number(_BREAKER_RECOVERY_ENV, _BREAKER_RECOVERY),
    )


def _try_iterative(solve, n: int, label: str):
    """One breaker-guarded iterative attempt; ``None`` means "go direct"."""
    brk = _iterative_breaker()
    if not brk.allow():
        _logger.debug(
            "%s: n=%d iterative breaker open, routing direct", label, n
        )
        return None
    try:
        result = solve()
    except SolverError:
        brk.record_failure()
        _logger.debug("%s: n=%d iterative failed, trying direct", label, n)
        return None
    brk.record_success()
    return result


def steady_state(chain: Ctmc, method: str = "auto") -> np.ndarray:
    """Steady-state probability vector of *chain* (indexed like states).

    Parameters
    ----------
    chain:
        The CTMC to solve.  It must have a single recurrent class for the
        result to be meaningful.
    method:
        ``"auto"``, ``"direct"``, ``"gth"``, ``"iterative"`` or
        ``"power"``.
    """
    with _tracing.span(
        "ctmc:steady", states=chain.number_of_states(), method=method
    ):
        return _steady_state(chain, method)


def _steady_state(chain: Ctmc, method: str) -> np.ndarray:
    if method == "auto":
        n = chain.number_of_states()
        if n <= _GTH_CUTOFF:
            _logger.debug("steady state: n=%d auto -> gth", n)
            return steady_state_gth(chain)
        if n > _iterative_cutoff():
            _logger.debug("steady state: n=%d auto -> iterative", n)
            result = _try_iterative(
                lambda: steady_state_iterative(chain), n, "steady state"
            )
            if result is not None:
                return result
        try:
            _logger.debug("steady state: n=%d auto -> direct", n)
            return steady_state_direct(chain)
        except SolverError:
            _logger.debug("steady state: n=%d direct failed -> power", n)
            return steady_state_power(chain)
    if method == "direct":
        return steady_state_direct(chain)
    if method == "gth":
        return steady_state_gth(chain)
    if method == "iterative":
        return steady_state_iterative(chain)
    if method == "power":
        return steady_state_power(chain)
    raise SolverError(f"unknown steady-state method {method!r}")


def steady_state_direct(chain: Ctmc) -> np.ndarray:
    """Sparse direct solve of ``pi Q = 0`` with normalisation."""
    n = chain.number_of_states()
    if n == 1:
        return np.array([1.0])
    return _direct_core(chain.generator().astype(float))


def steady_state_gth(chain: Ctmc) -> np.ndarray:
    """Grassmann-Taksar-Heyman elimination (dense, subtraction-free)."""
    n = chain.number_of_states()
    if n == 1:
        return np.array([1.0])
    return _gth_core(chain.dense_generator())


def steady_state_iterative(chain: Ctmc, rtol: float = 1e-10) -> np.ndarray:
    """Preconditioned Krylov solve of the augmented steady-state system."""
    n = chain.number_of_states()
    if n == 1:
        return np.array([1.0])
    return _iterative_core(chain.generator().astype(float), rtol=rtol)


def steady_state_power(
    chain: Ctmc,
    tolerance: float = 1e-12,
    max_iterations: int = 2_000_000,
) -> np.ndarray:
    """Uniformised power iteration.

    Builds ``P = I + Q / Lambda`` with ``Lambda`` slightly above the
    largest exit rate and iterates ``pi P`` until the L1 change falls
    below *tolerance*.
    """
    n = chain.number_of_states()
    if n == 1:
        return np.array([1.0])
    return _power_core(
        chain.generator().tocsr().astype(float),
        tolerance=tolerance,
        max_iterations=max_iterations,
    )


# -- matrix-level cores -------------------------------------------------------


def _direct_core(q: sparse.spmatrix) -> np.ndarray:
    """Direct solve given the sparse generator ``Q`` (n >= 2)."""
    _STEADY_SOLVES.inc(path="direct")
    n = q.shape[0]
    a = q.transpose().tolil()
    # Replace the last equation with sum(pi) = 1.
    a[n - 1, :] = np.ones(n)
    b = np.zeros(n)
    b[n - 1] = 1.0
    try:
        pi = sparse_linalg.spsolve(a.tocsr(), b)
    except Exception as exc:  # scipy raises several distinct types
        raise SolverError(f"sparse steady-state solve failed: {exc}") from exc
    return _finalise_pi(pi, "sparse steady-state solve")


def _iterative_core(
    q: sparse.spmatrix, rtol: float = 1e-10, maxiter: int = 5000
) -> np.ndarray:
    """Krylov solve of the augmented system (n >= 2).

    Same system as :func:`_direct_core` — ``Q^T`` with the last balance
    equation replaced by normalisation — solved by BiCGStab (GMRES on
    failure) with a diagonal (Jacobi) preconditioner and a uniform
    starting vector, avoiding the LU fill-in that makes the direct
    factorisation super-linear at large ``n``.
    """
    fault_point(
        "solver.iterative",
        error=SolverError("injected iterative steady-state failure"),
    )
    _STEADY_SOLVES.inc(path="iterative")
    n = q.shape[0]
    a = q.transpose().tocsr().astype(float)
    a = sparse.vstack([a[: n - 1, :], np.ones((1, n))], format="csr")
    b = np.zeros(n)
    b[n - 1] = 1.0
    diagonal = a.diagonal()
    safe = np.where(diagonal != 0.0, diagonal, 1.0)
    scale = 1.0 / safe
    preconditioner = sparse_linalg.LinearOperator(
        (n, n), matvec=lambda x: x * scale
    )
    x0 = np.full(n, 1.0 / n)
    errors: list[str] = []
    for name, solve in (
        ("bicgstab", sparse_linalg.bicgstab),
        ("gmres", sparse_linalg.gmres),
    ):
        try:
            pi, info = solve(
                a, b, x0=x0, rtol=rtol, atol=0.0,
                M=preconditioner, maxiter=maxiter,
            )
        except Exception as exc:  # pragma: no cover - scipy internals
            errors.append(f"{name}: {exc}")
            continue
        if info == 0 and np.all(np.isfinite(pi)):
            residual = float(np.max(np.abs(a @ pi - b)))
            if residual <= max(rtol * 100.0, 1e-8):
                _logger.debug(
                    "iterative steady state: n=%d solver=%s residual=%.3e",
                    n, name, residual,
                )
                return _finalise_pi(pi, "iterative steady-state solve")
            errors.append(f"{name}: residual {residual:.3e} too large")
        else:
            errors.append(f"{name}: info={info}")
    raise SolverError(
        "iterative steady-state solve did not converge ("
        + "; ".join(errors) + ")"
    )


def _finalise_pi(pi: np.ndarray, label: str) -> np.ndarray:
    if not np.all(np.isfinite(pi)):
        raise SolverError(f"{label} produced non-finite values")
    pi = np.where(np.abs(pi) < 1e-300, 0.0, pi)
    if np.any(pi < -1e-8):
        raise SolverError(f"{label} produced negative probabilities")
    pi = np.clip(pi, 0.0, None)
    total = pi.sum()
    if total <= 0:
        raise SolverError(f"{label} produced a zero vector")
    return pi / total


def _gth_core(q: np.ndarray) -> np.ndarray:
    """GTH elimination given the dense generator ``Q`` (n >= 2)."""
    _STEADY_SOLVES.inc(path="gth")
    n = q.shape[0]
    # Work on the off-diagonal rate matrix.
    a = q.copy()
    np.fill_diagonal(a, 0.0)
    a = np.abs(a)
    # Forward elimination.
    for k in range(n - 1, 0, -1):
        total = a[k, :k].sum()
        if total <= 0.0:
            # State k unreachable-from/isolated in the reduced chain; give it
            # an infinitesimal self-consistency to avoid division by zero.
            raise SolverError(
                "GTH elimination hit a state with no outflow to lower indices; "
                "the chain is reducible"
            )
        a[:k, k] /= total
        for j in range(k):
            if a[k, j] != 0.0:
                a[:k, j] += a[:k, k] * a[k, j]
    # Back substitution.
    pi = np.zeros(n)
    pi[0] = 1.0
    for k in range(1, n):
        pi[k] = pi[:k] @ a[:k, k]
    total = pi.sum()
    if not np.isfinite(total) or total <= 0:
        raise SolverError("GTH produced a non-normalisable vector")
    return pi / total


def _power_core(
    q: sparse.csr_matrix,
    tolerance: float = 1e-12,
    max_iterations: int = 2_000_000,
) -> np.ndarray:
    """Uniformised power iteration given the sparse generator (n >= 2)."""
    _STEADY_SOLVES.inc(path="power")
    n = q.shape[0]
    max_exit = float(np.max(-q.diagonal())) if n else 0.0
    if max_exit <= 0.0:
        # No transitions at all: every state is absorbing.
        raise SolverError("chain has no transitions; steady state undefined")
    lam = max_exit * 1.02
    p = sparse.identity(n, format="csr") + q / lam
    pi = np.full(n, 1.0 / n)
    delta = float("inf")
    for _ in range(max_iterations):
        nxt = pi @ p
        nxt = np.asarray(nxt).ravel()
        delta = np.abs(nxt - pi).sum()
        pi = nxt
        if delta < tolerance:
            total = pi.sum()
            return np.clip(pi, 0.0, None) / total
    raise SolverError(
        f"power iteration did not converge within {max_iterations} "
        f"iterations (achieved residual {delta:.3e}, tolerance {tolerance:.3e})"
    )


# -- batched solves over a shared structure -----------------------------------


class BatchSteadySolver:
    """Solve many CTMCs that share one transition structure.

    The solver is built once from the state count and the off-diagonal
    transition pattern (``(src, dst)`` index pairs); each solve then only
    supplies the rate *values* aligned with that pattern.  Generator
    assembly is fully vectorised (index arrays + ``bincount`` for the
    diagonal), so sweeping a parameter space costs one numpy assembly and
    one linear solve per point instead of a Python dict walk per point.

    Examples
    --------
    >>> solver = BatchSteadySolver(2, [(0, 1), (1, 0)])
    >>> solver.solve([2.0, 8.0]).round(3).tolist()
    [0.8, 0.2]
    """

    def __init__(self, n: int, transitions: Sequence[tuple[int, int]]) -> None:
        if n < 1:
            raise SolverError("a chain needs at least one state")
        self.n = int(n)
        pattern = list(transitions)
        if len(set(pattern)) != len(pattern):
            raise SolverError("transition pattern contains duplicate pairs")
        for src, dst in pattern:
            if src == dst:
                raise SolverError(f"self-loop ({src}, {dst}) in transition pattern")
            if not (0 <= src < n and 0 <= dst < n):
                raise SolverError(f"transition ({src}, {dst}) outside 0..{n - 1}")
        self._pattern: tuple[tuple[int, int], ...] = tuple(pattern)
        self._src = np.array([s for s, _ in pattern], dtype=np.intp)
        self._dst = np.array([d for _, d in pattern], dtype=np.intp)
        diag = np.arange(n, dtype=np.intp)
        self._rows = np.concatenate([self._src, diag])
        self._cols = np.concatenate([self._dst, diag])

    @classmethod
    def from_chain(cls, chain: Ctmc) -> "BatchSteadySolver":
        """A solver over *chain*'s transition pattern."""
        pattern = [(i, j) for i, j, _ in chain.transitions()]
        return cls(chain.number_of_states(), pattern)

    @property
    def pattern(self) -> tuple[tuple[int, int], ...]:
        """The off-diagonal ``(src, dst)`` pairs, in rate-vector order."""
        return self._pattern

    def rates_of(self, chain: Ctmc) -> np.ndarray:
        """*chain*'s rates aligned with :attr:`pattern` (0 where absent).

        Raises
        ------
        SolverError
            If the chain has a transition outside this solver's pattern.
        """
        lookup = {(i, j): rate for i, j, rate in chain.transitions()}
        rates = np.array([lookup.pop(pair, 0.0) for pair in self._pattern])
        if lookup:
            extra = next(iter(lookup))
            raise SolverError(f"chain transition {extra} not in solver pattern")
        return rates

    def generator(self, rates: Sequence[float]) -> sparse.csr_matrix:
        """Assemble the sparse generator for one rate vector."""
        values = self._values(rates)
        outflow = np.bincount(self._src, weights=values, minlength=self.n)
        data = np.concatenate([values, -outflow])
        return sparse.csr_matrix(
            (data, (self._rows, self._cols)), shape=(self.n, self.n)
        )

    def dense_generator(self, rates: Sequence[float]) -> np.ndarray:
        """Assemble the dense generator for one rate vector."""
        values = self._values(rates)
        q = np.zeros((self.n, self.n))
        q[self._src, self._dst] = values
        q[np.arange(self.n), np.arange(self.n)] = -np.bincount(
            self._src, weights=values, minlength=self.n
        )
        return q

    def solve(self, rates: Sequence[float], method: str = "auto") -> np.ndarray:
        """Steady-state vector for the chain with the given rate values."""
        with _tracing.span("ctmc:steady", states=self.n, method=method):
            return self._solve(rates, method)

    def _solve(self, rates: Sequence[float], method: str) -> np.ndarray:
        if self.n == 1:
            return np.array([1.0])
        if method == "auto":
            if self.n <= _GTH_CUTOFF:
                return _gth_core(self.dense_generator(rates))
            q = self.generator(rates)
            if self.n > _iterative_cutoff():
                result = _try_iterative(
                    lambda: _iterative_core(q), self.n, "batch steady state"
                )
                if result is not None:
                    return result
            try:
                return _direct_core(q)
            except SolverError:
                return _power_core(q)
        if method == "gth":
            return _gth_core(self.dense_generator(rates))
        if method == "direct":
            return _direct_core(self.generator(rates))
        if method == "iterative":
            return _iterative_core(self.generator(rates))
        if method == "power":
            return _power_core(self.generator(rates))
        raise SolverError(f"unknown steady-state method {method!r}")

    def solve_batch(
        self, rate_rows: Iterable[Sequence[float]], method: str = "auto"
    ) -> np.ndarray:
        """Solve one chain per row of *rate_rows*; rows align with input."""
        rows = [self.solve(rates, method=method) for rates in rate_rows]
        if not rows:
            return np.zeros((0, self.n))
        return np.vstack(rows)

    def _values(self, rates: Sequence[float]) -> np.ndarray:
        values = np.asarray(rates, dtype=float)
        if values.shape != (len(self._pattern),):
            raise SolverError(
                f"expected {len(self._pattern)} rates, got shape {values.shape}"
            )
        if np.any(~np.isfinite(values)) or np.any(values < 0):
            raise SolverError("rates must be finite and non-negative")
        return values


def steady_state_batch(
    chains: Sequence[Ctmc], method: str = "auto"
) -> list[np.ndarray]:
    """Steady states of many chains, reusing structure where shared.

    Chains are grouped by (state count, transition pattern); each group
    shares one :class:`BatchSteadySolver` so pattern index arrays and
    dense scaffolding are built once per distinct structure.  Results are
    returned in input order.
    """
    groups: dict[tuple[int, tuple[tuple[int, int], ...]], BatchSteadySolver] = {}
    results: list[np.ndarray] = []
    for chain in chains:
        key = (
            chain.number_of_states(),
            tuple(sorted((i, j) for i, j, _ in chain.transitions())),
        )
        solver = groups.get(key)
        if solver is None:
            solver = BatchSteadySolver(key[0], key[1])
            groups[key] = solver
        results.append(solver.solve(solver.rates_of(chain), method=method))
    return results

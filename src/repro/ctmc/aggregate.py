"""Trivedi-style two-state aggregation (the paper's Eqs. (1)-(2)).

A detailed availability sub-model is collapsed into an equivalent
two-state (up/down) chain whose rates preserve the steady-state flow
between the up and down macro-states:

    lambda_eq = (sum of flow rates from up-states into down-states) / P(up)
    mu_eq     = (sum of flow rates from down-states into up-states) / P(down)

The paper's Eq. (1) instance is ``lambda_eq = tau_p * p_up / p_up = tau_p``
(every up-state leaves for the patch pipeline at the clock rate) and
Eq. (2) is ``mu_eq = beta_svc * p_prrb / p_pd`` (only the final
ready-to-reboot state returns to up, at the service reboot rate).
"""

from __future__ import annotations

from collections.abc import Callable

from dataclasses import dataclass

import numpy as np

from repro.ctmc.chain import Ctmc, State
from repro.ctmc.steady import steady_state
from repro.errors import CtmcError

__all__ = ["TwoStateAggregate", "aggregate_two_state"]


@dataclass(frozen=True)
class TwoStateAggregate:
    """The result of collapsing a chain into an up/down pair.

    Attributes
    ----------
    failure_rate:
        Equivalent up -> down rate (the paper's lambda_eq).
    repair_rate:
        Equivalent down -> up rate (the paper's mu_eq).
    up_probability, down_probability:
        Steady-state macro-state masses of the detailed chain.
    """

    failure_rate: float
    repair_rate: float
    up_probability: float
    down_probability: float

    @property
    def mttf(self) -> float:
        """Mean time to (macro) failure, ``1 / failure_rate``."""
        return 1.0 / self.failure_rate

    @property
    def mttr(self) -> float:
        """Mean time to (macro) repair, ``1 / repair_rate``."""
        return 1.0 / self.repair_rate

    @property
    def availability(self) -> float:
        """Availability of the equivalent two-state chain."""
        return self.repair_rate / (self.failure_rate + self.repair_rate)


def aggregate_two_state(
    chain: Ctmc,
    is_up: Callable[[State], bool],
    probabilities: np.ndarray | None = None,
) -> TwoStateAggregate:
    """Collapse *chain* into an equivalent two-state up/down chain.

    Parameters
    ----------
    chain:
        The detailed chain (must be irreducible for meaningful output).
    is_up:
        Predicate classifying each state label as up (True) or down.
    probabilities:
        Optional precomputed steady-state vector.

    Raises
    ------
    CtmcError
        If every state is up, or every state is down, or a macro-state
        has zero probability mass.
    """
    if probabilities is None:
        probabilities = steady_state(chain)
    states = chain.states
    up_mask = np.array([bool(is_up(state)) for state in states])
    if up_mask.all() or not up_mask.any():
        raise CtmcError("aggregation needs at least one up and one down state")

    pi = probabilities
    p_up = float(pi[up_mask].sum())
    p_down = float(pi[~up_mask].sum())
    if p_up <= 0.0 or p_down <= 0.0:
        raise CtmcError("a macro-state has zero steady-state probability")

    flow_up_to_down = 0.0
    flow_down_to_up = 0.0
    for i, j, rate in chain.transitions():
        if up_mask[i] and not up_mask[j]:
            flow_up_to_down += pi[i] * rate
        elif not up_mask[i] and up_mask[j]:
            flow_down_to_up += pi[i] * rate

    return TwoStateAggregate(
        failure_rate=flow_up_to_down / p_up,
        repair_rate=flow_down_to_up / p_down,
        up_probability=p_up,
        down_probability=p_down,
    )

"""Closed-form birth-death chains for cross-validation.

The upper-layer network availability model is a product of independent
birth-death chains (one per service tier); this module provides the exact
closed form used to validate the SRN/CTMC pipeline.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import CtmcError

__all__ = ["birth_death_steady_state"]


def birth_death_steady_state(
    birth_rates: Sequence[float],
    death_rates: Sequence[float],
) -> np.ndarray:
    """Steady state of a finite birth-death chain on states 0..n.

    ``birth_rates[k]`` is the rate from state k to k+1 and
    ``death_rates[k]`` the rate from state k+1 to k, for k in 0..n-1.

    Returns the probability vector over states 0..n via the standard
    detailed-balance product form.

    Examples
    --------
    >>> pi = birth_death_steady_state([2.0], [8.0])
    >>> float(round(pi[1], 3))
    0.2
    """
    if len(birth_rates) != len(death_rates):
        raise CtmcError(
            "birth and death rate sequences must have equal length, got "
            f"{len(birth_rates)} and {len(death_rates)}"
        )
    for rate in list(birth_rates) + list(death_rates):
        if rate <= 0:
            raise CtmcError(f"birth/death rates must be > 0, got {rate!r}")
    n = len(birth_rates)
    weights = np.ones(n + 1)
    for k in range(n):
        weights[k + 1] = weights[k] * birth_rates[k] / death_rates[k]
    return weights / weights.sum()

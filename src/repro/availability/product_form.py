"""Closed-form COA for independent service tiers (cross-validation).

Because the upper-layer SRN is a product of independent birth-death
chains (each server patches and recovers independently), the joint
steady state factorises: the number of up servers in a tier of size n is
Binomial(n, p_up) with ``p_up = mu_eq / (lambda_eq + mu_eq)``.  The COA
then has the closed form implemented here, which the SRN pipeline must
match to solver precision.
"""

from __future__ import annotations

from collections.abc import Mapping
from itertools import product
from math import comb

from repro._validation import check_positive, check_positive_int
from repro.errors import EvaluationError

__all__ = ["product_form_coa", "tier_up_distribution"]


def tier_up_distribution(count: int, up_probability: float) -> list[float]:
    """Binomial pmf over 0..count servers up."""
    check_positive_int(count, "count")
    if not 0.0 <= up_probability <= 1.0:
        raise EvaluationError(f"up_probability must be in [0,1], got {up_probability}")
    return [
        comb(count, k) * up_probability**k * (1.0 - up_probability) ** (count - k)
        for k in range(count + 1)
    ]


def product_form_coa(
    capacities: Mapping[str, int],
    patch_rates: Mapping[str, float],
    recovery_rates: Mapping[str, float],
) -> float:
    """Exact COA of a design from the per-service equivalent rates.

    Parameters
    ----------
    capacities:
        Service name -> number of servers.
    patch_rates, recovery_rates:
        Service name -> lambda_eq / mu_eq.
    """
    if not capacities:
        raise EvaluationError("COA needs at least one service")
    services = list(capacities)
    distributions: list[list[float]] = []
    for service in services:
        if service not in patch_rates or service not in recovery_rates:
            raise EvaluationError(f"missing rates for service {service!r}")
        lam = check_positive(patch_rates[service], f"patch rate of {service!r}")
        mu = check_positive(recovery_rates[service], f"recovery rate of {service!r}")
        p_up = mu / (lam + mu)
        distributions.append(tier_up_distribution(capacities[service], p_up))

    total = sum(capacities.values())
    coa = 0.0
    for combo in product(*(range(len(d)) for d in distributions)):
        if min(combo) == 0:
            continue
        probability = 1.0
        for dist, k in zip(distributions, combo):
            probability *= dist[k]
        coa += probability * (sum(combo) / total)
    return coa

"""Input parameters of the server SRN sub-models (the paper's Table IV).

All rates are per hour.  Patch durations derive from the number of
critical vulnerabilities to patch: the paper assumes an application
vulnerability takes 5 minutes and an OS vulnerability 10 minutes on
average, patched sequentially, with a single merged reboot (10 minutes
OS + 5 minutes service) after both stages.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro._validation import check_name, check_non_negative_int, check_positive

__all__ = [
    "MINUTES_PER_HOUR",
    "APP_VULN_PATCH_MINUTES",
    "OS_VULN_PATCH_MINUTES",
    "ComponentRates",
    "PatchPipeline",
    "ServerParameters",
    "dns_server_parameters",
    "paper_server_parameters",
]

MINUTES_PER_HOUR = 60.0

#: Average minutes to patch one application-layer vulnerability.
APP_VULN_PATCH_MINUTES = 5.0
#: Average minutes to patch one OS-layer vulnerability.
OS_VULN_PATCH_MINUTES = 10.0


def _rate_from_minutes(minutes: float) -> float:
    """Exponential rate (per hour) with the given mean in minutes."""
    check_positive(minutes, "duration in minutes")
    return MINUTES_PER_HOUR / minutes


@dataclass(frozen=True)
class ComponentRates:
    """Failure/recovery behaviour of one server (Table IV, non-patch rows).

    All values are rates per hour.  ``*_reboot`` rates are the
    reboot-after-failure transitions (delta in the paper); patch-related
    reboots live in :class:`PatchPipeline`.
    """

    hardware_failure: float = 1.0 / 87600.0
    hardware_repair: float = 1.0
    os_failure: float = 1.0 / 1440.0
    os_repair: float = 1.0
    os_reboot: float = _rate_from_minutes(10.0)
    service_failure: float = 1.0 / 336.0
    service_repair: float = _rate_from_minutes(30.0)
    service_reboot: float = _rate_from_minutes(5.0)

    def __post_init__(self) -> None:
        for field_name in (
            "hardware_failure",
            "hardware_repair",
            "os_failure",
            "os_repair",
            "os_reboot",
            "service_failure",
            "service_repair",
            "service_reboot",
        ):
            check_positive(getattr(self, field_name), field_name)


@dataclass(frozen=True)
class PatchPipeline:
    """Patch-stage rates of one server (Table IV, patch rows).

    The pipeline is sequential: service (application) patch, then OS
    patch, then OS reboot, then service reboot.
    """

    service_patch: float
    os_patch: float
    os_patch_reboot: float = _rate_from_minutes(10.0)
    service_patch_reboot: float = _rate_from_minutes(5.0)

    def __post_init__(self) -> None:
        for field_name in (
            "service_patch",
            "os_patch",
            "os_patch_reboot",
            "service_patch_reboot",
        ):
            check_positive(getattr(self, field_name), field_name)

    @classmethod
    def from_vulnerability_counts(
        cls,
        app_critical_count: int,
        os_critical_count: int,
        app_minutes_per_vuln: float = APP_VULN_PATCH_MINUTES,
        os_minutes_per_vuln: float = OS_VULN_PATCH_MINUTES,
    ) -> "PatchPipeline":
        """Derive stage rates from critical-vulnerability counts.

        The paper's DNS server has one critical application vulnerability
        (5 minutes) and two critical OS vulnerabilities (20 minutes).
        A count of zero is modelled as a negligible (30 second) stage so
        the pipeline structure stays intact.
        """
        check_non_negative_int(app_critical_count, "app_critical_count")
        check_non_negative_int(os_critical_count, "os_critical_count")
        app_minutes = app_critical_count * app_minutes_per_vuln
        os_minutes = os_critical_count * os_minutes_per_vuln
        negligible = 0.5
        return cls(
            service_patch=_rate_from_minutes(app_minutes or negligible),
            os_patch=_rate_from_minutes(os_minutes or negligible),
        )

    @property
    def expected_downtime_hours(self) -> float:
        """Mean patch downtime: the four sequential stage means."""
        return (
            1.0 / self.service_patch
            + 1.0 / self.os_patch
            + 1.0 / self.os_patch_reboot
            + 1.0 / self.service_patch_reboot
        )


@dataclass(frozen=True)
class ServerParameters:
    """Everything the lower-layer SRN needs for one server."""

    name: str
    rates: ComponentRates
    patch: PatchPipeline
    patch_interval_hours: float = 720.0

    def __post_init__(self) -> None:
        check_name(self.name, "server name")
        check_positive(self.patch_interval_hours, "patch_interval_hours")

    @property
    def patch_clock_rate(self) -> float:
        """The paper's tau_p: 1 / patch interval."""
        return 1.0 / self.patch_interval_hours

    def with_patch_interval(self, hours: float) -> "ServerParameters":
        """Copy with a different patch interval (schedule studies)."""
        return replace(self, patch_interval_hours=check_positive(hours, "hours"))


def dns_server_parameters() -> ServerParameters:
    """Table IV: the DNS server (1 app critical, 2 OS criticals)."""
    return ServerParameters(
        name="dns",
        rates=ComponentRates(service_failure=1.0 / 336.0),
        patch=PatchPipeline.from_vulnerability_counts(1, 2),
    )


def paper_server_parameters() -> dict[str, ServerParameters]:
    """Parameter sets for all four server roles of the case study.

    Critical-vulnerability counts per role (derived from the catalog —
    see :mod:`repro.vulnerability.catalog` — and consistent with the
    Table V recovery rates):

    ====  ====================  ==========
    role  application criticals OS criticals
    ====  ====================  ==========
    dns   1                     2
    web   2                     1
    app   3                     3
    db    2                     3
    ====  ====================  ==========
    """
    counts = {"dns": (1, 2), "web": (2, 1), "app": (3, 3), "db": (2, 3)}
    return {
        role: ServerParameters(
            name=role,
            rates=ComponentRates(),
            patch=PatchPipeline.from_vulnerability_counts(app_count, os_count),
        )
        for role, (app_count, os_count) in counts.items()
    }

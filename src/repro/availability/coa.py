"""Capacity-oriented availability (COA) reward functions.

Table VI of the paper assigns to each marking the fraction of running
servers, *provided every service still has at least one server up*;
otherwise the reward is 0 (the web service being entirely down makes the
whole system useless regardless of how many application servers run).
The generalization below reproduces Table VI exactly for the example
network (1 DNS + 2 WEB + 2 APP + 1 DB).
"""

from __future__ import annotations

from collections.abc import Callable, Mapping

from repro._validation import check_positive_int
from repro.errors import EvaluationError
from repro.srn import Marking

__all__ = ["coa_reward", "up_place"]


def up_place(service: str) -> str:
    """Name of the tokens-up place for *service* in the network SRN."""
    return f"P{service}up"


def coa_reward(capacities: Mapping[str, int]) -> Callable[[Marking], float]:
    """Build the Table VI reward function for the given design.

    Parameters
    ----------
    capacities:
        Service name -> number of deployed servers (e.g.
        ``{"dns": 1, "web": 2, "app": 2, "db": 1}``).

    Returns
    -------
    A reward-rate function over markings of the network SRN: the number
    of running servers divided by the total, or 0 when any service has
    no server up.
    """
    if not capacities:
        raise EvaluationError("COA needs at least one service")
    for service, count in capacities.items():
        check_positive_int(count, f"capacity of {service!r}")
    places = {service: up_place(service) for service in capacities}
    total = sum(capacities.values())

    def reward(marking: Marking) -> float:
        running = 0
        for service, place in places.items():
            up = marking[place]
            if up == 0:
                return 0.0
            running += up
        return running / total

    return reward

"""Canonical pattern structures for structure-sharing design sweeps.

Two designs whose availability SRNs share a *transition pattern* — the
same multiset of per-tier replica counts — generate isomorphic
reachability graphs: only the numeric patch/recovery rates differ.  The
sweep engine exploits that by mapping every
:class:`~repro.enterprise.design.DesignSpec` onto a *canonical layout*
(tiers stably sorted by their group-count signature, groups within a
tier stably sorted by count) and exploring the canonical SRN **once per
layout**.  The exploration is then distilled into a purely numeric
:class:`CoaStructure`:

- the sorted ``(src, dst)`` transition pattern feeding a
  :class:`~repro.ctmc.steady.BatchSteadySolver`;
- per-edge token *coefficients* and slot/rate indices, so a member
  design's rate vector is one numpy multiply
  (``coefficients * rates[rate_index]``) — no net objects, no closures;
- the Table VI COA reward vector and the all-up initial distribution.

Because every design of a layout shares the structure bit-for-bit, the
grouped solves are byte-identical to solving each design's canonical
net independently — the structure-sharing parity the sweep pipeline
asserts.  Being plain arrays, structures also travel through
``multiprocessing.shared_memory`` to pool workers (see
:mod:`repro.evaluation.shared_memory`).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.availability.coa import up_place
from repro.ctmc.steady import BatchSteadySolver
from repro.ctmc.transient import BatchTransientSolver
from repro.enterprise.roles import ServerRole
from repro.errors import EvaluationError
from repro.srn import StochasticRewardNet
from repro.srn.reachability import explore

__all__ = [
    "SlotRef",
    "CanonicalLayout",
    "design_layout",
    "build_canonical_net",
    "canonical_coa_reward",
    "CoaStructure",
    "coa_structure",
]


@dataclass(frozen=True)
class SlotRef:
    """One canonical server group of a design.

    *role* is the tier the group serves (for component-rate lookup);
    *variant* is the stack of a heterogeneous group (``None`` for a
    homogeneous role group); *count* its replica count.
    """

    role: str
    variant: ServerRole | None
    count: int

    @property
    def key(self) -> str:
        """The aggregate-table key (role or variant name)."""
        return self.variant.name if self.variant is not None else self.role


@dataclass(frozen=True)
class CanonicalLayout:
    """The transition-pattern signature of a design's availability SRN.

    ``tiers`` holds, per canonical tier, the tuple of group replica
    counts — e.g. ``((1,), (1, 2))`` for a design with a single-group
    tier of one server and a two-variant tier of 1 + 2 servers.  Designs
    with equal ``tiers`` generate structurally identical canonical nets.
    """

    tiers: tuple[tuple[int, ...], ...]

    @property
    def counts(self) -> tuple[int, ...]:
        """Flat slot counts, in canonical slot order."""
        return tuple(count for tier in self.tiers for count in tier)

    @property
    def n_slots(self) -> int:
        """Number of server groups across all tiers."""
        return sum(len(tier) for tier in self.tiers)

    @property
    def total_servers(self) -> int:
        """Total replica count over all groups."""
        return sum(self.counts)

    def tier_slots(self) -> tuple[tuple[int, ...], ...]:
        """Per tier, the canonical slot indices belonging to it."""
        slots: list[tuple[int, ...]] = []
        offset = 0
        for tier in self.tiers:
            slots.append(tuple(range(offset, offset + len(tier))))
            offset += len(tier)
        return tuple(slots)


def design_layout(design) -> tuple[CanonicalLayout, tuple[SlotRef, ...]]:
    """The canonical layout of *design* plus its slot assignment.

    Tiers are stably sorted by their group-count signature and groups
    within a tier stably sorted by count, so the layout depends only on
    the design's transition pattern — two designs with the same counts
    multiset share one layout — while the returned :class:`SlotRef`
    sequence records which of the design's groups fills each slot.
    The sort is stable on the design's insertion order, so a
    single-variant-per-role heterogeneous design maps onto exactly the
    same slots as its homogeneous twin.
    """
    from repro.enterprise.heterogeneous import (
        HeterogeneousDesign,
        check_design_kind,
    )

    tiers: list[list[SlotRef]] = []
    if isinstance(design, HeterogeneousDesign):
        for role in design.roles:
            tiers.append(
                [
                    SlotRef(role=role, variant=variant, count=count)
                    for variant, count in design.variants(role).items()
                ]
            )
    else:
        check_design_kind(design)
        for role, count in design.counts.items():
            tiers.append([SlotRef(role=role, variant=None, count=count)])

    sorted_tiers = [
        sorted(groups, key=lambda ref: ref.count) for groups in tiers
    ]
    sorted_tiers.sort(key=lambda groups: tuple(ref.count for ref in groups))
    layout = CanonicalLayout(
        tiers=tuple(
            tuple(ref.count for ref in groups) for groups in sorted_tiers
        )
    )
    slots = tuple(ref for groups in sorted_tiers for ref in groups)
    return layout, slots


def _slot_name(slot: int) -> str:
    return f"g{slot}"


def build_canonical_net(
    layout: CanonicalLayout, rates: Sequence[tuple[float, float]]
) -> StochasticRewardNet:
    """The canonical availability SRN of *layout*.

    *rates* supplies one ``(patch_rate, recovery_rate)`` pair per slot.
    Place and transition names follow the network-model convention
    (``Pg<i>up`` / ``Tg<i>d``), one up/down pair per slot in canonical
    order, so every design of the layout produces a structurally
    identical net.
    """
    if len(rates) != layout.n_slots:
        raise EvaluationError(
            f"layout has {layout.n_slots} slots but {len(rates)} rate "
            "pairs were given"
        )
    net = StochasticRewardNet("canonical-availability")
    for slot, (count, (patch_rate, recovery_rate)) in enumerate(
        zip(layout.counts, rates)
    ):
        name = _slot_name(slot)
        place_up = up_place(name)
        place_down = f"P{name}d"
        net.add_place(place_up, tokens=count)
        net.add_place(place_down)

        def patch(m, _p=place_up, _r=patch_rate):
            return _r * m[_p]

        def repair(m, _p=place_down, _r=recovery_rate):
            return _r * m[_p]

        net.add_timed_transition(f"T{name}d", rate=patch)
        net.add_arc(place_up, f"T{name}d")
        net.add_arc(f"T{name}d", place_down)
        net.add_timed_transition(f"T{name}up", rate=repair)
        net.add_arc(place_down, f"T{name}up")
        net.add_arc(f"T{name}up", place_up)
    return net


def canonical_coa_reward(layout: CanonicalLayout):
    """Table VI reward over canonical markings: running fraction, 0 on
    any tier with no server up (the tier-up condition couples a tier's
    groups, matching the heterogeneous model's reward)."""
    tier_slots = layout.tier_slots()
    total = layout.total_servers

    def reward(marking) -> float:
        running = 0
        for slots in tier_slots:
            tier_up = sum(marking[up_place(_slot_name(s))] for s in slots)
            if tier_up == 0:
                return 0.0
            running += tier_up
        return running / total

    return reward


@dataclass(frozen=True)
class CoaStructure:
    """The numeric distillation of one canonical layout's exploration.

    Everything a steady or transient COA solve needs, as plain arrays:
    a member design's off-diagonal rate vector is
    ``coefficients * rates[rate_index]`` where *rates* holds the flat
    ``(patch, recovery)`` pairs per slot (``rates[2 * slot]`` patching,
    ``rates[2 * slot + 1]`` recovering).
    """

    layout: CanonicalLayout
    n_states: int
    src: np.ndarray  # (edges,) intp — pattern sources, sorted by (src, dst)
    dst: np.ndarray  # (edges,) intp — pattern destinations
    coefficients: np.ndarray  # (edges,) float64 — token counts
    rate_index: np.ndarray  # (edges,) intp — index into the flat rate vector
    reward: np.ndarray  # (n_states,) float64 — Table VI COA reward
    initial: np.ndarray  # (n_states,) float64 — all-up one-hot
    _solver: list = field(default_factory=list, repr=False, compare=False)

    @property
    def pattern(self) -> list[tuple[int, int]]:
        """The off-diagonal ``(src, dst)`` pairs, in rate-vector order."""
        return list(zip(self.src.tolist(), self.dst.tolist()))

    def solver(self) -> BatchSteadySolver:
        """The (cached) batch steady solver over this pattern."""
        if not self._solver:
            self._solver.append(BatchSteadySolver(self.n_states, self.pattern))
        return self._solver[0]

    def rate_values(self, slot_rates: Sequence[float]) -> np.ndarray:
        """Off-diagonal rate vector for flat per-slot *slot_rates*."""
        rates = np.asarray(slot_rates, dtype=float)
        if rates.shape != (2 * self.layout.n_slots,):
            raise EvaluationError(
                f"expected {2 * self.layout.n_slots} slot rates, got "
                f"shape {rates.shape}"
            )
        return self.coefficients * rates[self.rate_index]

    def steady_probabilities(
        self, slot_rates: Sequence[float], method: str = "auto"
    ) -> np.ndarray:
        """Steady-state vector of the member with *slot_rates*."""
        return self.solver().solve(self.rate_values(slot_rates), method=method)

    def coa(self, slot_rates: Sequence[float], method: str = "auto") -> float:
        """Steady-state COA of the member with *slot_rates*."""
        return float(
            self.steady_probabilities(slot_rates, method=method) @ self.reward
        )

    def transient_solver(
        self,
        slot_rates: Sequence[float],
        tolerance: float = 1e-10,
        method: str = "uniformisation",
    ) -> BatchTransientSolver:
        """A transient solver for the member with *slot_rates*.

        *method* selects the propagation backend (see
        :class:`~repro.ctmc.transient.BatchTransientSolver`).
        """
        generator = self.solver().generator(self.rate_values(slot_rates))
        return BatchTransientSolver.from_generator(
            generator, tolerance=tolerance, method=method
        )

    def transient_coa(
        self,
        slot_rates: Sequence[float],
        times: Sequence[float],
        tolerance: float = 1e-10,
        method: str = "uniformisation",
    ) -> np.ndarray:
        """Expected COA at each time from the all-up marking."""
        return self.transient_solver(slot_rates, tolerance, method).rewards(
            self.initial, self.reward, times
        )

    def to_arrays(self) -> dict[str, np.ndarray]:
        """The shareable numeric payload (see ``from_arrays``)."""
        return {
            "src": self.src,
            "dst": self.dst,
            "coefficients": self.coefficients,
            "rate_index": self.rate_index,
            "reward": self.reward,
            "initial": self.initial,
        }

    @classmethod
    def from_arrays(
        cls, layout: CanonicalLayout, arrays: dict[str, np.ndarray]
    ) -> "CoaStructure":
        """Rebuild a structure from its ``to_arrays`` payload."""
        return cls(
            layout=layout,
            n_states=len(arrays["reward"]),
            src=np.asarray(arrays["src"], dtype=np.intp),
            dst=np.asarray(arrays["dst"], dtype=np.intp),
            coefficients=np.asarray(arrays["coefficients"], dtype=float),
            rate_index=np.asarray(arrays["rate_index"], dtype=np.intp),
            reward=np.asarray(arrays["reward"], dtype=float),
            initial=np.asarray(arrays["initial"], dtype=float),
        )


def coa_structure(
    layout: CanonicalLayout, rates: Sequence[tuple[float, float]]
) -> CoaStructure:
    """Explore the canonical net of *layout* once and distil it.

    *rates* only shapes the exploration's rate values (any member's
    rates work — discovery order is rate-independent); the returned
    structure depends solely on the layout, which is what makes it
    shareable across every member of the pattern group.
    """
    net = build_canonical_net(layout, rates)
    graph = explore(net)
    tangible = graph.tangible
    index = {marking: i for i, marking in enumerate(tangible)}
    place_count = 2 * layout.n_slots

    edges: list[tuple[int, int, float, int]] = []
    for i, marking in enumerate(tangible):
        for slot in range(layout.n_slots):
            up_tokens = marking[up_place(_slot_name(slot))]
            down_tokens = marking[f"P{_slot_name(slot)}d"]
            if up_tokens > 0:
                delta = [0] * place_count
                delta[2 * slot] = -1
                delta[2 * slot + 1] = 1
                j = index[marking.with_delta(tuple(delta))]
                edges.append((i, j, float(up_tokens), 2 * slot))
            if down_tokens > 0:
                delta = [0] * place_count
                delta[2 * slot] = 1
                delta[2 * slot + 1] = -1
                j = index[marking.with_delta(tuple(delta))]
                edges.append((i, j, float(down_tokens), 2 * slot + 1))
    edges.sort(key=lambda edge: (edge[0], edge[1]))

    reward_fn = canonical_coa_reward(layout)
    reward = np.fromiter(
        (reward_fn(marking) for marking in tangible),
        dtype=float,
        count=len(tangible),
    )
    return CoaStructure(
        layout=layout,
        n_states=len(tangible),
        src=np.array([e[0] for e in edges], dtype=np.intp),
        dst=np.array([e[1] for e in edges], dtype=np.intp),
        coefficients=np.array([e[2] for e in edges], dtype=float),
        rate_index=np.array([e[3] for e in edges], dtype=np.intp),
        reward=reward,
        initial=np.asarray(graph.initial_distribution, dtype=float),
    )

"""The paper's hierarchical availability model.

Lower layer (:mod:`repro.availability.server`): one SRN per server with
hardware, OS, service and patch-clock sub-models (Fig. 5, guards of
Table III).  :mod:`repro.availability.measures` extracts the steady-state
probabilities (p_up, p_pd, p_prrb) and
:mod:`repro.availability.aggregation` collapses them into the equivalent
patch/recovery rates of Eqs. (1)-(2) (Table V).

Upper layer (:mod:`repro.availability.network`): one two-state chain per
server with marking-dependent rates (Fig. 4); the capacity-oriented
availability (COA) reward of Table VI is evaluated on the joint model.
:mod:`repro.availability.product_form` gives the closed-form solution
used for cross-validation.

Structure sharing (:mod:`repro.availability.grouped`): designs whose
upper-layer SRNs share a transition pattern (the same multiset of
per-tier replica counts) map onto one canonical layout; one reachability
exploration per layout serves every member design bit-identically, and
the distilled numeric :class:`~repro.availability.grouped.CoaStructure`
travels to pool workers over shared memory.
"""

from repro.availability.aggregation import ServiceAggregate, aggregate_service
from repro.availability.coa import coa_reward
from repro.availability.measures import ServerMeasures, compute_measures
from repro.availability.network import NetworkAvailabilityModel
from repro.availability.parameters import (
    APP_VULN_PATCH_MINUTES,
    OS_VULN_PATCH_MINUTES,
    ComponentRates,
    PatchPipeline,
    ServerParameters,
    dns_server_parameters,
    paper_server_parameters,
)
from repro.availability.grouped import (
    CanonicalLayout,
    CoaStructure,
    coa_structure,
    design_layout,
)
from repro.availability.heterogeneous import HeterogeneousAvailabilityModel
from repro.availability.product_form import product_form_coa
from repro.availability.server import build_server_srn, solve_server
from repro.availability.survivability import mean_time_to_outage, transient_coa

__all__ = [
    "ComponentRates",
    "PatchPipeline",
    "ServerParameters",
    "dns_server_parameters",
    "paper_server_parameters",
    "APP_VULN_PATCH_MINUTES",
    "OS_VULN_PATCH_MINUTES",
    "build_server_srn",
    "solve_server",
    "ServerMeasures",
    "compute_measures",
    "ServiceAggregate",
    "aggregate_service",
    "NetworkAvailabilityModel",
    "HeterogeneousAvailabilityModel",
    "CanonicalLayout",
    "CoaStructure",
    "coa_structure",
    "design_layout",
    "coa_reward",
    "product_form_coa",
    "mean_time_to_outage",
    "transient_coa",
]

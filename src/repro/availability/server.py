"""Lower-layer SRN sub-models for one server (the paper's Fig. 5).

Four interacting sub-models share one net:

hardware
    ``Phwup <-> Phwd`` with failure/repair rates.
OS
    up, failed (+ reboot stage), down-due-to-hardware, and the patch
    pipeline stages ready-to-patch (``Posrp``) and patched (``Posp``).
service
    up, failed (+ reboot stage), down-due-to-hardware-or-OS, and the
    patch stages ``Psvcrp`` (patching), ``Psvcp`` (patched, waiting for
    the OS patch) and ``Psvcrrb`` (ready to reboot).
patch clock
    ``Pclock -> Pdue -> Ptrigger -> Pclock``: the monthly interval fires
    ``Tinterval``; ``Tpolicy`` releases the patch only while the service
    is up; ``Treset`` restarts the clock when the OS patch completes.

Guard functions follow Table III.  Two deliberate interpretation choices
are documented here because the paper's figure is not machine-readable:

1. ``gpolicy`` is implemented as ``#Psvcup == 1`` following the text
   ("the immediate transition Tpolicy is fired when the service is up");
   Table III prints ``#Psvcp == 1``, which would deadlock the pipeline.
2. Failure recovery of OS and service is two-stage (repair, then
   reboot-after-failure), matching the two distinct rates of Table IV.

The patch pipeline is strictly sequential — service patch, OS patch
(triggered by ``gosptrig: #Psvcp == 1``), OS reboot, service reboot
(guarded by ``#Posup == 1``) — which reproduces the Table V aggregate
recovery rates.
"""

from __future__ import annotations

from repro.availability.parameters import ServerParameters
from repro.srn import Marking, SrnSolution, StochasticRewardNet, solve

__all__ = [
    "build_server_srn",
    "solve_server",
    "SERVICE_PATCH_DOWN_PLACES",
]

#: Places in which the service is down because of the patch pipeline.
SERVICE_PATCH_DOWN_PLACES = ("Psvcrp", "Psvcp", "Psvcrrb")


def build_server_srn(
    parameters: ServerParameters,
    hardware_can_fail_during_patch: bool = True,
    software_can_fail_during_patch: bool = True,
) -> StochasticRewardNet:
    """Build the four-sub-model SRN for one server.

    Parameters
    ----------
    parameters:
        Rates and patch pipeline (see Table IV).
    hardware_can_fail_during_patch:
        Table III models hardware failure during patch states (the
        ``gosrpd``/``gospd``/``gsvcrpd``/``gsvcrrbd`` guards exist for
        exactly that), so the default is True.  Setting False enforces
        the stricter prose assumption "hardware will not fail during the
        patch period".
    software_can_fail_during_patch:
        If False, the OS cannot fail while the service patch pipeline is
        active (strict reading of "there are no software failures during
        the patch period").
    """
    net = StochasticRewardNet(f"server-{parameters.name}")
    rates = parameters.rates
    patch = parameters.patch

    # -- places ----------------------------------------------------------
    net.add_place("Phwup", tokens=1)
    net.add_place("Phwd")

    net.add_place("Posup", tokens=1)
    net.add_place("Posfd")   # failed, under repair
    net.add_place("Posfrb")  # repaired, rebooting after failure
    net.add_place("Posd")    # down because the hardware is down
    net.add_place("Posrp")   # OS patch in progress
    net.add_place("Posp")    # OS patched, before the merged reboot

    net.add_place("Psvcup", tokens=1)
    net.add_place("Psvcfd")   # failed, under repair
    net.add_place("Psvcfrb")  # repaired, rebooting after failure
    net.add_place("Psvcd")    # down because hardware or OS is down
    net.add_place("Psvcrp")   # application patch in progress
    net.add_place("Psvcp")    # application patched, OS patch pending
    net.add_place("Psvcrrb")  # ready to reboot after the OS patch

    net.add_place("Pclock", tokens=1)
    net.add_place("Pdue")
    net.add_place("Ptrigger")

    # -- guard functions (Table III) ---------------------------------------
    def hw_up(m: Marking) -> bool:
        return m["Phwup"] == 1

    def hw_down(m: Marking) -> bool:
        return m["Phwd"] == 1

    def hw_or_os_down(m: Marking) -> bool:
        return m["Phwd"] == 1 or m["Posfd"] == 1

    def hw_and_os_up(m: Marking) -> bool:
        return m["Phwup"] == 1 and m["Posup"] == 1

    def g_osptrig(m: Marking) -> bool:  # gosptrig
        return m["Psvcp"] == 1

    def g_svcptrig(m: Marking) -> bool:  # gsvcptrig
        return m["Ptrigger"] == 1

    def g_svcrrb(m: Marking) -> bool:  # gsvcrrb
        return m["Posp"] == 1

    def g_interval(m: Marking) -> bool:  # ginterval
        return m["Psvcup"] == 1 or m["Psvcd"] == 1 or m["Psvcfd"] == 1

    def g_policy(m: Marking) -> bool:  # gpolicy (text reading, see module doc)
        return m["Psvcup"] == 1

    def g_reset(m: Marking) -> bool:  # greset
        return m["Posp"] == 1

    def patch_pipeline_idle(m: Marking) -> bool:
        return (
            m["Psvcrp"] == 0
            and m["Psvcp"] == 0
            and m["Psvcrrb"] == 0
            and m["Posrp"] == 0
            and m["Posp"] == 0
        )

    # -- hardware sub-model -------------------------------------------------
    hw_fail_guard = None if hardware_can_fail_during_patch else patch_pipeline_idle
    net.add_timed_transition("Thwd", rate=rates.hardware_failure, guard=hw_fail_guard)
    net.add_arc("Phwup", "Thwd")
    net.add_arc("Thwd", "Phwd")
    net.add_timed_transition("Thwup", rate=rates.hardware_repair)
    net.add_arc("Phwd", "Thwup")
    net.add_arc("Thwup", "Phwup")

    # -- OS sub-model ----------------------------------------------------------
    os_fail_guard = None if software_can_fail_during_patch else patch_pipeline_idle
    net.add_timed_transition("Tosfd", rate=rates.os_failure, guard=os_fail_guard)
    net.add_arc("Posup", "Tosfd")
    net.add_arc("Tosfd", "Posfd")

    net.add_timed_transition("Tosfup", rate=rates.os_repair, guard=hw_up)  # gosfup
    net.add_arc("Posfd", "Tosfup")
    net.add_arc("Tosfup", "Posfrb")
    net.add_timed_transition("Tosfrb", rate=rates.os_reboot, guard=hw_up)
    net.add_arc("Posfrb", "Tosfrb")
    net.add_arc("Tosfrb", "Posup")

    net.add_immediate_transition("Tosd", guard=hw_down)  # gosd
    net.add_arc("Posup", "Tosd")
    net.add_arc("Tosd", "Posd")
    net.add_timed_transition("Tosdrb", rate=rates.os_reboot, guard=hw_up)  # gosdrb
    net.add_arc("Posd", "Tosdrb")
    net.add_arc("Tosdrb", "Posup")

    net.add_immediate_transition("Tosptrig", guard=g_osptrig)  # gosptrig
    net.add_arc("Posup", "Tosptrig")
    net.add_arc("Tosptrig", "Posrp")
    net.add_timed_transition("Tosp", rate=patch.os_patch, guard=hw_up)  # gosp
    net.add_arc("Posrp", "Tosp")
    net.add_arc("Tosp", "Posp")
    net.add_timed_transition(
        "Tosprb", rate=patch.os_patch_reboot, guard=hw_up  # gosprb
    )
    net.add_arc("Posp", "Tosprb")
    net.add_arc("Tosprb", "Posup")

    net.add_immediate_transition("Tosrpd", guard=hw_down)  # gosrpd
    net.add_arc("Posrp", "Tosrpd")
    net.add_arc("Tosrpd", "Posd")
    net.add_immediate_transition("Tospd", guard=hw_down)  # gospd
    net.add_arc("Posp", "Tospd")
    net.add_arc("Tospd", "Posd")

    # -- service sub-model ---------------------------------------------------------
    net.add_timed_transition("Tsvcfd", rate=rates.service_failure)
    net.add_arc("Psvcup", "Tsvcfd")
    net.add_arc("Tsvcfd", "Psvcfd")

    net.add_timed_transition(
        "Tsvcfup", rate=rates.service_repair, guard=hw_and_os_up  # gsvcfup
    )
    net.add_arc("Psvcfd", "Tsvcfup")
    net.add_arc("Tsvcfup", "Psvcfrb")
    net.add_timed_transition("Tsvcfrb", rate=rates.service_reboot, guard=hw_and_os_up)
    net.add_arc("Psvcfrb", "Tsvcfrb")
    net.add_arc("Tsvcfrb", "Psvcup")

    net.add_immediate_transition("Tsvcd", guard=hw_or_os_down)  # gsvcd
    net.add_arc("Psvcup", "Tsvcd")
    net.add_arc("Tsvcd", "Psvcd")
    net.add_timed_transition(
        "Tsvcdrb", rate=rates.service_reboot, guard=hw_and_os_up  # gsvcdrb
    )
    net.add_arc("Psvcd", "Tsvcdrb")
    net.add_arc("Tsvcdrb", "Psvcup")

    net.add_immediate_transition("Tsvcptrig", guard=g_svcptrig)  # gsvcptrig
    net.add_arc("Psvcup", "Tsvcptrig")
    net.add_arc("Tsvcptrig", "Psvcrp")
    net.add_timed_transition(
        "Tsvcp", rate=patch.service_patch, guard=hw_and_os_up  # gsvcp
    )
    net.add_arc("Psvcrp", "Tsvcp")
    net.add_arc("Tsvcp", "Psvcp")

    net.add_immediate_transition("Tsvcrrb", guard=g_svcrrb)  # gsvcrrb
    net.add_arc("Psvcp", "Tsvcrrb")
    net.add_arc("Tsvcrrb", "Psvcrrb")
    net.add_timed_transition(
        "Tsvcprb", rate=patch.service_patch_reboot, guard=hw_and_os_up  # gsvcprb
    )
    net.add_arc("Psvcrrb", "Tsvcprb")
    net.add_arc("Tsvcprb", "Psvcup")

    net.add_immediate_transition("Tsvcrpd", guard=hw_or_os_down)  # gsvcrpd
    net.add_arc("Psvcrp", "Tsvcrpd")
    net.add_arc("Tsvcrpd", "Psvcd")
    net.add_immediate_transition("Tsvcrrbd", guard=hw_or_os_down)  # gsvcrrbd
    net.add_arc("Psvcrrb", "Tsvcrrbd")
    net.add_arc("Tsvcrrbd", "Psvcd")

    # -- patch clock --------------------------------------------------------------
    net.add_timed_transition(
        "Tinterval", rate=parameters.patch_clock_rate, guard=g_interval  # ginterval
    )
    net.add_arc("Pclock", "Tinterval")
    net.add_arc("Tinterval", "Pdue")
    net.add_immediate_transition("Tpolicy", guard=g_policy)  # gpolicy
    net.add_arc("Pdue", "Tpolicy")
    net.add_arc("Tpolicy", "Ptrigger")
    net.add_immediate_transition("Treset", guard=g_reset)  # greset
    net.add_arc("Ptrigger", "Treset")
    net.add_arc("Treset", "Pclock")

    return net


def solve_server(
    parameters: ServerParameters,
    hardware_can_fail_during_patch: bool = True,
    software_can_fail_during_patch: bool = True,
) -> SrnSolution:
    """Build and solve the server SRN for its steady state."""
    net = build_server_srn(
        parameters,
        hardware_can_fail_during_patch=hardware_can_fail_during_patch,
        software_can_fail_during_patch=software_can_fail_during_patch,
    )
    return solve(net)

"""Upper-layer network availability model (the paper's Fig. 4).

Each service tier becomes a pair of places ``P<svc>up`` / ``P<svc>d``
holding as many tokens as the tier has servers.  The patch transition
``T<svc>d`` fires with the marking-dependent rate
``lambda_eq * #P<svc>up`` (each running server is patched independently
at the aggregated rate) and the recovery transition ``T<svc>up`` with
``mu_eq * #P<svc>d``.  Solving the joint SRN and weighting markings with
the Table VI reward yields the capacity-oriented availability.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro._validation import check_positive_int
from repro.availability.aggregation import ServiceAggregate
from repro.availability.coa import coa_reward, up_place
from repro.errors import EvaluationError
from repro.srn import SrnSolution, StochasticRewardNet, solve

__all__ = ["NetworkAvailabilityModel"]


class NetworkAvailabilityModel:
    """Joint availability model of a redundancy design.

    Parameters
    ----------
    capacities:
        Service name -> number of deployed servers.
    aggregates:
        Service name -> :class:`ServiceAggregate` (or any object with
        ``patch_rate`` and ``recovery_rate`` attributes) from the lower
        layer.

    Examples
    --------
    >>> from repro.availability import ServiceAggregate, ServerMeasures
    >>> # (aggregates normally come from aggregate_service)
    """

    def __init__(
        self,
        capacities: Mapping[str, int],
        aggregates: Mapping[str, ServiceAggregate],
    ) -> None:
        if not capacities:
            raise EvaluationError("a network needs at least one service")
        missing = [svc for svc in capacities if svc not in aggregates]
        if missing:
            raise EvaluationError(f"no aggregate rates for services {missing}")
        self._capacities = {
            svc: check_positive_int(count, f"capacity of {svc!r}")
            for svc, count in capacities.items()
        }
        self._aggregates = dict(aggregates)
        self._solution: SrnSolution | None = None
        # Built once so repeated COA calls hit the solution's LRU
        # reward-vector cache (keyed on callable identity).
        self._coa_reward = coa_reward(self._capacities)

    # -- model ------------------------------------------------------------

    @property
    def capacities(self) -> dict[str, int]:
        """Service name -> server count."""
        return dict(self._capacities)

    def build_srn(self) -> StochasticRewardNet:
        """Construct the upper-layer SRN."""
        net = StochasticRewardNet("network-availability")
        for service, count in self._capacities.items():
            aggregate = self._aggregates[service]
            place_up = up_place(service)
            place_down = f"P{service}d"
            net.add_place(place_up, tokens=count)
            net.add_place(place_down)

            def patch_rate(m, _place=place_up, _rate=aggregate.patch_rate):
                return _rate * m[_place]

            def repair_rate(m, _place=place_down, _rate=aggregate.recovery_rate):
                return _rate * m[_place]

            down_name = f"T{service}d"
            net.add_timed_transition(down_name, rate=patch_rate)
            net.add_arc(place_up, down_name)
            net.add_arc(down_name, place_down)
            up_name = f"T{service}up"
            net.add_timed_transition(up_name, rate=repair_rate)
            net.add_arc(place_down, up_name)
            net.add_arc(up_name, place_up)
        return net

    def solve(self) -> SrnSolution:
        """Solve (and cache) the steady state of the network SRN."""
        if self._solution is None:
            self._solution = solve(self.build_srn())
        return self._solution

    # -- measures ------------------------------------------------------------

    def capacity_oriented_availability(self) -> float:
        """COA: the expected Table VI reward at steady state."""
        solution = self.solve()
        return solution.expected_reward(self._coa_reward)

    def transient_coa(self, times) -> np.ndarray:
        """Expected COA at each time, starting from the all-up marking.

        One batched uniformisation pass serves the whole time grid.
        """
        return self.solve().transient_reward(self._coa_reward, times)

    def system_availability(self) -> float:
        """P(every service has at least one server up)."""
        solution = self.solve()
        places = {svc: up_place(svc) for svc in self._capacities}
        return solution.probability_of(
            lambda m: all(m[place] >= 1 for place in places.values())
        )

    def expected_running_servers(self) -> float:
        """Expected number of servers that are up."""
        solution = self.solve()
        return float(
            sum(
                solution.expected_tokens(up_place(svc))
                for svc in self._capacities
            )
        )

    def service_up_distribution(self, service: str) -> dict[int, float]:
        """Steady-state distribution of the number of up servers of one tier."""
        if service not in self._capacities:
            raise EvaluationError(f"unknown service {service!r}")
        solution = self.solve()
        place = up_place(service)
        places = solution.markings[0].places()
        counts = solution.token_matrix()[:, places.index(place)].astype(int)
        mass = np.bincount(
            counts,
            weights=solution.probabilities,
            minlength=self._capacities[service] + 1,
        )
        return {count: float(probability) for count, probability in enumerate(mass)}

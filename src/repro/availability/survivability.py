"""Survivability extensions of the network availability model.

Two questions beyond the paper's steady-state COA:

- **time to first outage**: starting from all servers up, the expected
  time until some service tier first has zero running servers (the
  system-down condition of the Table VI reward).  Computed by making the
  outage markings absorbing and solving for the mean time to absorption.
- **transient COA**: the expected Table VI reward as a function of time
  from a given starting marking (uniformisation), showing how quickly
  the patch process erodes and restores capacity.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.availability.coa import up_place
from repro.availability.network import NetworkAvailabilityModel
from repro.ctmc import make_absorbing, mean_time_to_absorption
from repro.errors import EvaluationError
from repro.srn import Marking

__all__ = ["mean_time_to_outage", "transient_coa"]


def _is_outage(marking: Marking, services: Sequence[str]) -> bool:
    return any(marking[up_place(service)] == 0 for service in services)


def mean_time_to_outage(model: NetworkAvailabilityModel) -> float:
    """Expected hours from all-up until some tier first loses all servers.

    Patch downs are short and independent, so for redundant designs this
    is dominated by the rare coincidence of every replica of one tier
    being patched at once.
    """
    solution = model.solve()
    services = list(model.capacities)
    chain = make_absorbing(
        solution.chain, lambda marking: _is_outage(marking, services)
    )
    all_up = next(
        (
            marking
            for marking in solution.markings
            if all(
                marking[up_place(service)] == model.capacities[service]
                for service in services
            )
        ),
        None,
    )
    if all_up is None:
        raise EvaluationError("no all-up marking found in the state space")
    return float(mean_time_to_absorption(chain, start=all_up))


def transient_coa(model, times: Sequence[float]) -> np.ndarray:
    """Expected COA at each time, starting from the all-up marking.

    Accepts either availability model kind
    (:class:`~repro.availability.network.NetworkAvailabilityModel` or
    :class:`~repro.availability.heterogeneous.HeterogeneousAvailabilityModel`);
    both serve the whole time grid from one uniformisation pass.
    """
    if any(t < 0 for t in times):
        raise EvaluationError("times must be non-negative")
    return model.transient_coa(times)

"""Survivability extensions of the network availability model.

Two questions beyond the paper's steady-state COA:

- **time to first outage**: starting from all servers up, the expected
  time until some service tier first has zero running servers (the
  system-down condition of the Table VI reward).  Computed by making the
  outage markings absorbing and solving for the mean time to absorption.
- **transient COA**: the expected Table VI reward as a function of time
  from a given starting marking (uniformisation), showing how quickly
  the patch process erodes and restores capacity.

Both accept either availability model kind: the homogeneous
:class:`~repro.availability.network.NetworkAvailabilityModel` (one group
per tier) and the variant-aware
:class:`~repro.availability.heterogeneous.HeterogeneousAvailabilityModel`
(a tier is down only when *every* variant group of the tier has zero
running servers) — the heterogeneous model already exposes its solved
chain, so the absorbing-state analysis is identical.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.availability.coa import up_place
from repro.availability.heterogeneous import HeterogeneousAvailabilityModel
from repro.availability.network import NetworkAvailabilityModel
from repro.ctmc import make_absorbing, mean_time_to_absorption
from repro.errors import EvaluationError
from repro.srn import Marking

__all__ = ["mean_time_to_outage", "transient_coa"]


def _tier_groups(
    model: NetworkAvailabilityModel | HeterogeneousAvailabilityModel,
) -> dict[str, Mapping[str, int]]:
    """Tier name -> {group name -> capacity}, for either model kind."""
    if isinstance(model, HeterogeneousAvailabilityModel):
        return model.tiers
    if isinstance(model, NetworkAvailabilityModel):
        return {svc: {svc: count} for svc, count in model.capacities.items()}
    raise EvaluationError(
        f"unknown availability model kind {type(model).__name__!r}"
    )


def _is_outage(
    marking: Marking, tiers: Mapping[str, Mapping[str, int]]
) -> bool:
    return any(
        sum(marking[up_place(group)] for group in groups) == 0
        for groups in tiers.values()
    )


def mean_time_to_outage(
    model: NetworkAvailabilityModel | HeterogeneousAvailabilityModel,
) -> float:
    """Expected hours from all-up until some tier first loses all servers.

    Patch downs are short and independent, so for redundant designs this
    is dominated by the rare coincidence of every replica of one tier
    being patched at once.  For a heterogeneous model a tier survives
    while *any* of its variant groups keeps a server up.
    """
    tiers = _tier_groups(model)
    solution = model.solve()
    chain = make_absorbing(
        solution.chain, lambda marking: _is_outage(marking, tiers)
    )
    all_up = next(
        (
            marking
            for marking in solution.markings
            if all(
                marking[up_place(group)] == capacity
                for groups in tiers.values()
                for group, capacity in groups.items()
            )
        ),
        None,
    )
    if all_up is None:
        raise EvaluationError("no all-up marking found in the state space")
    return float(mean_time_to_absorption(chain, start=all_up))


def transient_coa(model, times: Sequence[float]) -> np.ndarray:
    """Expected COA at each time, starting from the all-up marking.

    Accepts either availability model kind
    (:class:`~repro.availability.network.NetworkAvailabilityModel` or
    :class:`~repro.availability.heterogeneous.HeterogeneousAvailabilityModel`);
    both serve the whole time grid from one uniformisation pass.
    """
    if any(t < 0 for t in times):
        raise EvaluationError("times must be non-negative")
    return model.transient_coa(times)

"""Availability of heterogeneous (diverse-software) redundancy designs.

The paper evaluates identical replicas and lists heterogeneous
redundancy as future work.  Here each service tier may mix *variants*
(distinct software stacks with their own patch pipelines): the tier is
up while any replica of any variant runs, and each variant group gets
its own marking-dependent patch/recovery transitions because different
stacks have different aggregated rates.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro._validation import check_positive_int
from repro.availability.aggregation import ServiceAggregate
from repro.availability.coa import up_place
from repro.errors import EvaluationError
from repro.srn import Marking, SrnSolution, StochasticRewardNet, solve

__all__ = ["HeterogeneousAvailabilityModel"]


class HeterogeneousAvailabilityModel:
    """Joint availability model with per-variant server groups.

    Parameters
    ----------
    tiers:
        Role name -> {variant name -> replica count}.  A homogeneous tier
        is simply a single-variant mapping.
    aggregates:
        Variant name -> :class:`ServiceAggregate` (lower-layer results).

    Examples
    --------
    >>> tiers = {"web": {"web_apache": 1, "web_nginx": 1}, "db": {"db": 1}}
    """

    def __init__(
        self,
        tiers: Mapping[str, Mapping[str, int]],
        aggregates: Mapping[str, ServiceAggregate],
    ) -> None:
        if not tiers:
            raise EvaluationError("a network needs at least one tier")
        self._tiers: dict[str, dict[str, int]] = {}
        seen_variants: set[str] = set()
        for role, variants in tiers.items():
            if not variants:
                raise EvaluationError(f"tier {role!r} has no variants")
            for variant, count in variants.items():
                check_positive_int(count, f"count of {variant!r}")
                if variant in seen_variants:
                    raise EvaluationError(
                        f"variant {variant!r} appears in more than one tier"
                    )
                seen_variants.add(variant)
                if variant not in aggregates:
                    raise EvaluationError(f"no aggregate rates for {variant!r}")
            self._tiers[role] = dict(variants)
        self._aggregates = dict(aggregates)
        self._solution: SrnSolution | None = None

    # -- model -------------------------------------------------------------

    @property
    def tiers(self) -> dict[str, dict[str, int]]:
        """Role -> variant -> count."""
        return {role: dict(variants) for role, variants in self._tiers.items()}

    @property
    def total_servers(self) -> int:
        """Total deployed servers across all variants."""
        return sum(
            count for variants in self._tiers.values() for count in variants.values()
        )

    def build_srn(self) -> StochasticRewardNet:
        """One up/down place pair and transition pair per variant group.

        Place and transition names follow the homogeneous
        :class:`~repro.availability.network.NetworkAvailabilityModel`
        convention (``P<variant>up`` via :func:`up_place`), so a
        single-variant-per-role design produces a net that is
        structurally identical to — and solves bit-identically with —
        the homogeneous model of the same counts.
        """
        net = StochasticRewardNet("heterogeneous-availability")
        for variants in self._tiers.values():
            for variant, count in variants.items():
                aggregate = self._aggregates[variant]
                place_up = up_place(variant)
                place_down = f"P{variant}d"
                net.add_place(place_up, tokens=count)
                net.add_place(place_down)

                def patch(m, _p=place_up, _r=aggregate.patch_rate):
                    return _r * m[_p]

                def repair(m, _p=place_down, _r=aggregate.recovery_rate):
                    return _r * m[_p]

                net.add_timed_transition(f"T{variant}d", rate=patch)
                net.add_arc(place_up, f"T{variant}d")
                net.add_arc(f"T{variant}d", place_down)
                net.add_timed_transition(f"T{variant}up", rate=repair)
                net.add_arc(place_down, f"T{variant}up")
                net.add_arc(f"T{variant}up", place_up)
        return net

    def solve(self) -> SrnSolution:
        """Solve (and cache) the steady state."""
        if self._solution is None:
            self._solution = solve(self.build_srn())
        return self._solution

    # -- measures ------------------------------------------------------------

    def _reward(self, marking: Marking) -> float:
        running = 0
        for variants in self._tiers.values():
            tier_up = sum(marking[up_place(v)] for v in variants)
            if tier_up == 0:
                return 0.0
            running += tier_up
        return running / self.total_servers

    def capacity_oriented_availability(self) -> float:
        """COA with the tier-up condition over all variants of a role."""
        return self.solve().expected_reward(self._reward)

    def transient_coa(self, times):
        """Expected COA at each time, starting from the all-up marking.

        One batched uniformisation pass serves the whole time grid,
        matching :meth:`NetworkAvailabilityModel.transient_coa` so the
        timeline pipeline treats both model kinds identically.
        """
        return self.solve().transient_reward(self._reward, times)

    def system_availability(self) -> float:
        """P(every tier has at least one running server of any variant)."""
        solution = self.solve()

        def all_tiers_up(marking: Marking) -> bool:
            return all(
                sum(marking[up_place(v)] for v in variants) >= 1
                for variants in self._tiers.values()
            )

        return solution.probability_of(all_tiers_up)

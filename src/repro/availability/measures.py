"""Steady-state measures extracted from the server SRN.

These are the probabilities the paper feeds into Eqs. (1)-(2):
``p_svcup`` (service running), ``p_svcpd`` (service down due to patch:
token in any patch-pipeline place) and ``p_svcprrb`` (final
service-reboot stage enabled, i.e. token in ``Psvcrrb`` with hardware
and OS up).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.srn import Marking, SrnSolution
from repro.availability.server import SERVICE_PATCH_DOWN_PLACES

__all__ = ["ServerMeasures", "compute_measures"]


@dataclass(frozen=True)
class ServerMeasures:
    """Steady-state probabilities of one server's SRN."""

    service_up: float
    patch_down: float
    patch_ready_to_reboot: float
    service_failed: float
    hardware_down: float
    os_not_up: float

    @property
    def availability(self) -> float:
        """Plain service availability, P(service up)."""
        return self.service_up


def _in_patch_pipeline(marking: Marking) -> bool:
    return any(marking[place] == 1 for place in SERVICE_PATCH_DOWN_PLACES)


def compute_measures(solution: SrnSolution) -> ServerMeasures:
    """Extract :class:`ServerMeasures` from a solved server SRN."""
    return ServerMeasures(
        service_up=solution.probability_of(lambda m: m["Psvcup"] == 1),
        patch_down=solution.probability_of(_in_patch_pipeline),
        patch_ready_to_reboot=solution.probability_of(
            lambda m: m["Psvcrrb"] == 1 and m["Posup"] == 1 and m["Phwup"] == 1
        ),
        service_failed=solution.probability_of(lambda m: m["Psvcfd"] == 1),
        hardware_down=solution.probability_of(lambda m: m["Phwd"] == 1),
        os_not_up=solution.probability_of(lambda m: m["Posup"] == 0),
    )

"""Eqs. (1)-(2): collapse a server SRN into equivalent patch/repair rates.

The upper-layer network model sees each server as a two-state chain:

    lambda_eq = tau_p                       (Eq. 1)
    mu_eq     = beta_svc * p_prrb / p_pd    (Eq. 2)

``lambda_eq`` is exactly the patch-clock rate because every up-state
leaves for the pipeline at rate tau_p.  ``mu_eq`` is the aggregate exit
rate of the patch-down macro-state: only its final stage (service ready
to reboot, hardware and OS up) returns to up, at the service reboot rate.

Table V of the paper is this module applied to the four server roles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.availability.measures import ServerMeasures, compute_measures
from repro.availability.parameters import ServerParameters
from repro.availability.server import solve_server
from repro.errors import EvaluationError
from repro.srn import SrnSolution

__all__ = ["ServiceAggregate", "aggregate_service", "aggregate_from_solution"]


@dataclass(frozen=True)
class ServiceAggregate:
    """The Table V row for one service."""

    name: str
    patch_rate: float
    recovery_rate: float
    measures: ServerMeasures

    @property
    def mttp_hours(self) -> float:
        """Mean time to patch, ``1 / patch_rate`` (720 h in the paper)."""
        return 1.0 / self.patch_rate

    @property
    def mttr_hours(self) -> float:
        """Mean time to recovery from a patch, ``1 / recovery_rate``."""
        return 1.0 / self.recovery_rate

    @property
    def equivalent_availability(self) -> float:
        """Availability of the equivalent two-state chain."""
        return self.recovery_rate / (self.patch_rate + self.recovery_rate)


def aggregate_service(
    parameters: ServerParameters,
    hardware_can_fail_during_patch: bool = True,
    software_can_fail_during_patch: bool = True,
) -> ServiceAggregate:
    """Solve the server SRN for *parameters* and apply Eqs. (1)-(2)."""
    solution = solve_server(
        parameters,
        hardware_can_fail_during_patch=hardware_can_fail_during_patch,
        software_can_fail_during_patch=software_can_fail_during_patch,
    )
    return aggregate_from_solution(parameters, solution)


def aggregate_from_solution(
    parameters: ServerParameters, solution: SrnSolution
) -> ServiceAggregate:
    """Apply Eqs. (1)-(2) to an already-solved server SRN."""
    measures = compute_measures(solution)
    if measures.patch_down <= 0.0:
        raise EvaluationError(
            f"server {parameters.name!r} never enters the patch pipeline; "
            "check the patch clock guard"
        )
    if measures.patch_ready_to_reboot <= 0.0:
        raise EvaluationError(
            f"server {parameters.name!r} never reaches the ready-to-reboot "
            "stage; the patch pipeline is broken"
        )
    patch_rate = parameters.patch_clock_rate  # Eq. (1)
    recovery_rate = (
        parameters.patch.service_patch_reboot
        * measures.patch_ready_to_reboot
        / measures.patch_down
    )  # Eq. (2)
    return ServiceAggregate(
        name=parameters.name,
        patch_rate=patch_rate,
        recovery_rate=recovery_rate,
        measures=measures,
    )

"""Traversal utilities for :class:`repro.graphs.DiGraph`."""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Iterable

from repro.errors import GraphError
from repro.graphs.digraph import DiGraph

__all__ = [
    "bfs_order",
    "dfs_order",
    "reachable_from",
    "reaches",
    "has_cycle",
    "topological_sort",
]

Node = Hashable


def bfs_order(graph: DiGraph, source: Node) -> list[Node]:
    """Nodes reachable from *source* in breadth-first order (source first)."""
    if not graph.has_node(source):
        raise GraphError(f"unknown node {source!r}")
    seen = {source}
    order = [source]
    queue: deque[Node] = deque([source])
    while queue:
        node = queue.popleft()
        for nxt in graph.successors(node):
            if nxt not in seen:
                seen.add(nxt)
                order.append(nxt)
                queue.append(nxt)
    return order


def dfs_order(graph: DiGraph, source: Node) -> list[Node]:
    """Nodes reachable from *source* in depth-first preorder."""
    if not graph.has_node(source):
        raise GraphError(f"unknown node {source!r}")
    seen: set[Node] = set()
    order: list[Node] = []
    stack = [source]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        order.append(node)
        # Reverse so the first successor is visited first, as in recursion.
        stack.extend(reversed(graph.successors(node)))
    return order


def reachable_from(graph: DiGraph, sources: Iterable[Node] | Node) -> set[Node]:
    """Set of nodes reachable from any node in *sources* (sources included)."""
    if isinstance(sources, (str, bytes)) or not isinstance(sources, Iterable):
        sources = [sources]
    seen: set[Node] = set()
    stack = list(sources)
    for node in stack:
        if not graph.has_node(node):
            raise GraphError(f"unknown node {node!r}")
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        stack.extend(graph.successors(node))
    return seen


def reaches(graph: DiGraph, source: Node, target: Node) -> bool:
    """Whether a directed path exists from *source* to *target*."""
    return target in reachable_from(graph, source)


def has_cycle(graph: DiGraph) -> bool:
    """Whether the graph contains a directed cycle."""
    try:
        topological_sort(graph)
    except GraphError:
        return True
    return False


def topological_sort(graph: DiGraph) -> list[Node]:
    """Topological ordering of the nodes (Kahn's algorithm).

    Raises
    ------
    GraphError
        If the graph contains a directed cycle.
    """
    in_degree = {node: graph.in_degree(node) for node in graph.nodes()}
    ready = deque(node for node, degree in in_degree.items() if degree == 0)
    order: list[Node] = []
    while ready:
        node = ready.popleft()
        order.append(node)
        for nxt in graph.successors(node):
            in_degree[nxt] -= 1
            if in_degree[nxt] == 0:
                ready.append(nxt)
    if len(order) != graph.number_of_nodes():
        raise GraphError("graph contains a directed cycle")
    return order

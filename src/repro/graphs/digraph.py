"""A minimal directed graph with attributes and deterministic ordering."""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from typing import Any

from repro.errors import GraphError

__all__ = ["DiGraph"]

Node = Hashable


class DiGraph:
    """Directed graph with node and edge attributes.

    Nodes may be any hashable value.  Iteration over nodes, successors and
    predecessors follows insertion order, which keeps every downstream
    analysis (path enumeration, state-space generation) deterministic.

    Examples
    --------
    >>> g = DiGraph()
    >>> g.add_edge("a", "b", weight=2.0)
    >>> sorted(g.nodes())
    ['a', 'b']
    >>> g.has_edge("a", "b")
    True
    """

    def __init__(self) -> None:
        self._node_attrs: dict[Node, dict[str, Any]] = {}
        self._succ: dict[Node, dict[Node, dict[str, Any]]] = {}
        self._pred: dict[Node, dict[Node, dict[str, Any]]] = {}

    # -- construction -----------------------------------------------------

    def add_node(self, node: Node, **attrs: Any) -> None:
        """Add *node* (idempotent); merge *attrs* into its attribute dict."""
        if node not in self._node_attrs:
            self._node_attrs[node] = {}
            self._succ[node] = {}
            self._pred[node] = {}
        self._node_attrs[node].update(attrs)

    def add_nodes(self, nodes: Iterable[Node]) -> None:
        """Add every node in *nodes*."""
        for node in nodes:
            self.add_node(node)

    def add_edge(self, src: Node, dst: Node, **attrs: Any) -> None:
        """Add the edge *src* -> *dst*, creating missing endpoints."""
        self.add_node(src)
        self.add_node(dst)
        if dst not in self._succ[src]:
            self._succ[src][dst] = {}
            self._pred[dst][src] = {}
        self._succ[src][dst].update(attrs)
        self._pred[dst][src] = self._succ[src][dst]

    def add_edges(self, edges: Iterable[tuple[Node, Node]]) -> None:
        """Add every (src, dst) pair in *edges*."""
        for src, dst in edges:
            self.add_edge(src, dst)

    def remove_node(self, node: Node) -> None:
        """Remove *node* and every incident edge."""
        self._require_node(node)
        for dst in list(self._succ[node]):
            del self._pred[dst][node]
        for src in list(self._pred[node]):
            del self._succ[src][node]
        del self._succ[node]
        del self._pred[node]
        del self._node_attrs[node]

    def remove_edge(self, src: Node, dst: Node) -> None:
        """Remove the edge *src* -> *dst*."""
        if not self.has_edge(src, dst):
            raise GraphError(f"no edge {src!r} -> {dst!r}")
        del self._succ[src][dst]
        del self._pred[dst][src]

    # -- queries -----------------------------------------------------------

    def __contains__(self, node: Node) -> bool:
        return node in self._node_attrs

    def __len__(self) -> int:
        return len(self._node_attrs)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._node_attrs)

    def nodes(self) -> list[Node]:
        """All nodes in insertion order."""
        return list(self._node_attrs)

    def edges(self) -> list[tuple[Node, Node]]:
        """All edges as (src, dst) pairs in insertion order."""
        return [(src, dst) for src in self._succ for dst in self._succ[src]]

    def number_of_nodes(self) -> int:
        """Total node count."""
        return len(self._node_attrs)

    def number_of_edges(self) -> int:
        """Total edge count."""
        return sum(len(dsts) for dsts in self._succ.values())

    def has_node(self, node: Node) -> bool:
        """Whether *node* is present."""
        return node in self._node_attrs

    def has_edge(self, src: Node, dst: Node) -> bool:
        """Whether the edge *src* -> *dst* is present."""
        return src in self._succ and dst in self._succ[src]

    def successors(self, node: Node) -> list[Node]:
        """Out-neighbours of *node* in insertion order."""
        self._require_node(node)
        return list(self._succ[node])

    def predecessors(self, node: Node) -> list[Node]:
        """In-neighbours of *node* in insertion order."""
        self._require_node(node)
        return list(self._pred[node])

    def out_degree(self, node: Node) -> int:
        """Number of outgoing edges of *node*."""
        self._require_node(node)
        return len(self._succ[node])

    def in_degree(self, node: Node) -> int:
        """Number of incoming edges of *node*."""
        self._require_node(node)
        return len(self._pred[node])

    def node_attrs(self, node: Node) -> dict[str, Any]:
        """Attribute dict of *node* (live reference)."""
        self._require_node(node)
        return self._node_attrs[node]

    def edge_attrs(self, src: Node, dst: Node) -> dict[str, Any]:
        """Attribute dict of the edge *src* -> *dst* (live reference)."""
        if not self.has_edge(src, dst):
            raise GraphError(f"no edge {src!r} -> {dst!r}")
        return self._succ[src][dst]

    # -- derived graphs ----------------------------------------------------

    def copy(self) -> "DiGraph":
        """Deep-ish copy: structure is copied, attribute dicts are shallow-copied."""
        clone = DiGraph()
        for node, attrs in self._node_attrs.items():
            clone.add_node(node, **attrs)
        for src, dst in self.edges():
            clone.add_edge(src, dst, **self._succ[src][dst])
        return clone

    def subgraph(self, keep: Iterable[Node]) -> "DiGraph":
        """Induced subgraph on the nodes in *keep*."""
        keep_set = set(keep)
        sub = DiGraph()
        for node in self._node_attrs:
            if node in keep_set:
                sub.add_node(node, **self._node_attrs[node])
        for src, dst in self.edges():
            if src in keep_set and dst in keep_set:
                sub.add_edge(src, dst, **self._succ[src][dst])
        return sub

    def reversed(self) -> "DiGraph":
        """Graph with every edge direction flipped."""
        rev = DiGraph()
        for node, attrs in self._node_attrs.items():
            rev.add_node(node, **attrs)
        for src, dst in self.edges():
            rev.add_edge(dst, src, **self._succ[src][dst])
        return rev

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"DiGraph(nodes={self.number_of_nodes()}, "
            f"edges={self.number_of_edges()})"
        )

    # -- internal ----------------------------------------------------------

    def _require_node(self, node: Node) -> None:
        if node not in self._node_attrs:
            raise GraphError(f"unknown node {node!r}")

"""Lightweight directed-graph substrate.

The attack-graph layer of the HARM and the reachability analysis of the
SRN engine both need a small, dependency-free directed graph with
deterministic iteration order.  :class:`DiGraph` stores nodes in insertion
order and supports node/edge attributes; :mod:`repro.graphs.paths` adds
simple-path enumeration, and :mod:`repro.graphs.traversal` adds
BFS/DFS/reachability/topological utilities.
"""

from repro.graphs.digraph import DiGraph
from repro.graphs.paths import all_simple_paths, count_simple_paths
from repro.graphs.traversal import (
    bfs_order,
    dfs_order,
    has_cycle,
    reachable_from,
    reaches,
    topological_sort,
)

__all__ = [
    "DiGraph",
    "all_simple_paths",
    "count_simple_paths",
    "bfs_order",
    "dfs_order",
    "has_cycle",
    "reachable_from",
    "reaches",
    "topological_sort",
]

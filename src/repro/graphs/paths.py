"""Simple-path enumeration between node sets.

The HARM upper layer enumerates every loop-free attack path from the
attacker to a target; this module provides the generic machinery.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator

from repro.errors import GraphError
from repro.graphs.digraph import DiGraph

__all__ = ["all_simple_paths", "count_simple_paths"]

Node = Hashable


def all_simple_paths(
    graph: DiGraph,
    source: Node,
    targets: Iterable[Node] | Node,
    max_length: int | None = None,
) -> Iterator[list[Node]]:
    """Yield every simple (loop-free) path from *source* to any target.

    Paths are yielded in depth-first order following the graph's insertion
    order, so results are deterministic.  *max_length* bounds the number of
    edges in a path (``None`` means unbounded).

    Raises
    ------
    GraphError
        If *source* or any target is not in the graph.
    """
    if isinstance(targets, (str, bytes)) or not isinstance(targets, Iterable):
        targets = [targets]
    target_set = set(targets)
    if not graph.has_node(source):
        raise GraphError(f"unknown source {source!r}")
    for target in target_set:
        if not graph.has_node(target):
            raise GraphError(f"unknown target {target!r}")
    if max_length is not None and max_length < 0:
        raise GraphError(f"max_length must be >= 0, got {max_length}")

    path = [source]
    on_path = {source}

    def _extend() -> Iterator[list[Node]]:
        node = path[-1]
        if node in target_set:
            yield list(path)
        if max_length is not None and len(path) - 1 >= max_length:
            return
        for nxt in graph.successors(node):
            if nxt in on_path:
                continue
            path.append(nxt)
            on_path.add(nxt)
            yield from _extend()
            path.pop()
            on_path.remove(nxt)

    yield from _extend()


def count_simple_paths(
    graph: DiGraph,
    source: Node,
    targets: Iterable[Node] | Node,
    max_length: int | None = None,
) -> int:
    """Number of simple paths from *source* to any node in *targets*."""
    return sum(1 for _ in all_simple_paths(graph, source, targets, max_length))

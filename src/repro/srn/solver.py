"""High-level SRN solution facade (the SPNP "solve and measure" step).

Reward evaluation is vectorised: per-marking reward values are computed
once per reward function, cached in a per-solution LRU keyed on the
callable, and reduced against the probability vector with a numpy dot
product.  The original per-marking Python loop survives as
:meth:`SrnSolution.expected_reward_loop` — the reference implementation
the parity tests and benchmarks compare against.

:func:`solve_family` solves a family of structurally identical nets
(same places, transitions and arcs; only rate values differ) while
exploring the reachability graph once and batching the steady-state
solves over the shared transition pattern.  :func:`transient_family` is
its transient counterpart: one reachability exploration, one reward
evaluation over the shared tangible markings, and one
:class:`~repro.ctmc.transient.BatchTransientSolver` pass per net that
serves every time point and reward function at once.  Unlike the
steady-state path it accepts absorbing chains — patch-completion models
are naturally absorbing.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.ctmc import Ctmc, steady_state
from repro.ctmc.steady import BatchSteadySolver
from repro.ctmc.transient import BatchTransientSolver
from repro.errors import SrnError
from repro.srn.marking import Marking
from repro.srn.net import StochasticRewardNet, TransitionKind
from repro.srn.reachability import DEFAULT_MAX_MARKINGS, ReachabilityGraph, explore

__all__ = [
    "SrnSolution",
    "solve",
    "solve_family",
    "solve_families",
    "transient_family",
    "transient_families",
    "family_signature",
]

#: A reward function over markings (SPNP-style reward definition).
RewardFn = Callable[[Marking], float]

#: Per-solution cap on cached reward vectors.
_REWARD_CACHE_SIZE = 64


@dataclass
class SrnSolution:
    """Steady-state solution of an SRN with reward-evaluation helpers."""

    graph: ReachabilityGraph
    chain: Ctmc
    probabilities: np.ndarray
    _reward_cache: OrderedDict = field(default_factory=OrderedDict, repr=False)
    _token_matrix: np.ndarray | None = field(default=None, repr=False)
    _transient_solver: BatchTransientSolver | None = field(default=None, repr=False)

    @property
    def markings(self) -> tuple[Marking, ...]:
        """Tangible markings, aligned with :attr:`probabilities`."""
        return self.graph.tangible

    def reward_vector(self, reward: RewardFn) -> np.ndarray:
        """Per-marking values of *reward*, aligned with :attr:`markings`.

        Vectors are cached (LRU, keyed on the reward callable), so
        repeated measures over the same reward reduce to one dot product.
        The reward is evaluated on *every* tangible marking — including
        transient ones with zero steady-state probability — because the
        same vector feeds :meth:`transient_reward`.
        """
        return self._cached_vector(("reward", reward), reward, float)

    def _steady_reward_vector(self, reward: RewardFn) -> np.ndarray:
        """Like :meth:`reward_vector` but 0 on zero-probability markings.

        Steady-state measures must not evaluate the reward on transient
        markings (the legacy loop skipped them), so partial reward
        functions keep working and infinities cannot turn into NaN.
        """
        return self._cached_vector(
            ("steady-reward", reward), reward, float, mask=self.probabilities > 0.0
        )

    def _cached_vector(self, key, fn, coerce, mask=None) -> np.ndarray:
        cached = self._reward_cache.get(key)
        if cached is not None:
            self._reward_cache.move_to_end(key)
            return cached
        if mask is None:
            iterator = (coerce(fn(marking)) for marking in self.markings)
        else:
            iterator = (
                coerce(fn(marking)) if keep else 0.0
                for marking, keep in zip(self.markings, mask)
            )
        values = np.fromiter(iterator, dtype=float, count=len(self.markings))
        values.setflags(write=False)
        self._reward_cache[key] = values
        if len(self._reward_cache) > _REWARD_CACHE_SIZE:
            self._reward_cache.popitem(last=False)
        return values

    def token_matrix(self) -> np.ndarray:
        """``(markings, places)`` token counts as one array (cached)."""
        if self._token_matrix is None:
            matrix = np.array([marking.tokens for marking in self.markings], dtype=float)
            matrix.setflags(write=False)
            self._token_matrix = matrix
        return self._token_matrix

    def probability_of(self, predicate: Callable[[Marking], bool]) -> float:
        """Total steady-state probability of markings satisfying *predicate*.

        *predicate* results are taken by truth value (matching the
        original loop), so a truthy non-bool return still counts as one
        satisfying marking, not as a weight.
        """
        indicator = self._cached_vector(
            ("indicator", predicate), predicate, lambda value: float(bool(value))
        )
        return float(self.probabilities @ indicator)

    def expected_reward(self, reward: RewardFn) -> float:
        """Expected steady-state reward rate of *reward*.

        Like the legacy loop, the reward is only evaluated on markings
        with positive steady-state probability.
        """
        return float(self.probabilities @ self._steady_reward_vector(reward))

    def expected_reward_loop(self, reward: RewardFn) -> float:
        """Reference per-marking loop implementation of :meth:`expected_reward`."""
        total = 0.0
        for marking, probability in zip(self.markings, self.probabilities):
            if probability > 0.0:
                total += probability * float(reward(marking))
        return total

    def expected_tokens(self, place: str) -> float:
        """Expected steady-state token count in *place*."""
        if not self.markings:
            return 0.0
        places = self.markings[0].places()
        try:
            position = places.index(place)
        except ValueError:
            raise SrnError(f"unknown place {place!r}") from None
        return float(self.probabilities @ self.token_matrix()[:, position])

    def throughput(self, transition_name: str, net: StochasticRewardNet) -> float:
        """Steady-state throughput of a timed transition.

        Computed as ``sum_i pi_i * rate(transition, marking_i)`` over the
        tangible markings where the transition is enabled.
        """
        transition = net.transition(transition_name)
        rates = np.fromiter(
            (
                transition.rate_in(marking)
                if probability > 0.0 and transition.is_enabled(marking)
                else 0.0
                for marking, probability in zip(self.markings, self.probabilities)
            ),
            dtype=float,
            count=len(self.markings),
        )
        return float(self.probabilities @ rates)

    def transient_reward(
        self, reward: RewardFn, times: Sequence[float]
    ) -> np.ndarray:
        """Expected instantaneous reward rate at each time in *times*.

        The initial distribution is the one implied by the net's initial
        marking (mass spread over tangibles if it was vanishing).  The
        chain is uniformised once per solution (the batch solver is
        cached), so repeated curves over different rewards or time grids
        only pay for the shared Poisson pass.
        """
        values = self.reward_vector(reward)
        return self.transient_solver().rewards(
            self.graph.initial_distribution, np.asarray(values), times
        )

    def transient_solver(self) -> BatchTransientSolver:
        """The (cached) batched uniformisation solver over this chain."""
        if self._transient_solver is None:
            self._transient_solver = BatchTransientSolver(self.chain)
        return self._transient_solver


def solve(
    net: StochasticRewardNet,
    initial: Marking | None = None,
    max_markings: int = DEFAULT_MAX_MARKINGS,
    method: str = "auto",
) -> SrnSolution:
    """Explore *net*, build its CTMC and solve for the steady state.

    Raises
    ------
    SrnError
        If the net has absorbing tangible markings, which make the
        steady-state question ill-posed for the availability models this
        library targets.
    """
    graph = explore(net, initial=initial, max_markings=max_markings)
    chain = graph.to_ctmc()
    absorbing = chain.absorbing_states()
    if absorbing and chain.number_of_states() > 1:
        raise SrnError(
            f"net has {len(absorbing)} absorbing tangible markings "
            f"(e.g. {absorbing[0]!r}); steady-state analysis is ill-posed"
        )
    probabilities = steady_state(chain, method=method)
    return SrnSolution(graph=graph, chain=chain, probabilities=probabilities)


def solve_family(
    nets: Sequence[StochasticRewardNet],
    initial: Marking | None = None,
    max_markings: int = DEFAULT_MAX_MARKINGS,
    method: str = "auto",
) -> list[SrnSolution]:
    """Solve structurally identical nets, exploring reachability once.

    The first net's reachability graph is generated normally; every
    other net's transition rates are then re-evaluated directly on the
    stored tangible markings (no re-exploration, no re-hashing of the
    state space), and all steady states are solved through one
    :class:`~repro.ctmc.steady.BatchSteadySolver` over the union
    transition pattern.

    The nets must share structure: identical place names and initial
    tokens, identical transition names/kinds/arcs — only the *values* of
    rates may differ.  Nets with vanishing markings fall back to
    independent :func:`solve` calls (immediate-weight changes can reshape
    the eliminated graph).

    Raises
    ------
    SrnError
        If a net's structure diverges from the first net's (a firing
        leaves the shared state space, or a marking changes
        tangible/vanishing class).
    """
    nets = list(nets)
    if not nets:
        return []
    base = nets[0]
    _check_family_signature(base, nets)
    base_graph = explore(base, initial=initial, max_markings=max_markings)
    if base_graph.vanishing_count > 0:
        return [
            solve(net, initial=initial, max_markings=max_markings, method=method)
            for net in nets
        ]

    index = {marking: i for i, marking in enumerate(base_graph.tangible)}
    place_count = len(base.places)
    all_rates: list[dict[tuple[int, int], float]] = [dict(base_graph.rates)]
    for net in nets[1:]:
        all_rates.append(
            _rates_on_graph(net, base_graph.tangible, index, place_count)
        )

    pattern = sorted(
        {key for rates in all_rates for key in rates if key[0] != key[1]}
    )
    n = base_graph.number_of_states
    solver = BatchSteadySolver(n, pattern)
    solutions: list[SrnSolution] = []
    for net, rates in zip(nets, all_rates):
        # The same guard solve() applies: an absorbing tangible marking
        # makes the steady-state question ill-posed.
        if n > 1:
            have_exit = {src for (src, dst) in rates if src != dst}
            absorbing = [i for i in range(n) if i not in have_exit]
            if absorbing:
                raise SrnError(
                    f"net {net.name!r} has {len(absorbing)} absorbing tangible "
                    f"markings (e.g. {base_graph.tangible[absorbing[0]]!r}); "
                    "steady-state analysis is ill-posed"
                )
        values = [rates.get(pair, 0.0) for pair in pattern]
        probabilities = solver.solve(values, method=method)
        graph = ReachabilityGraph(
            tangible=base_graph.tangible,
            initial_distribution=base_graph.initial_distribution,
            rates=rates,
            vanishing_count=0,
        )
        solutions.append(
            SrnSolution(
                graph=graph, chain=graph.to_ctmc(), probabilities=probabilities
            )
        )
    return solutions


def transient_family(
    nets: Sequence[StochasticRewardNet],
    rewards: RewardFn | Sequence[RewardFn],
    times: Sequence[float],
    initial: Marking | None = None,
    max_markings: int = DEFAULT_MAX_MARKINGS,
    tolerance: float = 1e-10,
) -> list[np.ndarray]:
    """Transient reward curves for structurally identical nets.

    The transient counterpart of :func:`solve_family`: the first net's
    reachability graph is explored once, every reward function is
    evaluated once over the shared tangible markings, and each net's
    rates are re-evaluated on the stored markings and handed to one
    :class:`~repro.ctmc.transient.BatchTransientSolver` (generators
    assembled through a shared
    :class:`~repro.ctmc.steady.BatchSteadySolver` pattern), which
    serves every time point and reward in a single uniformisation pass.

    Unlike :func:`solve` and :func:`solve_family` there is **no**
    absorbing-marking guard: transient questions are well-posed on
    absorbing chains (patch-completion models are naturally absorbing —
    the probability mass simply accumulates in the absorbing markings).

    Returns one array per net: shape ``(len(times),)`` for a single
    reward function, ``(len(times), len(rewards))`` for a sequence.
    Nets with vanishing markings fall back to independent explorations
    (immediate-weight changes can reshape the eliminated graph).
    """
    nets = list(nets)
    if not nets:
        return []
    single = callable(rewards)
    reward_fns: list[RewardFn] = [rewards] if single else list(rewards)
    if not reward_fns:
        raise SrnError("transient_family needs at least one reward function")

    def reward_matrix(markings: Sequence[Marking]) -> np.ndarray:
        matrix = np.array(
            [[float(fn(marking)) for marking in markings] for fn in reward_fns]
        )
        return matrix[0] if single else matrix

    base = nets[0]
    _check_family_signature(base, nets)
    base_graph = explore(base, initial=initial, max_markings=max_markings)
    if base_graph.vanishing_count > 0:
        results = []
        for net in nets:
            graph = explore(net, initial=initial, max_markings=max_markings)
            solver = BatchTransientSolver(graph.to_ctmc(), tolerance=tolerance)
            results.append(
                solver.rewards(
                    graph.initial_distribution, reward_matrix(graph.tangible), times
                )
            )
        return results

    index = {marking: i for i, marking in enumerate(base_graph.tangible)}
    place_count = len(base.places)
    all_rates: list[dict[tuple[int, int], float]] = [dict(base_graph.rates)]
    for net in nets[1:]:
        all_rates.append(
            _rates_on_graph(net, base_graph.tangible, index, place_count)
        )
    pattern = sorted(
        {key for rates in all_rates for key in rates if key[0] != key[1]}
    )
    assembler = BatchSteadySolver(base_graph.number_of_states, pattern)
    matrix = reward_matrix(base_graph.tangible)
    results = []
    for rates in all_rates:
        values = [rates.get(pair, 0.0) for pair in pattern]
        solver = BatchTransientSolver.from_generator(
            assembler.generator(values), tolerance=tolerance
        )
        results.append(
            solver.rewards(base_graph.initial_distribution, matrix, times)
        )
    return results


def family_signature(net: StochasticRewardNet):
    """The transition-pattern signature grouping structurally equal nets.

    Two nets with equal signatures differ at most in their rate/weight
    *values*: places (names and initial tokens), transitions (names,
    kinds, arcs, inhibitors) all match, so they share one reachability
    graph and can be solved through :func:`solve_family` /
    :func:`transient_family`.  This is the key :func:`solve_families`
    and the sweep engine's structure-sharing pipeline group designs by.
    """
    places = tuple((p.name, p.initial_tokens) for p in net.places)
    transitions = tuple(
        (t.name, t.kind, tuple(t.inputs), tuple(t.outputs), tuple(t.inhibitors))
        for t in net.transitions
    )
    return places, transitions


def solve_families(
    nets: Sequence[StochasticRewardNet],
    initial: Marking | None = None,
    max_markings: int = DEFAULT_MAX_MARKINGS,
    method: str = "auto",
) -> list[SrnSolution]:
    """Solve *nets*, sharing one exploration per structural family.

    The generalisation of :func:`solve_family` to a heterogeneous
    population: nets are grouped by :func:`family_signature` and each
    group is solved through one :func:`solve_family` call (one
    reachability exploration, one batched steady-state pattern), so a
    design sweep with ``d`` designs but only ``p`` distinct transition
    patterns pays for ``p`` explorations.  Results are returned in input
    order and are bit-identical to calling :func:`solve` per net.
    """
    return _per_family(
        nets,
        lambda members: solve_family(
            members, initial=initial, max_markings=max_markings, method=method
        ),
    )


def transient_families(
    nets: Sequence[StochasticRewardNet],
    rewards: RewardFn | Sequence[RewardFn],
    times: Sequence[float],
    initial: Marking | None = None,
    max_markings: int = DEFAULT_MAX_MARKINGS,
    tolerance: float = 1e-10,
) -> list[np.ndarray]:
    """Transient curves for *nets*, one exploration per structural family.

    The transient counterpart of :func:`solve_families`: nets are
    grouped by :func:`family_signature` and each group runs through one
    :func:`transient_family` call (shared exploration, shared reward
    evaluation, one uniformisation per net).  Results align with the
    input order.
    """
    return _per_family(
        nets,
        lambda members: transient_family(
            members,
            rewards,
            times,
            initial=initial,
            max_markings=max_markings,
            tolerance=tolerance,
        ),
    )


def _per_family(nets: Sequence[StochasticRewardNet], solve_group) -> list:
    """Group *nets* by signature, apply *solve_group* per group, and
    scatter the per-group results back into input order."""
    nets = list(nets)
    groups: dict[object, list[int]] = {}
    for position, net in enumerate(nets):
        groups.setdefault(family_signature(net), []).append(position)
    results: list = [None] * len(nets)
    for members in groups.values():
        for position, result in zip(members, solve_group([nets[i] for i in members])):
            results[position] = result
    return results


def _check_family_signature(
    base: StochasticRewardNet, nets: Sequence[StochasticRewardNet]
) -> None:
    expected = family_signature(base)
    for net in nets[1:]:
        if family_signature(net) != expected:
            raise SrnError(
                f"net {net.name!r} does not share structure with {base.name!r}; "
                "solve_family needs identical places, transitions and arcs"
            )


def _rates_on_graph(
    net: StochasticRewardNet,
    tangible: Sequence[Marking],
    index: dict[Marking, int],
    place_count: int,
) -> dict[tuple[int, int], float]:
    """Effective rates of *net* over an already-explored tangible set."""
    rates: dict[tuple[int, int], float] = {}
    for i, marking in enumerate(tangible):
        for transition in net.enabled_transitions(marking):
            if transition.kind is TransitionKind.IMMEDIATE:
                raise SrnError(
                    f"marking {marking!r} is vanishing under net {net.name!r} "
                    "but tangible under the family's base net"
                )
            successor = marking.with_delta(transition.firing_delta(place_count))
            j = index.get(successor)
            if j is None:
                raise SrnError(
                    f"net {net.name!r} reaches {successor!r}, which is outside "
                    "the family's shared state space"
                )
            rate = transition.rate_in(marking)
            if rate > 0.0:
                key = (i, j)
                rates[key] = rates.get(key, 0.0) + rate
    return rates

"""High-level SRN solution facade (the SPNP "solve and measure" step)."""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.ctmc import Ctmc, steady_state
from repro.ctmc.transient import transient_distribution
from repro.errors import SrnError
from repro.srn.marking import Marking
from repro.srn.net import StochasticRewardNet
from repro.srn.reachability import DEFAULT_MAX_MARKINGS, ReachabilityGraph, explore

__all__ = ["SrnSolution", "solve"]

#: A reward function over markings (SPNP-style reward definition).
RewardFn = Callable[[Marking], float]


@dataclass
class SrnSolution:
    """Steady-state solution of an SRN with reward-evaluation helpers."""

    graph: ReachabilityGraph
    chain: Ctmc
    probabilities: np.ndarray
    _chain_cache: dict[int, np.ndarray] = field(default_factory=dict, repr=False)

    @property
    def markings(self) -> tuple[Marking, ...]:
        """Tangible markings, aligned with :attr:`probabilities`."""
        return self.graph.tangible

    def probability_of(self, predicate: Callable[[Marking], bool]) -> float:
        """Total steady-state probability of markings satisfying *predicate*."""
        return float(
            sum(
                probability
                for marking, probability in zip(self.markings, self.probabilities)
                if predicate(marking)
            )
        )

    def expected_reward(self, reward: RewardFn) -> float:
        """Expected steady-state reward rate of *reward*."""
        total = 0.0
        for marking, probability in zip(self.markings, self.probabilities):
            if probability > 0.0:
                total += probability * float(reward(marking))
        return total

    def expected_tokens(self, place: str) -> float:
        """Expected steady-state token count in *place*."""
        return self.expected_reward(lambda marking: marking[place])

    def throughput(self, transition_name: str, net: StochasticRewardNet) -> float:
        """Steady-state throughput of a timed transition.

        Computed as ``sum_i pi_i * rate(transition, marking_i)`` over the
        tangible markings where the transition is enabled.
        """
        transition = net.transition(transition_name)
        total = 0.0
        for marking, probability in zip(self.markings, self.probabilities):
            if probability > 0.0 and transition.is_enabled(marking):
                total += probability * transition.rate_in(marking)
        return total

    def transient_reward(
        self, reward: RewardFn, times: Sequence[float]
    ) -> np.ndarray:
        """Expected instantaneous reward rate at each time in *times*.

        The initial distribution is the one implied by the net's initial
        marking (mass spread over tangibles if it was vanishing).
        """
        values = np.array([float(reward(m)) for m in self.markings])
        out = []
        for time in times:
            dist = transient_distribution(
                self.chain, self.graph.initial_distribution, time
            )
            out.append(float(dist @ values))
        return np.array(out)


def solve(
    net: StochasticRewardNet,
    initial: Marking | None = None,
    max_markings: int = DEFAULT_MAX_MARKINGS,
    method: str = "auto",
) -> SrnSolution:
    """Explore *net*, build its CTMC and solve for the steady state.

    Raises
    ------
    SrnError
        If the net has absorbing tangible markings, which make the
        steady-state question ill-posed for the availability models this
        library targets.
    """
    graph = explore(net, initial=initial, max_markings=max_markings)
    chain = graph.to_ctmc()
    absorbing = chain.absorbing_states()
    if absorbing and chain.number_of_states() > 1:
        raise SrnError(
            f"net has {len(absorbing)} absorbing tangible markings "
            f"(e.g. {absorbing[0]!r}); steady-state analysis is ill-posed"
        )
    probabilities = steady_state(chain, method=method)
    return SrnSolution(graph=graph, chain=chain, probabilities=probabilities)

"""Markings: immutable token-count vectors addressable by place name.

Guards, marking-dependent rates and reward functions all receive a
:class:`Marking` and read token counts with ``marking["Phwup"]``,
mirroring SPNP's ``#Phwup`` notation.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping

from repro.errors import SrnError

__all__ = ["Marking"]


class Marking:
    """An immutable assignment of token counts to places.

    Instances share one place-index mapping (owned by the net), so
    hashing and equality reduce to the token tuple.

    Examples
    --------
    >>> marking = Marking({"a": 0, "b": 1}, (1, 0))
    >>> marking["a"]
    1
    """

    __slots__ = ("_index", "_tokens", "_hash")

    def __init__(self, index: Mapping[str, int], tokens: tuple[int, ...]) -> None:
        if len(index) != len(tokens):
            raise SrnError(
                f"marking needs {len(index)} token counts, got {len(tokens)}"
            )
        self._index = index
        self._tokens = tokens
        self._hash = hash(tokens)

    # -- reading ------------------------------------------------------------

    def __getitem__(self, place: str | int) -> int:
        if isinstance(place, int):
            return self._tokens[place]
        try:
            return self._tokens[self._index[place]]
        except KeyError:
            raise SrnError(f"unknown place {place!r}") from None

    def get(self, place: str, default: int = 0) -> int:
        """Token count of *place*, or *default* if the place is unknown."""
        position = self._index.get(place)
        return self._tokens[position] if position is not None else default

    @property
    def tokens(self) -> tuple[int, ...]:
        """The raw token tuple (ordered like the net's places)."""
        return self._tokens

    def places(self) -> list[str]:
        """Place names in index order."""
        return sorted(self._index, key=self._index.__getitem__)

    def as_dict(self) -> dict[str, int]:
        """``{place: tokens}`` mapping."""
        return {name: self._tokens[pos] for name, pos in self._index.items()}

    def nonzero(self) -> dict[str, int]:
        """Only the places holding at least one token."""
        return {name: count for name, count in self.as_dict().items() if count}

    def __iter__(self) -> Iterator[int]:
        return iter(self._tokens)

    def __len__(self) -> int:
        return len(self._tokens)

    # -- derivation ------------------------------------------------------------

    def with_delta(self, delta: tuple[int, ...]) -> "Marking":
        """A new marking with *delta* added element-wise."""
        tokens = tuple(t + d for t, d in zip(self._tokens, delta))
        if any(t < 0 for t in tokens):
            raise SrnError(f"negative token count after delta {delta!r}")
        return Marking(self._index, tokens)

    # -- identity ----------------------------------------------------------------

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Marking):
            return NotImplemented
        return self._tokens == other._tokens

    def __repr__(self) -> str:
        inside = ", ".join(f"{name}={count}" for name, count in self.nonzero().items())
        return f"Marking({inside})"

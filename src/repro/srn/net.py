"""Stochastic-reward-net definition: places, transitions, arcs, guards."""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from enum import Enum

from repro._validation import (
    check_name,
    check_non_negative_int,
    check_positive,
    check_positive_int,
)
from repro.errors import SrnError
from repro.srn.marking import Marking

__all__ = ["Place", "Transition", "TransitionKind", "StochasticRewardNet"]

#: A guard predicate over markings (SPNP-style).
Guard = Callable[[Marking], bool]
#: A marking-dependent rate or weight.
RateFn = Callable[[Marking], float]


@dataclass(frozen=True)
class Place:
    """A place with its initial token count."""

    name: str
    initial_tokens: int = 0

    def __post_init__(self) -> None:
        check_name(self.name, "place name")
        check_non_negative_int(self.initial_tokens, "initial_tokens")


class TransitionKind(str, Enum):
    """Timed (exponential) or immediate transition."""

    TIMED = "timed"
    IMMEDIATE = "immediate"

    def __str__(self) -> str:
        return self.value


@dataclass
class Transition:
    """A transition with arcs, guard and rate/weight.

    Timed transitions carry an exponential *rate* (a float or a
    marking-dependent callable); immediate transitions carry a *weight*
    (for probabilistic conflict resolution) and an integer *priority*
    (higher fires first).
    """

    name: str
    kind: TransitionKind
    rate: float | RateFn | None = None
    weight: float | RateFn = 1.0
    priority: int = 0
    guard: Guard | None = None
    inputs: list[tuple[int, int]] = field(default_factory=list)
    outputs: list[tuple[int, int]] = field(default_factory=list)
    inhibitors: list[tuple[int, int]] = field(default_factory=list)

    def is_enabled(self, marking: Marking) -> bool:
        """Structural + guard enabling test in *marking*."""
        for place_idx, multiplicity in self.inputs:
            if marking[place_idx] < multiplicity:
                return False
        for place_idx, multiplicity in self.inhibitors:
            if marking[place_idx] >= multiplicity:
                return False
        if self.guard is not None and not self.guard(marking):
            return False
        return True

    def firing_delta(self, place_count: int) -> tuple[int, ...]:
        """Token-count change caused by firing."""
        delta = [0] * place_count
        for place_idx, multiplicity in self.inputs:
            delta[place_idx] -= multiplicity
        for place_idx, multiplicity in self.outputs:
            delta[place_idx] += multiplicity
        return tuple(delta)

    def rate_in(self, marking: Marking) -> float:
        """Evaluate the (possibly marking-dependent) rate in *marking*."""
        if self.kind is not TransitionKind.TIMED:
            raise SrnError(f"transition {self.name!r} is immediate; it has no rate")
        value = self.rate(marking) if callable(self.rate) else self.rate
        if value is None or value != value or value < 0:
            raise SrnError(
                f"transition {self.name!r} produced invalid rate {value!r}"
            )
        return float(value)

    def weight_in(self, marking: Marking) -> float:
        """Evaluate the (possibly marking-dependent) weight in *marking*."""
        value = self.weight(marking) if callable(self.weight) else self.weight
        if value is None or value != value or value <= 0:
            raise SrnError(
                f"transition {self.name!r} produced invalid weight {value!r}"
            )
        return float(value)


class StochasticRewardNet:
    """Builder and container for an SRN.

    Examples
    --------
    >>> net = StochasticRewardNet()
    >>> net.add_place("up", tokens=1)
    >>> net.add_place("down")
    >>> net.add_timed_transition("fail", rate=2.0)
    >>> net.add_arc("up", "fail")
    >>> net.add_arc("fail", "down")
    >>> net.add_timed_transition("repair", rate=8.0)
    >>> net.add_arc("down", "repair")
    >>> net.add_arc("repair", "up")
    >>> net.initial_marking().nonzero()
    {'up': 1}
    """

    def __init__(self, name: str = "srn") -> None:
        self.name = check_name(name, "net name")
        self._places: list[Place] = []
        self._place_index: dict[str, int] = {}
        self._transitions: list[Transition] = []
        self._transition_index: dict[str, int] = {}

    # -- construction -------------------------------------------------------

    def add_place(self, name: str, tokens: int = 0) -> Place:
        """Add a place holding *tokens* initially."""
        if name in self._place_index:
            raise SrnError(f"duplicate place {name!r}")
        if name in self._transition_index:
            raise SrnError(f"{name!r} already names a transition")
        place = Place(name, tokens)
        self._place_index[name] = len(self._places)
        self._places.append(place)
        return place

    def add_timed_transition(
        self,
        name: str,
        rate: float | RateFn,
        guard: Guard | None = None,
    ) -> Transition:
        """Add an exponentially timed transition.

        *rate* is a positive float or a callable evaluated per marking
        (marking-dependent firing rate, as in the paper's upper layer).
        """
        if not callable(rate):
            check_positive(rate, f"rate of {name!r}")
        return self._add_transition(
            Transition(name=name, kind=TransitionKind.TIMED, rate=rate, guard=guard)
        )

    def add_immediate_transition(
        self,
        name: str,
        weight: float | RateFn = 1.0,
        priority: int = 0,
        guard: Guard | None = None,
    ) -> Transition:
        """Add an immediate transition with optional weight and priority."""
        if not callable(weight):
            check_positive(weight, f"weight of {name!r}")
        check_non_negative_int(priority, f"priority of {name!r}")
        return self._add_transition(
            Transition(
                name=name,
                kind=TransitionKind.IMMEDIATE,
                weight=weight,
                priority=priority,
                guard=guard,
            )
        )

    def add_arc(self, src: str, dst: str, multiplicity: int = 1) -> None:
        """Add an input arc (place -> transition) or output arc
        (transition -> place) depending on the endpoint kinds."""
        check_positive_int(multiplicity, "arc multiplicity")
        if src in self._place_index and dst in self._transition_index:
            transition = self._transitions[self._transition_index[dst]]
            transition.inputs.append((self._place_index[src], multiplicity))
        elif src in self._transition_index and dst in self._place_index:
            transition = self._transitions[self._transition_index[src]]
            transition.outputs.append((self._place_index[dst], multiplicity))
        else:
            raise SrnError(
                f"arc must connect a place and a transition, got {src!r} -> {dst!r}"
            )

    def add_inhibitor_arc(self, place: str, transition: str, multiplicity: int = 1) -> None:
        """Disable *transition* whenever *place* holds >= *multiplicity* tokens."""
        check_positive_int(multiplicity, "inhibitor multiplicity")
        if place not in self._place_index:
            raise SrnError(f"unknown place {place!r}")
        if transition not in self._transition_index:
            raise SrnError(f"unknown transition {transition!r}")
        self._transitions[self._transition_index[transition]].inhibitors.append(
            (self._place_index[place], multiplicity)
        )

    # -- accessors -----------------------------------------------------------

    @property
    def places(self) -> list[Place]:
        """Places in insertion order."""
        return list(self._places)

    @property
    def transitions(self) -> list[Transition]:
        """Transitions in insertion order."""
        return list(self._transitions)

    def place_index(self) -> dict[str, int]:
        """Place name -> position mapping (shared with markings)."""
        return self._place_index

    def transition(self, name: str) -> Transition:
        """The transition called *name*."""
        try:
            return self._transitions[self._transition_index[name]]
        except KeyError:
            raise SrnError(f"unknown transition {name!r}") from None

    def initial_marking(self) -> Marking:
        """The marking defined by the places' initial token counts."""
        return Marking(
            self._place_index, tuple(place.initial_tokens for place in self._places)
        )

    def marking(self, tokens: dict[str, int]) -> Marking:
        """Build a marking from a ``{place: tokens}`` dict (others 0)."""
        counts = [0] * len(self._places)
        for name, value in tokens.items():
            if name not in self._place_index:
                raise SrnError(f"unknown place {name!r}")
            counts[self._place_index[name]] = check_non_negative_int(value, name)
        return Marking(self._place_index, tuple(counts))

    # -- semantics -----------------------------------------------------------

    def enabled_transitions(self, marking: Marking) -> list[Transition]:
        """Transitions enabled in *marking* with priority filtering.

        If any immediate transition is enabled, only the enabled immediate
        transitions of maximal priority are returned (the marking is
        vanishing); otherwise all enabled timed transitions are returned.
        """
        enabled_immediate: list[Transition] = []
        enabled_timed: list[Transition] = []
        for transition in self._transitions:
            if transition.is_enabled(marking):
                if transition.kind is TransitionKind.IMMEDIATE:
                    enabled_immediate.append(transition)
                else:
                    enabled_timed.append(transition)
        if enabled_immediate:
            top = max(t.priority for t in enabled_immediate)
            return [t for t in enabled_immediate if t.priority == top]
        return enabled_timed

    def is_vanishing(self, marking: Marking) -> bool:
        """Whether *marking* enables at least one immediate transition."""
        return any(
            t.kind is TransitionKind.IMMEDIATE and t.is_enabled(marking)
            for t in self._transitions
        )

    def fire(self, marking: Marking, transition: Transition) -> Marking:
        """The marking reached by firing *transition* from *marking*."""
        if not transition.is_enabled(marking):
            raise SrnError(
                f"transition {transition.name!r} is not enabled in {marking!r}"
            )
        return marking.with_delta(transition.firing_delta(len(self._places)))

    # -- validation -----------------------------------------------------------

    def validate(self) -> None:
        """Check structural sanity; raise :class:`SrnError` on problems."""
        if not self._places:
            raise SrnError("net has no places")
        if not self._transitions:
            raise SrnError("net has no transitions")
        for transition in self._transitions:
            if not transition.inputs and not transition.outputs:
                raise SrnError(
                    f"transition {transition.name!r} has no arcs at all"
                )
            if transition.kind is TransitionKind.TIMED and transition.rate is None:
                raise SrnError(f"timed transition {transition.name!r} has no rate")

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"StochasticRewardNet({self.name!r}, places={len(self._places)}, "
            f"transitions={len(self._transitions)})"
        )

    # -- internal ---------------------------------------------------------------

    def _add_transition(self, transition: Transition) -> Transition:
        name = check_name(transition.name, "transition name")
        if name in self._transition_index:
            raise SrnError(f"duplicate transition {name!r}")
        if name in self._place_index:
            raise SrnError(f"{name!r} already names a place")
        self._transition_index[name] = len(self._transitions)
        self._transitions.append(transition)
        return transition

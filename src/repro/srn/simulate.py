"""Discrete-event Monte-Carlo simulation of an SRN.

Used as an independent cross-check of the analytic pipeline: the
time-averaged reward over a long run must agree with the expected
steady-state reward rate.  Race semantics: in a tangible marking the next
transition fires after Exp(total rate) and is chosen with probability
proportional to its rate; in a vanishing marking an immediate transition
is chosen by weight at zero elapsed time.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.errors import SrnError
from repro.srn.marking import Marking
from repro.srn.net import StochasticRewardNet, TransitionKind

__all__ = ["SimulationResult", "simulate"]

RewardFn = Callable[[Marking], float]


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one simulation run.

    Attributes
    ----------
    time_averaged_reward:
        Accumulated reward divided by simulated time.
    confidence_halfwidth:
        95% confidence half-width from batch means.
    batches:
        Per-batch time-averaged rewards.
    transitions_fired:
        Total number of transition firings (timed + immediate).
    """

    time_averaged_reward: float
    confidence_halfwidth: float
    batches: tuple[float, ...]
    transitions_fired: int

    @property
    def confidence_interval(self) -> tuple[float, float]:
        """95% confidence interval for the time-averaged reward."""
        return (
            self.time_averaged_reward - self.confidence_halfwidth,
            self.time_averaged_reward + self.confidence_halfwidth,
        )


def simulate(
    net: StochasticRewardNet,
    reward: RewardFn,
    horizon: float,
    seed: int = 0,
    batches: int = 10,
    warmup: float = 0.0,
    max_immediate_chain: int = 10_000,
) -> SimulationResult:
    """Simulate *net* for *horizon* time units and average *reward*.

    Parameters
    ----------
    net:
        The net to simulate.
    reward:
        Reward-rate function over markings.
    horizon:
        Total simulated time after warm-up.
    seed:
        Seed for the underlying generator (deterministic runs).
    batches:
        Number of batch-means segments for the confidence interval.
    warmup:
        Initial period excluded from the averages.
    max_immediate_chain:
        Bound on consecutive immediate firings (timeless-trap guard).
    """
    net.validate()
    if horizon <= 0:
        raise SrnError(f"horizon must be > 0, got {horizon}")
    if batches < 1:
        raise SrnError(f"batches must be >= 1, got {batches}")
    rng = np.random.default_rng(seed)
    place_count = len(net.places)

    marking = _settle(net, net.initial_marking(), rng, place_count, max_immediate_chain)

    clock = 0.0
    fired = 0
    end = warmup + horizon
    batch_edges = [warmup + horizon * (k + 1) / batches for k in range(batches)]
    batch_acc = [0.0] * batches

    def _accumulate(start: float, stop: float, rate: float) -> None:
        """Spread reward accumulated on [start, stop) into the batches."""
        if stop <= warmup or rate == 0.0:
            return
        lo = max(start, warmup)
        for k in range(batches):
            edge_lo = warmup + horizon * k / batches
            edge_hi = batch_edges[k]
            overlap = min(stop, edge_hi) - max(lo, edge_lo)
            if overlap > 0:
                batch_acc[k] += overlap * rate

    while clock < end:
        enabled = net.enabled_transitions(marking)
        if not enabled:
            # Dead marking: the reward rate stays constant forever.
            _accumulate(clock, end, float(reward(marking)))
            clock = end
            break
        rates = np.array([t.rate_in(marking) for t in enabled])
        total_rate = float(rates.sum())
        if total_rate <= 0.0:
            _accumulate(clock, end, float(reward(marking)))
            clock = end
            break
        sojourn = float(rng.exponential(1.0 / total_rate))
        stop = min(clock + sojourn, end)
        _accumulate(clock, stop, float(reward(marking)))
        clock += sojourn
        if clock >= end:
            break
        choice = rng.choice(len(enabled), p=rates / total_rate)
        marking = marking.with_delta(enabled[choice].firing_delta(place_count))
        fired += 1
        marking = _settle(net, marking, rng, place_count, max_immediate_chain)

    batch_means = [acc / (horizon / batches) for acc in batch_acc]
    mean = float(np.mean(batch_means))
    if batches > 1:
        std_error = float(np.std(batch_means, ddof=1) / np.sqrt(batches))
        halfwidth = 1.96 * std_error
    else:
        halfwidth = float("inf")
    return SimulationResult(
        time_averaged_reward=mean,
        confidence_halfwidth=halfwidth,
        batches=tuple(batch_means),
        transitions_fired=fired,
    )


def _settle(
    net: StochasticRewardNet,
    marking: Marking,
    rng: np.random.Generator,
    place_count: int,
    max_chain: int,
) -> Marking:
    """Fire immediate transitions (by weight) until the marking is tangible."""
    for _ in range(max_chain):
        enabled = net.enabled_transitions(marking)
        if not enabled or enabled[0].kind is not TransitionKind.IMMEDIATE:
            return marking
        weights = np.array([t.weight_in(marking) for t in enabled])
        choice = rng.choice(len(enabled), p=weights / weights.sum())
        marking = marking.with_delta(enabled[choice].firing_delta(place_count))
    raise SrnError(
        f"more than {max_chain} consecutive immediate firings; "
        "the net likely contains a timeless trap"
    )

"""Extended reachability-graph generation and vanishing-marking elimination.

State-space construction follows the standard GSPN recipe: breadth-first
exploration from the initial marking, classifying each marking as
*tangible* (no immediate transition enabled) or *vanishing*.  Vanishing
markings are then eliminated with the matrix method, which also copes
with cycles of immediate transitions:

    R_eff = R_tt + R_tv (I - P_vv)^{-1} P_vt

where ``R_tt``/``R_tv`` hold timed rates from tangible markings into
tangible/vanishing successors and ``P_vv``/``P_vt`` hold immediate
branching probabilities.  A singular ``I - P_vv`` indicates a *timeless
trap* (a set of vanishing markings that can never reach a tangible one)
and raises :class:`repro.errors.SrnError`.
"""

from __future__ import annotations

import warnings
from collections import deque
from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as sparse_linalg

from repro.ctmc import Ctmc
from repro.errors import SrnError, StateSpaceError
from repro.observability import metrics, tracing
from repro.srn.marking import Marking
from repro.srn.net import StochasticRewardNet, TransitionKind

__all__ = ["ReachabilityGraph", "explore", "exploration_count"]

DEFAULT_MAX_MARKINGS = 200_000

#: Process-wide count of reachability explorations, incremented by
#: :func:`explore`.  Benchmarks diff it around a sweep to measure how
#: many state-space generations the structure-sharing pipeline saved.
#: Backed by the observability registry so process-pool sweeps merge
#: worker explorations into the parent's count.
_EXPLORATIONS = metrics.counter(
    "repro_srn_explorations_total",
    "Reachability-graph explorations (state-space generations).",
).labels()
_VANISHING = metrics.counter(
    "repro_srn_vanishing_eliminated_total",
    "Vanishing markings eliminated during reachability exploration.",
).labels()


def exploration_count() -> int:
    """Number of :func:`explore` calls recorded by this process so far.

    After a process-pool sweep the engine merges worker telemetry into
    the parent registry, so worker-side explorations are included once
    the sweep returns.
    """
    return int(_EXPLORATIONS.value)


@dataclass(frozen=True)
class ReachabilityGraph:
    """The tangible CTMC extracted from an SRN.

    Attributes
    ----------
    tangible:
        Tangible markings in discovery order; these are the CTMC states.
    initial_distribution:
        Probability vector over ``tangible`` for the initial state (a
    vanishing initial marking spreads its mass over the tangible
        markings it reaches).
    rates:
        ``{(i, j): rate}`` effective transition rates between tangible
        markings (vanishing markings already eliminated).
    vanishing_count:
        Number of vanishing markings that were eliminated.
    """

    tangible: tuple[Marking, ...]
    initial_distribution: np.ndarray
    rates: dict[tuple[int, int], float]
    vanishing_count: int

    def to_ctmc(self) -> Ctmc:
        """Build the labelled CTMC (states are the tangible markings)."""
        chain = Ctmc(list(self.tangible))
        for (i, j), rate in self.rates.items():
            if i != j:
                chain.add_rate(self.tangible[i], self.tangible[j], rate)
        return chain

    def generator(self) -> sparse.csr_matrix:
        """The CSR generator assembled straight from the rate dict.

        Equivalent to ``to_ctmc().generator()`` but vectorised and
        without materialising the labelled chain: index arrays come from
        the rate dict in insertion order (the same order the chain walk
        accumulates in, so the floats match), self-loops are dropped and
        the diagonal is the negated row outflow.
        """
        n = len(self.tangible)
        if not self.rates:
            return sparse.csr_matrix((n, n))
        pairs = np.array(list(self.rates.keys()), dtype=np.intp)
        values = np.fromiter(
            self.rates.values(), dtype=float, count=len(self.rates)
        )
        off = pairs[:, 0] != pairs[:, 1]
        src, dst, values = pairs[off, 0], pairs[off, 1], values[off]
        outflow = np.bincount(src, weights=values, minlength=n)
        diagonal = np.arange(n, dtype=np.intp)
        return sparse.csr_matrix(
            (
                np.concatenate([values, -outflow]),
                (np.concatenate([src, diagonal]), np.concatenate([dst, diagonal])),
            ),
            shape=(n, n),
        )

    @property
    def number_of_states(self) -> int:
        """Tangible state count."""
        return len(self.tangible)


def explore(
    net: StochasticRewardNet,
    initial: Marking | None = None,
    max_markings: int = DEFAULT_MAX_MARKINGS,
) -> ReachabilityGraph:
    """Generate the reachability graph of *net* and eliminate vanishing
    markings.

    Parameters
    ----------
    net:
        The net to explore (``net.validate()`` is called first).
    initial:
        Starting marking; defaults to the net's initial marking.
    max_markings:
        Safety bound on the total number of explored markings.

    Raises
    ------
    StateSpaceError
        If more than *max_markings* markings are generated.
    SrnError
        On timeless traps or dead (no enabled transition) vanishing nets.
    """
    _EXPLORATIONS.inc()
    with tracing.span("srn:explore") as sp:
        graph = _explore(net, initial, max_markings)
        sp.add(
            tangible=graph.number_of_states, vanishing=graph.vanishing_count
        )
    _VANISHING.inc(graph.vanishing_count)
    return graph


def _explore(
    net: StochasticRewardNet,
    initial: Marking | None,
    max_markings: int,
) -> ReachabilityGraph:
    net.validate()
    start = initial if initial is not None else net.initial_marking()
    place_count = len(net.places)

    index: dict[Marking, int] = {start: 0}
    markings: list[Marking] = [start]
    is_vanishing: list[bool] = []
    # edges[src] = list of (dst, value); value is a rate for tangible
    # sources and an (unnormalised) weight for vanishing sources.
    edges: list[list[tuple[int, float]]] = []

    queue: deque[int] = deque([0])
    processed = 0
    while queue:
        current_idx = queue.popleft()
        marking = markings[current_idx]
        enabled = net.enabled_transitions(marking)
        vanishing = bool(enabled) and enabled[0].kind is TransitionKind.IMMEDIATE
        while len(is_vanishing) <= current_idx:
            is_vanishing.append(False)
            edges.append([])
        is_vanishing[current_idx] = vanishing
        out: list[tuple[int, float]] = []
        for transition in enabled:
            successor = marking.with_delta(transition.firing_delta(place_count))
            succ_idx = index.get(successor)
            if succ_idx is None:
                succ_idx = len(markings)
                if succ_idx >= max_markings:
                    raise StateSpaceError(
                        f"state space exceeded {max_markings} markings; "
                        "increase max_markings or simplify the net"
                    )
                index[successor] = succ_idx
                markings.append(successor)
                queue.append(succ_idx)
            if vanishing:
                out.append((succ_idx, transition.weight_in(marking)))
            else:
                rate = transition.rate_in(marking)
                if rate > 0.0:
                    out.append((succ_idx, rate))
        edges[current_idx] = out
        processed += 1

    return _eliminate_vanishing(markings, is_vanishing, edges)


def _eliminate_vanishing(
    markings: list[Marking],
    is_vanishing: list[bool],
    edges: list[list[tuple[int, float]]],
) -> ReachabilityGraph:
    total = len(markings)
    tangible_ids = [i for i in range(total) if not is_vanishing[i]]
    vanishing_ids = [i for i in range(total) if is_vanishing[i]]
    if not tangible_ids:
        raise SrnError("the net has no tangible markings (timeless trap)")

    tangible_pos = {orig: pos for pos, orig in enumerate(tangible_ids)}
    vanishing_pos = {orig: pos for pos, orig in enumerate(vanishing_ids)}
    n_t, n_v = len(tangible_ids), len(vanishing_ids)

    rates: dict[tuple[int, int], float] = {}

    if n_v == 0:
        for orig in tangible_ids:
            i = tangible_pos[orig]
            for dst, rate in edges[orig]:
                key = (i, tangible_pos[dst])
                rates[key] = rates.get(key, 0.0) + rate
        initial = np.zeros(n_t)
        initial[tangible_pos[0]] = 1.0
        return ReachabilityGraph(
            tangible=tuple(markings[i] for i in tangible_ids),
            initial_distribution=initial,
            rates=rates,
            vanishing_count=0,
        )

    # Branching probabilities out of vanishing markings.
    p_vv = sparse.lil_matrix((n_v, n_v))
    p_vt = sparse.lil_matrix((n_v, n_t))
    for orig in vanishing_ids:
        row = vanishing_pos[orig]
        out = edges[orig]
        if not out:
            raise SrnError(
                f"vanishing marking {markings[orig]!r} has no enabled "
                "immediate transition successors (dead vanishing marking)"
            )
        weight_total = sum(weight for _, weight in out)
        for dst, weight in out:
            probability = weight / weight_total
            if is_vanishing[dst]:
                p_vv[row, vanishing_pos[dst]] += probability
            else:
                p_vt[row, tangible_pos[dst]] += probability

    # Solve (I - P_vv) Y = P_vt  =>  Y[v, t] = P(eventually reach t | start v).
    # Both sides stay sparse end to end: the factor is applied to the
    # sparse right-hand side, never to an (n_v, n_t) dense block, so
    # elimination memory scales with the non-zeros, not with n_v * n_t.
    identity = sparse.identity(n_v, format="csc")
    system = (identity - p_vv.tocsc()).tocsc()
    try:
        with warnings.catch_warnings():
            # A singular system surfaces as MatrixRankWarning + inf/nan
            # on the sparse right-hand-side path; promote it so both
            # failure shapes funnel into the timeless-trap error below.
            warnings.simplefilter("error", sparse_linalg.MatrixRankWarning)
            y = sparse_linalg.spsolve(system, p_vt.tocsc())
    except (RuntimeError, sparse_linalg.MatrixRankWarning) as exc:
        raise SrnError(
            "timeless trap: a cycle of vanishing markings never reaches a "
            f"tangible marking ({exc})"
        ) from exc
    y = sparse.csr_matrix(y.reshape(n_v, n_t) if isinstance(y, np.ndarray) else y)
    if not np.all(np.isfinite(y.data)):
        raise SrnError("vanishing elimination produced non-finite probabilities")
    row_sums = np.asarray(y.sum(axis=1)).ravel()
    if np.any(row_sums < 1.0 - 1e-6):
        raise SrnError(
            "timeless trap: some vanishing marking reaches a tangible "
            "marking with probability < 1"
        )

    # Effective tangible-to-tangible rates, walking only the stored
    # non-zeros of each vanishing row.
    indptr, indices, data = y.indptr, y.indices, y.data
    for orig in tangible_ids:
        i = tangible_pos[orig]
        for dst, rate in edges[orig]:
            if is_vanishing[dst]:
                v = vanishing_pos[dst]
                for j, probability in zip(
                    indices[indptr[v] : indptr[v + 1]],
                    data[indptr[v] : indptr[v + 1]],
                ):
                    split = rate * probability
                    if split > 0.0:
                        key = (i, int(j))
                        rates[key] = rates.get(key, 0.0) + split
            else:
                key = (i, tangible_pos[dst])
                rates[key] = rates.get(key, 0.0) + rate

    # Initial distribution (handles a vanishing initial marking).
    initial = np.zeros(n_t)
    if is_vanishing[0]:
        initial[:] = y.getrow(vanishing_pos[0]).toarray().ravel()
    else:
        initial[tangible_pos[0]] = 1.0

    return ReachabilityGraph(
        tangible=tuple(markings[i] for i in tangible_ids),
        initial_distribution=initial,
        rates=rates,
        vanishing_count=n_v,
    )

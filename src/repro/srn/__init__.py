"""Stochastic reward net (SRN) engine — a pure-Python SPNP equivalent.

An SRN is a generalized stochastic Petri net extended with guard
functions, marking-dependent rates and reward functions.  The engine

1. builds the extended reachability graph from the initial marking,
2. classifies markings as *tangible* (only timed transitions enabled) or
   *vanishing* (some immediate transition enabled),
3. eliminates vanishing markings by the matrix method (handles immediate
   cycles; detects timeless traps),
4. hands the resulting CTMC to :mod:`repro.ctmc` for steady-state,
   transient and reward analysis.

A discrete-event simulator (:mod:`repro.srn.simulate`) provides an
independent estimate used to cross-validate the analytic pipeline.
"""

from repro.srn.marking import Marking
from repro.srn.net import Place, StochasticRewardNet, Transition
from repro.srn.reachability import ReachabilityGraph, explore
from repro.srn.solver import (
    SrnSolution,
    family_signature,
    solve,
    solve_families,
    solve_family,
    transient_families,
    transient_family,
)
from repro.srn.simulate import SimulationResult, simulate

__all__ = [
    "StochasticRewardNet",
    "Place",
    "Transition",
    "Marking",
    "ReachabilityGraph",
    "explore",
    "SrnSolution",
    "solve",
    "solve_family",
    "solve_families",
    "transient_family",
    "transient_families",
    "family_signature",
    "SimulationResult",
    "simulate",
]

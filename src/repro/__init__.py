"""repro: security and availability evaluation of server-redundancy
designs under security patching.

A faithful, self-contained reproduction of Ge, Kim & Kim, *"Evaluating
Security and Availability of Multiple Redundancy Designs when Applying
Security Patches"* (DSN 2017 Workshops).  The library provides:

- :mod:`repro.harm` — two-layered hierarchical attack representation
  models (attack graph + attack trees) and the paper's security metrics;
- :mod:`repro.srn` / :mod:`repro.ctmc` — a stochastic-reward-net engine
  (SPNP equivalent) with exact CTMC solution and simulation;
- :mod:`repro.availability` — the paper's hierarchical availability model
  with patch pipelines and capacity-oriented availability (COA);
- :mod:`repro.enterprise` / :mod:`repro.patching` — the case-study
  network, redundancy designs and patch policies;
- :mod:`repro.evaluation` — the combined security/availability
  evaluation, requirement regions (Eqs. 3-4) and chart data.

Quickstart::

    from repro.enterprise import paper_designs
    from repro.evaluation import evaluate_design

    for design in paper_designs():
        result = evaluate_design(design)
        print(design.label, result.after.security.as_dict(), result.after.coa)
"""

from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = ["ReproError", "__version__"]

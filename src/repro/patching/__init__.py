"""Patch policies, schedules and patch-workload derivation.

A :class:`PatchPolicy` selects which vulnerabilities a patch cycle fixes
(the paper patches the *critical* ones: CVSS base score > 8.0);
:class:`PatchSchedule` captures how often the cycle runs (monthly in the
paper); :func:`derive_pipeline` turns the selected vulnerabilities into
the per-server patch-stage rates of the availability model.
"""

from repro.patching.policy import (
    CriticalVulnerabilityPolicy,
    ExplicitPolicy,
    NoPatchPolicy,
    PatchAllPolicy,
    PatchPolicy,
)
from repro.patching.schedule import (
    MONTHLY,
    QUARTERLY,
    WEEKLY,
    BIWEEKLY,
    PatchSchedule,
)
from repro.patching.campaign import (
    BIG_BANG,
    CANARY_THEN_FLEET,
    CampaignPhase,
    PatchCampaign,
)
from repro.patching.lifecycle import (
    CycleOutcome,
    SyntheticDisclosureFeed,
    simulate_patch_lifecycle,
)
from repro.patching.workload import PatchWorkload, derive_pipeline, derive_workload

__all__ = [
    "PatchPolicy",
    "CriticalVulnerabilityPolicy",
    "PatchAllPolicy",
    "NoPatchPolicy",
    "ExplicitPolicy",
    "PatchCampaign",
    "CampaignPhase",
    "BIG_BANG",
    "CANARY_THEN_FLEET",
    "PatchSchedule",
    "WEEKLY",
    "BIWEEKLY",
    "MONTHLY",
    "QUARTERLY",
    "PatchWorkload",
    "derive_workload",
    "derive_pipeline",
    "CycleOutcome",
    "SyntheticDisclosureFeed",
    "simulate_patch_lifecycle",
]

"""Staged patch-rollout campaigns (canary -> partial -> full fleet).

The paper models patch application as a single stationary process:
every server patches at its Table V ``lambda_eq`` from t = 0.  Real
fleets roll patches out in *stages* — a canary slice first, then a
partial ramp, then the full fleet — which makes the effective patch
rate piecewise constant in time.  A :class:`PatchCampaign` describes
that staging as an ordered sequence of :class:`CampaignPhase` records;
the timeline subsystem (:mod:`repro.evaluation.timeline`) evaluates a
design under a campaign by uniformising once per phase and carrying the
state vector across phase boundaries
(:func:`repro.ctmc.transient.transient_piecewise`).

Each phase scales every patch rate by ``rate_multiplier`` and ends on
one of three triggers:

- a fixed ``duration_hours`` (zero allowed — the phase is skipped);
- a ``completion_fraction``: the phase ends once the *expected* patched
  fraction of the fleet reaches the threshold (a trigger that never
  fires — e.g. a zero rate multiplier, or a threshold of exactly 1.0 —
  leaves the phase running forever and later phases unreachable);
- neither (open-ended): the phase runs forever.

The final phase must be open-ended (its regime persists, so a trailing
trigger would have nothing to hand over to — rejected at validation to
catch truncated specs), and only the final phase may be.

``canary_hosts`` optionally throttles a phase at the fleet level: with
at most *c* of the design's *N* servers patching concurrently, the
aggregate patch throughput scales by ``min(1, c / N)`` on top of the
rate multiplier.  The throttle depends on the design's total server
count, which is why the *effective* multiplier is resolved per design
(:meth:`CampaignPhase.effective_multiplier`).

The single-phase, multiplier-1, open-ended campaign
(:data:`BIG_BANG`) reproduces the stationary model bit for bit — the
degenerate-case contract the timeline tests assert.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path

from repro._validation import check_name
from repro.errors import ValidationError

__all__ = [
    "CampaignPhase",
    "PatchCampaign",
    "BIG_BANG",
    "CANARY_THEN_FLEET",
]


def _as_number(value: object, what: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValidationError(f"{what} must be a number, got {value!r}")
    return float(value)


def _check_multiplier(value: object) -> float:
    number = _as_number(value, "rate_multiplier")
    if not math.isfinite(number) or number < 0.0:
        raise ValidationError(
            f"rate_multiplier must be finite and >= 0, got {value!r}"
        )
    return number


@dataclass(frozen=True)
class CampaignPhase:
    """One stage of a patch rollout.

    Parameters
    ----------
    name:
        Label for reports (``"canary"``, ``"fleet"``, ...).  Names need
        not be unique — a campaign may repeat identical stages.
    rate_multiplier:
        Factor applied to every group's aggregated patch rate while the
        phase is active (0 pauses patching entirely).
    duration_hours:
        Fixed phase length in hours (0 allowed), or ``None`` when the
        phase ends on a completion trigger / is open-ended.
    completion_fraction:
        End the phase once the expected patched fraction of the fleet
        reaches this value (in ``(0, 1]``).  Mutually exclusive with
        *duration_hours*.  A threshold of exactly 1.0 is reached only
        asymptotically, so it never fires.
    canary_hosts:
        Cap on concurrently patching servers; scales the phase's
        effective patch throughput by ``min(1, canary_hosts / total)``.
    """

    name: str
    rate_multiplier: float
    duration_hours: float | None = None
    completion_fraction: float | None = None
    canary_hosts: int | None = None

    def __post_init__(self) -> None:
        check_name(self.name, "phase name")
        object.__setattr__(
            self, "rate_multiplier", _check_multiplier(self.rate_multiplier)
        )
        if self.duration_hours is not None and self.completion_fraction is not None:
            raise ValidationError(
                f"phase {self.name!r} sets both duration_hours and "
                "completion_fraction; a phase ends on exactly one trigger"
            )
        if self.duration_hours is not None:
            duration = _as_number(
                self.duration_hours, f"phase {self.name!r} duration_hours"
            )
            if not math.isfinite(duration) or duration < 0.0:
                raise ValidationError(
                    f"phase {self.name!r} duration_hours must be finite and "
                    f">= 0, got {self.duration_hours!r} (omit it for an "
                    "open-ended phase)"
                )
            object.__setattr__(self, "duration_hours", duration)
        if self.completion_fraction is not None:
            fraction = _as_number(
                self.completion_fraction,
                f"phase {self.name!r} completion_fraction",
            )
            if not 0.0 < fraction <= 1.0:
                raise ValidationError(
                    f"phase {self.name!r} completion_fraction must lie in "
                    f"(0, 1], got {self.completion_fraction!r}"
                )
            object.__setattr__(self, "completion_fraction", fraction)
        if self.canary_hosts is not None:
            if (
                isinstance(self.canary_hosts, bool)
                or not isinstance(self.canary_hosts, int)
                or self.canary_hosts < 1
            ):
                raise ValidationError(
                    f"phase {self.name!r} canary_hosts must be a positive "
                    f"integer, got {self.canary_hosts!r}"
                )

    @property
    def is_open_ended(self) -> bool:
        """Whether the phase has no end trigger (runs forever)."""
        return self.duration_hours is None and self.completion_fraction is None

    def effective_multiplier(self, total_servers: int) -> float:
        """The patch-rate factor for a fleet of *total_servers*.

        Multiplying by exactly 1.0 is bit-preserving, so a multiplier-1
        phase without a binding canary cap leaves rates untouched.
        """
        multiplier = self.rate_multiplier
        if self.canary_hosts is not None and self.canary_hosts < total_servers:
            multiplier = multiplier * (self.canary_hosts / total_servers)
        return multiplier

    def to_dict(self) -> dict:
        """JSON-ready phase description (the :meth:`from_dict` inverse)."""
        payload: dict = {
            "name": self.name,
            "rate_multiplier": self.rate_multiplier,
        }
        if self.duration_hours is not None:
            payload["duration_hours"] = self.duration_hours
        if self.completion_fraction is not None:
            payload["completion_fraction"] = self.completion_fraction
        if self.canary_hosts is not None:
            payload["canary_hosts"] = self.canary_hosts
        return payload

    @classmethod
    def from_dict(cls, payload: object) -> "CampaignPhase":
        """Build a phase from a :meth:`to_dict`-style mapping."""
        if not isinstance(payload, dict):
            raise ValidationError(
                f"a campaign phase must be an object, got {payload!r}"
            )
        unknown = set(payload) - {
            "name",
            "rate_multiplier",
            "duration_hours",
            "completion_fraction",
            "canary_hosts",
        }
        if unknown:
            raise ValidationError(
                f"unknown campaign-phase fields: {sorted(unknown)}"
            )
        if "name" not in payload or "rate_multiplier" not in payload:
            raise ValidationError(
                "a campaign phase needs at least 'name' and 'rate_multiplier'"
            )
        return cls(
            name=payload["name"],
            rate_multiplier=payload["rate_multiplier"],
            duration_hours=payload.get("duration_hours"),
            completion_fraction=payload.get("completion_fraction"),
            canary_hosts=payload.get("canary_hosts"),
        )


@dataclass(frozen=True)
class PatchCampaign:
    """An ordered sequence of rollout phases.

    Phases run back to back from t = 0; once a phase with no reachable
    end is entered (open-ended, or a trigger that never fires), it runs
    forever.  Campaigns are hashable value objects: they key engine
    memos, travel through pickles to pool workers, and
    :meth:`cache_key` feeds the persistent-cache entry key.
    """

    name: str
    phases: tuple[CampaignPhase, ...]

    def __post_init__(self) -> None:
        check_name(self.name, "campaign name")
        phases = tuple(self.phases)
        if not phases:
            raise ValidationError("a campaign needs at least one phase")
        for phase in phases:
            if not isinstance(phase, CampaignPhase):
                raise ValidationError(
                    f"campaign phases must be CampaignPhase, got {phase!r}"
                )
        for position, phase in enumerate(phases[:-1]):
            if phase.is_open_ended:
                raise ValidationError(
                    f"phase {phase.name!r} (position {position}) is "
                    "open-ended, so later phases are unreachable; only the "
                    "last phase may omit both triggers"
                )
        if not phases[-1].is_open_ended:
            raise ValidationError(
                f"the final phase {phases[-1].name!r} must be open-ended "
                "(no duration or completion trigger): its regime persists, "
                "so a trailing trigger would be silently ignored — append "
                "an explicit terminal phase instead (e.g. ',fleet:1.0')"
            )
        object.__setattr__(self, "phases", phases)

    @property
    def is_stationary(self) -> bool:
        """A single open-ended multiplier-1 phase with no canary cap —
        the campaign that reproduces the paper's stationary patching."""
        if len(self.phases) != 1:
            return False
        phase = self.phases[0]
        return (
            phase.is_open_ended
            and phase.rate_multiplier == 1.0
            and phase.canary_hosts is None
        )

    def cache_key(self) -> tuple:
        """A stable hashable token for persistent-cache entry keys.

        Includes the campaign *name*: cached ``DesignTimeline`` records
        embed the campaign they were computed under, so two campaigns
        that differ only by name must not alias (the hit would hand
        back the stale identity).
        """
        return (
            "campaign",
            self.name,
            tuple(
                (
                    phase.name,
                    phase.rate_multiplier,
                    phase.duration_hours,
                    phase.completion_fraction,
                    phase.canary_hosts,
                )
                for phase in self.phases
            ),
        )

    def to_dict(self) -> dict:
        """JSON-ready campaign description."""
        return {
            "name": self.name,
            "phases": [phase.to_dict() for phase in self.phases],
        }

    @classmethod
    def from_dict(cls, payload: object) -> "PatchCampaign":
        """Build a campaign from a :meth:`to_dict`-style mapping."""
        if not isinstance(payload, dict):
            raise ValidationError(
                f"a campaign spec must be an object, got {payload!r}"
            )
        unknown = set(payload) - {"name", "phases"}
        if unknown:
            raise ValidationError(f"unknown campaign fields: {sorted(unknown)}")
        phases = payload.get("phases")
        if not isinstance(phases, (list, tuple)):
            raise ValidationError("a campaign spec needs a 'phases' list")
        return cls(
            name=payload.get("name", "campaign"),
            phases=tuple(CampaignPhase.from_dict(phase) for phase in phases),
        )

    @classmethod
    def from_json_file(cls, path: str | Path) -> "PatchCampaign":
        """Load a campaign from a JSON spec file."""
        try:
            text = Path(path).read_text()
        except OSError as exc:
            raise ValidationError(f"cannot read campaign spec {path}: {exc}") from None
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValidationError(
                f"campaign spec {path} is not valid JSON: {exc}"
            ) from None
        return cls.from_dict(payload)

    @classmethod
    def parse(cls, spec: str, name: str = "campaign") -> "PatchCampaign":
        """Parse the CLI shorthand ``name:mult[:trigger[:canary]],...``.

        Each comma-separated phase is ``name:multiplier`` plus an
        optional trigger — a plain number is a duration in hours, a
        ``%``-suffixed number a completion fraction (``50%`` ends the
        phase once half the fleet is expected patched) — and an
        optional canary host count.  Examples::

            canary:0.1:48,fleet:1.0        48 h canary at 10% rate, then full
            canary:1:25%:2,fleet:1.0       2-host canary until 25% patched
            fleet:1.0                      the stationary big-bang rollout
        """
        phases: list[CampaignPhase] = []
        for chunk in spec.split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            fields = chunk.split(":")
            if not 2 <= len(fields) <= 4:
                raise ValidationError(
                    f"bad phase {chunk!r}: expected "
                    "name:multiplier[:trigger[:canary]]"
                )
            phase_name = fields[0].strip()
            try:
                multiplier = float(fields[1])
            except ValueError:
                raise ValidationError(
                    f"bad phase {chunk!r}: multiplier {fields[1]!r} is not "
                    "a number"
                ) from None
            duration: float | None = None
            fraction: float | None = None
            if len(fields) >= 3 and fields[2].strip():
                trigger = fields[2].strip()
                try:
                    if trigger.endswith("%"):
                        fraction = float(trigger[:-1]) / 100.0
                    else:
                        duration = float(trigger)
                except ValueError:
                    raise ValidationError(
                        f"bad phase {chunk!r}: trigger {trigger!r} is neither "
                        "a duration in hours nor a percentage"
                    ) from None
            canary: int | None = None
            if len(fields) == 4 and fields[3].strip():
                try:
                    canary = int(fields[3])
                except ValueError:
                    raise ValidationError(
                        f"bad phase {chunk!r}: canary host count "
                        f"{fields[3]!r} is not an integer"
                    ) from None
            phases.append(
                CampaignPhase(
                    name=phase_name,
                    rate_multiplier=multiplier,
                    duration_hours=duration,
                    completion_fraction=fraction,
                    canary_hosts=canary,
                )
            )
        if not phases:
            raise ValidationError(f"campaign spec {spec!r} has no phases")
        return cls(name=name, phases=tuple(phases))

    def __str__(self) -> str:
        parts = []
        for phase in self.phases:
            if phase.duration_hours is not None:
                trigger = f"{phase.duration_hours:g} h"
            elif phase.completion_fraction is not None:
                trigger = f"{100 * phase.completion_fraction:g}% patched"
            else:
                trigger = "open-ended"
            parts.append(f"{phase.name} (x{phase.rate_multiplier:g}, {trigger})")
        return f"{self.name}: " + " -> ".join(parts)


#: The stationary rollout: every server patches at full rate from t = 0.
BIG_BANG = PatchCampaign(
    name="big-bang", phases=(CampaignPhase(name="fleet", rate_multiplier=1.0),)
)

#: A conservative default staging: a 48-hour canary at 10% patch
#: throughput, a 120-hour ramp at half rate, then the full fleet.
CANARY_THEN_FLEET = PatchCampaign(
    name="canary-then-fleet",
    phases=(
        CampaignPhase(name="canary", rate_multiplier=0.1, duration_hours=48.0),
        CampaignPhase(name="ramp", rate_multiplier=0.5, duration_hours=120.0),
        CampaignPhase(name="fleet", rate_multiplier=1.0),
    ),
)

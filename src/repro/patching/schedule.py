"""Patch schedules: how often the patch clock fires."""

from __future__ import annotations

from dataclasses import dataclass

from repro._validation import check_name, check_positive

__all__ = ["PatchSchedule", "WEEKLY", "BIWEEKLY", "MONTHLY", "QUARTERLY"]

HOURS_PER_DAY = 24.0


@dataclass(frozen=True)
class PatchSchedule:
    """A regular patch cadence.

    The paper uses a monthly (30-day, 720-hour) schedule; the interval is
    the mean of the exponential patch clock ``Tinterval``.
    """

    label: str
    interval_hours: float

    def __post_init__(self) -> None:
        check_name(self.label, "label")
        check_positive(self.interval_hours, "interval_hours")

    @classmethod
    def from_days(cls, label: str, days: float) -> "PatchSchedule":
        """Build a schedule from an interval in days."""
        return cls(label, check_positive(days, "days") * HOURS_PER_DAY)

    @property
    def clock_rate(self) -> float:
        """The paper's tau_p: 1 / interval (per hour)."""
        return 1.0 / self.interval_hours

    @property
    def interval_days(self) -> float:
        """Interval expressed in days."""
        return self.interval_hours / HOURS_PER_DAY

    def __str__(self) -> str:
        return f"{self.label} ({self.interval_days:g} days)"


WEEKLY = PatchSchedule.from_days("weekly", 7)
BIWEEKLY = PatchSchedule.from_days("biweekly", 14)
MONTHLY = PatchSchedule.from_days("monthly", 30)
QUARTERLY = PatchSchedule.from_days("quarterly", 90)

"""Multi-cycle patch lifecycle (paper §III: "more complex cases (e.g.,
monthly patch of 3 months) will be considered in our future work").

Simulates a sequence of patch cycles: each cycle new vulnerabilities are
disclosed (a seeded synthetic NVD feed), the policy patches its
selection at the end of the cycle, and the security metrics are
evaluated before and after each patch.  The result is a step function of
the attack surface over time, exposing how disclosure rate and patch
policy interact.

Any :class:`~repro.enterprise.design.DesignSpec` is accepted: a
homogeneous design tracks one vulnerability list per role, a
heterogeneous (diversity) design one list per *variant* — the feed
discloses per product, so an nginx CVE lands only on the nginx replicas
while the apache replicas of the same tier stay clean.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.harm import SecurityMetrics, evaluate_security
from repro.errors import EvaluationError
from repro.patching.policy import PatchPolicy
from repro.vulnerability.model import SoftwareLayer, Vulnerability

if TYPE_CHECKING:  # imported lazily to avoid a package-import cycle
    from repro.enterprise.casestudy import EnterpriseCaseStudy
    from repro.enterprise.design import DesignSpec
    from repro.vulnerability.database import VulnerabilityDatabase

__all__ = ["CycleOutcome", "SyntheticDisclosureFeed", "simulate_patch_lifecycle"]

_VECTOR_POOL = (
    # (vector, weight): a realistic severity mix for monthly disclosures
    ("AV:N/AC:L/Au:N/C:C/I:C/A:C", 0.15),   # remote critical (10.0)
    ("AV:N/AC:M/Au:N/C:C/I:C/A:C", 0.15),   # remote critical (9.3)
    ("AV:N/AC:L/Au:N/C:P/I:P/A:P", 0.25),   # remote high (7.5)
    ("AV:L/AC:L/Au:N/C:C/I:C/A:C", 0.20),   # local escalation (7.2)
    ("AV:N/AC:L/Au:N/C:P/I:N/A:N", 0.25),   # info leak (5.0)
)


class SyntheticDisclosureFeed:
    """A seeded stream of synthetic vulnerability disclosures.

    Parameters
    ----------
    rate_per_product:
        Expected new vulnerabilities per product per cycle (Poisson).
    seed:
        Generator seed; identical seeds give identical feeds.
    """

    def __init__(self, rate_per_product: float = 1.0, seed: int = 0) -> None:
        if rate_per_product < 0:
            raise EvaluationError("rate_per_product must be >= 0")
        self._rate = rate_per_product
        self._rng = np.random.default_rng(seed)
        self._counter = 0

    def disclose(self, cycle: int, products: list[str]) -> list[Vulnerability]:
        """New records for *cycle* across *products*."""
        vectors, weights = zip(*_VECTOR_POOL)
        weights = np.array(weights) / sum(weights)
        records = []
        for product in products:
            count = int(self._rng.poisson(self._rate))
            for _ in range(count):
                self._counter += 1
                vector = str(self._rng.choice(vectors, p=weights))
                layer = (
                    SoftwareLayer.OPERATING_SYSTEM
                    if self._rng.random() < 0.4
                    else SoftwareLayer.APPLICATION
                )
                records.append(
                    Vulnerability(
                        cve_id=f"SYN-FEED-{cycle:02d}-{self._counter:04d}",
                        product=product,
                        layer=layer,
                        vector=vector,  # type: ignore[arg-type]
                        exploitable=bool(self._rng.random() < 0.7),
                        reconstructed=True,
                    )
                )
        return records


@dataclass(frozen=True)
class CycleOutcome:
    """Security state around one patch cycle."""

    cycle: int
    disclosed: int
    patched: int
    backlog: int
    before: SecurityMetrics
    after: SecurityMetrics


@dataclass(frozen=True)
class _Unit:
    """One independently-tracked software stack of a design.

    A homogeneous design has one unit per role (all replicas share the
    role's list); a heterogeneous design one unit per variant.
    """

    key: str
    role: str
    products: tuple[str, ...]
    hosts: tuple[str, ...]


def _design_units(
    case_study: EnterpriseCaseStudy,
    design: DesignSpec,
    database: VulnerabilityDatabase | None,
) -> tuple[list[_Unit], dict[str, list[Vulnerability]]]:
    """The design's units and their initial (catalog) vulnerability lists."""
    from repro.enterprise.casestudy import variant_vulnerabilities
    from repro.enterprise.heterogeneous import (
        HeterogeneousDesign,
        check_design_kind,
    )

    units: list[_Unit] = []
    initial: dict[str, list[Vulnerability]] = {}
    if isinstance(design, HeterogeneousDesign):
        db = database if database is not None else case_study.database
        for role in design.roles:
            hosts_by_variant: dict[str, list[str]] = {}
            for host, variant in design.instances(role).items():
                hosts_by_variant.setdefault(variant.name, []).append(host)
            for variant in design.variants(role):
                units.append(
                    _Unit(
                        key=variant.name,
                        role=role,
                        products=tuple(variant.products),
                        hosts=tuple(hosts_by_variant[variant.name]),
                    )
                )
                initial[variant.name] = variant_vulnerabilities(db, variant)
        return units, initial
    check_design_kind(design)
    for role in design.roles:
        units.append(
            _Unit(
                key=role,
                role=role,
                products=tuple(case_study.roles[role].products),
                hosts=tuple(design.instances(role)),
            )
        )
        initial[role] = list(case_study.role_vulnerabilities(role))
    return units, initial


def simulate_patch_lifecycle(
    case_study: EnterpriseCaseStudy,
    design: DesignSpec,
    policy: PatchPolicy,
    cycles: int,
    feed: SyntheticDisclosureFeed | None = None,
    database: VulnerabilityDatabase | None = None,
) -> list[CycleOutcome]:
    """Run *cycles* consecutive patch cycles and track the attack surface.

    Cycle 0 starts from the case study's catalog (per-variant records
    for heterogeneous designs).  Each cycle: the feed discloses new
    records on every product in use, the security metrics are computed
    (*before*), the policy patches its selection, and the metrics are
    recomputed (*after*).  Unpatched records accumulate as backlog into
    the next cycle — exactly the effect a criticals-only policy has on
    medium-severity CVEs.

    *database* supplies the variant vulnerability records of
    heterogeneous designs (default: the case study's own database).
    """
    if cycles < 1:
        raise EvaluationError(f"cycles must be >= 1, got {cycles}")
    if feed is None:
        feed = SyntheticDisclosureFeed()

    units, current = _design_units(case_study, design, database)

    outcomes: list[CycleOutcome] = []
    for cycle in range(cycles):
        disclosed_count = 0
        if cycle > 0:  # cycle 0 evaluates the catalog as-is (the paper's case)
            all_products = sorted(
                {product for unit in units for product in unit.products}
            )
            new_records = feed.disclose(cycle, all_products)
            disclosed_count = len(new_records)
            for unit in units:
                current[unit.key].extend(
                    record
                    for record in new_records
                    if record.product in unit.products
                )

        before = _evaluate(case_study, units, current, patched=None)
        patched_ids = {
            unit.key: policy.patched_cve_ids(current[unit.key]) for unit in units
        }
        after = _evaluate(case_study, units, current, patched=patched_ids)

        patched_count = len(set().union(*patched_ids.values()))
        for unit in units:
            current[unit.key] = [
                record
                for record in current[unit.key]
                if record.cve_id not in patched_ids[unit.key]
            ]
        backlog = sum(len(records) for records in current.values())
        outcomes.append(
            CycleOutcome(
                cycle=cycle,
                disclosed=disclosed_count,
                patched=patched_count,
                backlog=backlog,
                before=before,
                after=after,
            )
        )
    return outcomes


def _evaluate(
    case_study: EnterpriseCaseStudy,
    units: list[_Unit],
    current: dict[str, list[Vulnerability]],
    patched: dict[str, set[str]] | None,
) -> SecurityMetrics:
    from repro.harm import build_harm  # local import to avoid cycles

    role_hosts: dict[str, list[str]] = {}
    host_vulns: dict[str, list[Vulnerability]] = {}
    for unit in units:
        role_hosts.setdefault(unit.role, []).extend(unit.hosts)
        for host in unit.hosts:
            host_vulns[host] = current[unit.key]
    reachability = [
        (src_host, dst_host)
        for src_role, dst_role in case_study.topology.role_edges()
        if src_role in role_hosts and dst_role in role_hosts
        for src_host in role_hosts[src_role]
        for dst_host in role_hosts[dst_role]
    ]
    entry_hosts = [
        host
        for role in case_study.topology.entry_roles
        if role in role_hosts
        for host in role_hosts[role]
    ]
    targets = [
        host
        for role in case_study.topology.target_roles
        if role in role_hosts
        for host in role_hosts[role]
    ]
    # trees are flat ORs here: synthetic feeds have no expert tree shape
    harm = build_harm(host_vulns, reachability, entry_hosts, targets)
    if patched is not None:
        harm = harm.after_patching(
            {
                host: patched[unit.key]
                for unit in units
                for host in unit.hosts
            }
        )
    return evaluate_security(harm)

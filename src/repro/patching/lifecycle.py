"""Multi-cycle patch lifecycle (paper §III: "more complex cases (e.g.,
monthly patch of 3 months) will be considered in our future work").

Simulates a sequence of patch cycles: each cycle new vulnerabilities are
disclosed (a seeded synthetic NVD feed), the policy patches its
selection at the end of the cycle, and the security metrics are
evaluated before and after each patch.  The result is a step function of
the attack surface over time, exposing how disclosure rate and patch
policy interact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.harm import SecurityMetrics, evaluate_security
from repro.errors import EvaluationError
from repro.patching.policy import PatchPolicy
from repro.vulnerability.model import SoftwareLayer, Vulnerability

if TYPE_CHECKING:  # imported lazily to avoid a package-import cycle
    from repro.enterprise.casestudy import EnterpriseCaseStudy
    from repro.enterprise.design import RedundancyDesign

__all__ = ["CycleOutcome", "SyntheticDisclosureFeed", "simulate_patch_lifecycle"]

_VECTOR_POOL = (
    # (vector, weight): a realistic severity mix for monthly disclosures
    ("AV:N/AC:L/Au:N/C:C/I:C/A:C", 0.15),   # remote critical (10.0)
    ("AV:N/AC:M/Au:N/C:C/I:C/A:C", 0.15),   # remote critical (9.3)
    ("AV:N/AC:L/Au:N/C:P/I:P/A:P", 0.25),   # remote high (7.5)
    ("AV:L/AC:L/Au:N/C:C/I:C/A:C", 0.20),   # local escalation (7.2)
    ("AV:N/AC:L/Au:N/C:P/I:N/A:N", 0.25),   # info leak (5.0)
)


class SyntheticDisclosureFeed:
    """A seeded stream of synthetic vulnerability disclosures.

    Parameters
    ----------
    rate_per_product:
        Expected new vulnerabilities per product per cycle (Poisson).
    seed:
        Generator seed; identical seeds give identical feeds.
    """

    def __init__(self, rate_per_product: float = 1.0, seed: int = 0) -> None:
        if rate_per_product < 0:
            raise EvaluationError("rate_per_product must be >= 0")
        self._rate = rate_per_product
        self._rng = np.random.default_rng(seed)
        self._counter = 0

    def disclose(self, cycle: int, products: list[str]) -> list[Vulnerability]:
        """New records for *cycle* across *products*."""
        vectors, weights = zip(*_VECTOR_POOL)
        weights = np.array(weights) / sum(weights)
        records = []
        for product in products:
            count = int(self._rng.poisson(self._rate))
            for _ in range(count):
                self._counter += 1
                vector = str(self._rng.choice(vectors, p=weights))
                layer = (
                    SoftwareLayer.OPERATING_SYSTEM
                    if self._rng.random() < 0.4
                    else SoftwareLayer.APPLICATION
                )
                records.append(
                    Vulnerability(
                        cve_id=f"SYN-FEED-{cycle:02d}-{self._counter:04d}",
                        product=product,
                        layer=layer,
                        vector=vector,  # type: ignore[arg-type]
                        exploitable=bool(self._rng.random() < 0.7),
                        reconstructed=True,
                    )
                )
        return records


@dataclass(frozen=True)
class CycleOutcome:
    """Security state around one patch cycle."""

    cycle: int
    disclosed: int
    patched: int
    backlog: int
    before: SecurityMetrics
    after: SecurityMetrics


def simulate_patch_lifecycle(
    case_study: EnterpriseCaseStudy,
    design: RedundancyDesign,
    policy: PatchPolicy,
    cycles: int,
    feed: SyntheticDisclosureFeed | None = None,
) -> list[CycleOutcome]:
    """Run *cycles* consecutive patch cycles and track the attack surface.

    Cycle 0 starts from the case study's catalog.  Each cycle: the feed
    discloses new records on every product in use, the security metrics
    are computed (*before*), the policy patches its selection, and the
    metrics are recomputed (*after*).  Unpatched records accumulate as
    backlog into the next cycle — exactly the effect a
    criticals-only policy has on medium-severity CVEs.
    """
    if cycles < 1:
        raise EvaluationError(f"cycles must be >= 1, got {cycles}")
    if feed is None:
        feed = SyntheticDisclosureFeed()

    # current vulnerability list per role (replicas share their role's list)
    current: dict[str, list[Vulnerability]] = {
        role: list(case_study.role_vulnerabilities(role)) for role in design.roles
    }
    products_by_role = {
        role: list(case_study.roles[role].products) for role in design.roles
    }

    outcomes: list[CycleOutcome] = []
    for cycle in range(cycles):
        disclosed_count = 0
        if cycle > 0:  # cycle 0 evaluates the catalog as-is (the paper's case)
            all_products = sorted(
                {p for products in products_by_role.values() for p in products}
            )
            new_records = feed.disclose(cycle, all_products)
            disclosed_count = len(new_records)
            for role, products in products_by_role.items():
                current[role].extend(
                    record for record in new_records if record.product in products
                )

        before = _evaluate(case_study, design, current, patched=None)
        patched_ids = {
            role: policy.patched_cve_ids(current[role]) for role in current
        }
        after = _evaluate(case_study, design, current, patched=patched_ids)

        patched_count = len(set().union(*patched_ids.values()))
        for role in current:
            current[role] = [
                record
                for record in current[role]
                if record.cve_id not in patched_ids[role]
            ]
        backlog = sum(len(records) for records in current.values())
        outcomes.append(
            CycleOutcome(
                cycle=cycle,
                disclosed=disclosed_count,
                patched=patched_count,
                backlog=backlog,
                before=before,
                after=after,
            )
        )
    return outcomes


def _evaluate(
    case_study: EnterpriseCaseStudy,
    design: RedundancyDesign,
    current: dict[str, list[Vulnerability]],
    patched: dict[str, set[str]] | None,
) -> SecurityMetrics:
    from repro.harm import build_harm  # local import to avoid cycles

    host_vulns: dict[str, list[Vulnerability]] = {}
    for role in design.roles:
        for instance in design.instances(role):
            host_vulns[instance] = current[role]
    reachability = [
        (src_instance, dst_instance)
        for src_role, dst_role in case_study.topology.role_edges()
        if src_role in design.counts and dst_role in design.counts
        for src_instance in design.instances(src_role)
        for dst_instance in design.instances(dst_role)
    ]
    entry_hosts = [
        instance
        for role in case_study.topology.entry_roles
        if role in design.counts
        for instance in design.instances(role)
    ]
    targets = [
        instance
        for role in case_study.topology.target_roles
        if role in design.counts
        for instance in design.instances(role)
    ]
    # trees are flat ORs here: synthetic feeds have no expert tree shape
    harm = build_harm(host_vulns, reachability, entry_hosts, targets)
    if patched is not None:
        harm = harm.after_patching(
            {
                instance: patched[role]
                for role in design.roles
                for instance in design.instances(role)
            }
        )
    return evaluate_security(harm)

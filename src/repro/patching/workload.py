"""Derive patch-stage durations from the vulnerabilities a policy selects.

The availability model needs per-server patch rates; they follow from
*how many* vulnerabilities of each software layer the cycle fixes
(5 minutes per application vulnerability, 10 per OS vulnerability).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.availability.parameters import (
    APP_VULN_PATCH_MINUTES,
    OS_VULN_PATCH_MINUTES,
    PatchPipeline,
)
from repro.patching.policy import PatchPolicy
from repro.vulnerability.model import SoftwareLayer, Vulnerability

__all__ = ["PatchWorkload", "derive_workload", "derive_pipeline"]


@dataclass(frozen=True)
class PatchWorkload:
    """Counts of vulnerabilities a patch cycle fixes on one server."""

    application_count: int
    os_count: int

    @property
    def total(self) -> int:
        """Total vulnerabilities fixed."""
        return self.application_count + self.os_count

    @property
    def application_minutes(self) -> float:
        """Expected application patch duration in minutes."""
        return self.application_count * APP_VULN_PATCH_MINUTES

    @property
    def os_minutes(self) -> float:
        """Expected OS patch duration in minutes."""
        return self.os_count * OS_VULN_PATCH_MINUTES


def derive_workload(
    vulnerabilities: Iterable[Vulnerability], policy: PatchPolicy
) -> PatchWorkload:
    """Count the policy-selected vulnerabilities per software layer."""
    selected = policy.select(vulnerabilities)
    app_count = sum(
        1 for vuln in selected if vuln.layer is SoftwareLayer.APPLICATION
    )
    os_count = sum(
        1 for vuln in selected if vuln.layer is SoftwareLayer.OPERATING_SYSTEM
    )
    return PatchWorkload(application_count=app_count, os_count=os_count)


def derive_pipeline(
    vulnerabilities: Iterable[Vulnerability], policy: PatchPolicy
) -> PatchPipeline:
    """Build the availability model's patch pipeline for one server."""
    workload = derive_workload(vulnerabilities, policy)
    return PatchPipeline.from_vulnerability_counts(
        workload.application_count,
        workload.os_count,
        app_minutes_per_vuln=APP_VULN_PATCH_MINUTES,
        os_minutes_per_vuln=OS_VULN_PATCH_MINUTES,
    )

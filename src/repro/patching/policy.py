"""Patch policies: which vulnerabilities does a cycle fix."""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterable, Sequence

from repro._validation import check_non_negative
from repro.errors import ValidationError
from repro.vulnerability.model import Vulnerability

__all__ = [
    "PatchPolicy",
    "CriticalVulnerabilityPolicy",
    "PatchAllPolicy",
    "NoPatchPolicy",
    "ExplicitPolicy",
]


class PatchPolicy(ABC):
    """Strategy deciding which vulnerabilities to patch."""

    @abstractmethod
    def selects(self, vulnerability: Vulnerability) -> bool:
        """Whether *vulnerability* is fixed by this policy."""

    def select(self, vulnerabilities: Iterable[Vulnerability]) -> list[Vulnerability]:
        """The subset of *vulnerabilities* this policy patches."""
        return [vuln for vuln in vulnerabilities if self.selects(vuln)]

    def remaining(self, vulnerabilities: Iterable[Vulnerability]) -> list[Vulnerability]:
        """The subset left unpatched."""
        return [vuln for vuln in vulnerabilities if not self.selects(vuln)]

    def patched_cve_ids(self, vulnerabilities: Iterable[Vulnerability]) -> set[str]:
        """CVE identifiers of the patched subset."""
        return {vuln.cve_id for vuln in self.select(vulnerabilities)}


class CriticalVulnerabilityPolicy(PatchPolicy):
    """The paper's policy: patch base score strictly above a threshold.

    Examples
    --------
    >>> policy = CriticalVulnerabilityPolicy()
    >>> policy.threshold
    8.0
    """

    def __init__(self, threshold: float = 8.0) -> None:
        self.threshold = check_non_negative(threshold, "threshold")
        if self.threshold > 10.0:
            raise ValidationError(f"threshold must be <= 10, got {threshold}")

    def selects(self, vulnerability: Vulnerability) -> bool:
        return vulnerability.is_critical(self.threshold)

    def __repr__(self) -> str:
        return f"CriticalVulnerabilityPolicy(threshold={self.threshold})"


class PatchAllPolicy(PatchPolicy):
    """Patch everything (idealised complete patching)."""

    def selects(self, vulnerability: Vulnerability) -> bool:
        return True

    def __repr__(self) -> str:
        return "PatchAllPolicy()"


class NoPatchPolicy(PatchPolicy):
    """Patch nothing (the before-patch baseline)."""

    def selects(self, vulnerability: Vulnerability) -> bool:
        return False

    def __repr__(self) -> str:
        return "NoPatchPolicy()"


class ExplicitPolicy(PatchPolicy):
    """Patch an explicit CVE-identifier list."""

    def __init__(self, cve_ids: Sequence[str]) -> None:
        self.cve_ids = frozenset(cve_ids)
        if not self.cve_ids:
            raise ValidationError("ExplicitPolicy needs at least one CVE id")

    def selects(self, vulnerability: Vulnerability) -> bool:
        return vulnerability.cve_id in self.cve_ids

    def __repr__(self) -> str:
        return f"ExplicitPolicy({sorted(self.cve_ids)!r})"

"""Construct HARMs from reachability and vulnerability descriptions.

This is the "security model generator" of the paper's phase 2: it takes
the network topology (reachability information) and per-host
vulnerability information and produces the two-layered HARM.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from repro.attackgraph import AttackGraph
from repro.attacktree import AttackTree
from repro.attacktree.tree import BranchSpec
from repro.errors import HarmError
from repro.harm.model import Harm
from repro.vulnerability.model import Vulnerability

__all__ = ["build_harm"]


def build_harm(
    host_vulnerabilities: Mapping[str, Sequence[Vulnerability]],
    reachability: Iterable[tuple[str, str]],
    entry_hosts: Iterable[str],
    targets: Iterable[str],
    tree_specs: Mapping[str, Sequence[BranchSpec]] | None = None,
) -> Harm:
    """Build a two-layered HARM.

    Parameters
    ----------
    host_vulnerabilities:
        Host name -> vulnerability records present on that host.  Only
        records with ``exploitable=True`` enter the attack tree; a host
        whose records are all unexploitable gets no tree.
    reachability:
        (src, dst) pairs of host-to-host connectivity.
    entry_hosts:
        Hosts reachable directly by the external attacker.
    targets:
        Attack-goal hosts.
    tree_specs:
        Optional host name -> branch specification for the lower-layer
        tree (see :meth:`repro.attacktree.AttackTree.from_branches`).
        Hosts without a spec get a flat OR over their vulnerabilities.

    Examples
    --------
    >>> from repro.vulnerability import paper_database
    >>> db = paper_database()
    >>> harm = build_harm(
    ...     {"web1": db.for_product("Apache HTTP"),
    ...      "db1": db.for_product("MySQL")},
    ...     reachability=[("web1", "db1")],
    ...     entry_hosts=["web1"],
    ...     targets=["db1"])
    >>> harm.attack_surface().number_of_attack_paths()
    1
    """
    tree_specs = dict(tree_specs or {})
    graph = AttackGraph(hosts=host_vulnerabilities, targets=targets)
    for src, dst in reachability:
        graph.add_reachability(src, dst)
    for host in entry_hosts:
        if host not in host_vulnerabilities:
            raise HarmError(f"entry host {host!r} has no vulnerability entry")
        graph.add_entry_point(host)

    trees: dict[str, AttackTree | None] = {}
    for host, vulns in host_vulnerabilities.items():
        exploitable = [vuln for vuln in vulns if vuln.exploitable]
        if not exploitable:
            trees[host] = None
            continue
        spec = tree_specs.get(host)
        if spec is not None:
            _check_spec_covers(host, spec, exploitable)
        trees[host] = AttackTree.from_vulnerabilities(exploitable, spec)
    return Harm(graph, trees)


def _check_spec_covers(
    host: str, spec: Sequence[BranchSpec], vulns: Sequence[Vulnerability]
) -> None:
    named: set[str] = set()
    for branch in spec:
        if isinstance(branch, str):
            named.add(branch)
        else:
            named.update(branch)
    available = {vuln.cve_id for vuln in vulns}
    unknown = named - available
    if unknown:
        raise HarmError(
            f"tree spec for {host!r} names unknown vulnerabilities {sorted(unknown)}"
        )

"""The HARM container: reachability layer plus per-host attack trees."""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.attackgraph import AttackGraph
from repro.attacktree import AttackTree
from repro.errors import HarmError

__all__ = ["Harm"]


class Harm:
    """A two-layered HARM.

    Parameters
    ----------
    graph:
        The upper-layer attack graph (hosts, reachability, targets).
    trees:
        Mapping from host name to its lower-layer attack tree.  Hosts with
        no entry (or mapped to ``None``) have no remotely exploitable
        vulnerability; they are part of the network but not of the attack
        surface, so attack paths cannot traverse them.
    """

    def __init__(
        self,
        graph: AttackGraph,
        trees: Mapping[str, AttackTree | None],
    ) -> None:
        if not isinstance(graph, AttackGraph):
            raise HarmError(f"graph must be an AttackGraph, got {graph!r}")
        for host in trees:
            if not graph.has_host(host):
                raise HarmError(f"tree given for unknown host {host!r}")
        self._graph = graph
        self._trees: dict[str, AttackTree] = {
            host: tree for host, tree in trees.items() if tree is not None
        }

    # -- accessors ---------------------------------------------------------------

    @property
    def graph(self) -> AttackGraph:
        """The upper-layer attack graph (full network, unpruned)."""
        return self._graph

    @property
    def trees(self) -> dict[str, AttackTree]:
        """Host name -> attack tree, for exploitable hosts only."""
        return dict(self._trees)

    def tree_for(self, host: str) -> AttackTree:
        """The attack tree of *host*.

        Raises
        ------
        HarmError
            If *host* has no exploitable vulnerabilities (no tree).
        """
        try:
            return self._trees[host]
        except KeyError:
            raise HarmError(f"host {host!r} has no attack tree") from None

    def exploitable_hosts(self) -> list[str]:
        """Hosts that carry at least one exploitable vulnerability."""
        return [host for host in self._graph.hosts if host in self._trees]

    def attack_surface(self) -> AttackGraph:
        """The upper layer restricted to exploitable hosts.

        This is the graph on which attack paths, entry points and
        path-based metrics are computed: a host whose vulnerabilities are
        all patched can no longer be used as a stepping stone.
        """
        return self._graph.restricted_to(self.exploitable_hosts())

    # -- transformation -------------------------------------------------------------

    def after_patching(self, patched: Mapping[str, Iterable[str]]) -> "Harm":
        """A new HARM with the named vulnerabilities removed per host.

        *patched* maps host name to an iterable of leaf (CVE) names.  Trees
        that lose all leaves disappear, removing the host from the attack
        surface (the paper's DNS server after patch).
        """
        new_trees: dict[str, AttackTree | None] = {}
        for host, tree in self._trees.items():
            names = set(patched.get(host, ()))
            if names:
                new_trees[host] = tree.without_leaves(names)
            else:
                new_trees[host] = tree
        return Harm(self._graph, new_trees)

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"Harm(hosts={self._graph.number_of_hosts()}, "
            f"exploitable={len(self._trees)})"
        )

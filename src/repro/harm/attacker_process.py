"""Mean time to compromise (MTTC): a stochastic attacker process.

The HARM literature that the paper builds on (Hong & Kim and follow-ups)
complements the static metrics with a time dimension: model the attacker
as a CTMC over the attack surface, where moving onto a host takes an
exponential time with rate ``exploit_rate * ASP(host)`` — easy exploits
fall fast, hard ones slowly.  The mean time to first reach a target is
then a mean-time-to-absorption question, answered by
:mod:`repro.ctmc.absorbing`.

Model notes (documented assumptions):

- the attacker occupies one host at a time and only moves forward
  (privilege escalation is monotone along the reachability DAG);
- hosts that cannot reach a target are pruned first (a rational
  attacker does not wander into dead ends, and leaving them in would
  make the expectation infinite);
- when several next hosts are exploitable the attacker races them, i.e.
  transitions compete in the CTMC sense.
"""

from __future__ import annotations

from repro._validation import check_positive
from repro.attackgraph import ATTACKER
from repro.attacktree.semantics import GateSemantics, WORST_CASE
from repro.ctmc import Ctmc, mean_time_to_absorption
from repro.errors import HarmError
from repro.graphs import reachable_from
from repro.harm.model import Harm

__all__ = ["attacker_chain", "mean_time_to_compromise"]

_TARGET = "__compromised__"


def attacker_chain(
    harm: Harm,
    exploit_rate: float = 1.0,
    semantics: GateSemantics = WORST_CASE,
) -> Ctmc:
    """The attacker-progression CTMC over *harm*'s attack surface.

    States are the attacker's start plus every exploitable host that can
    still reach a target; entering any target host absorbs into the
    ``__compromised__`` state.
    """
    check_positive(exploit_rate, "exploit_rate")
    surface = harm.attack_surface()
    targets = set(surface.targets)
    if not targets:
        raise HarmError("the attack surface has no reachable targets")

    graph = surface.to_digraph()
    # keep only nodes that can still reach a target
    reverse = graph.reversed()
    can_reach = reachable_from(reverse, list(targets))
    if ATTACKER not in can_reach:
        raise HarmError("the attacker cannot reach any target")

    probabilities = {
        host: tree.probability(semantics) for host, tree in harm.trees.items()
    }

    states = [node for node in graph.nodes() if node in can_reach]
    chain = Ctmc(states + [_TARGET])
    for src in states:
        for dst in graph.successors(src):
            if dst not in can_reach:
                continue
            rate = exploit_rate * probabilities[dst]
            if rate <= 0.0:
                continue
            chain.add_rate(src, _TARGET if dst in targets else dst, rate)
    return chain


def mean_time_to_compromise(
    harm: Harm,
    exploit_rate: float = 1.0,
    semantics: GateSemantics = WORST_CASE,
) -> float:
    """Expected time until the attacker first compromises a target.

    *exploit_rate* sets the time scale: it is the rate at which a
    certain-success exploit (ASP = 1.0) lands, so the result is in
    ``1 / exploit_rate`` units.

    Raises
    ------
    HarmError
        If no target is reachable on the current attack surface (e.g.
        after patching removes every path) or some branch has zero
        success probability throughout.
    """
    chain = attacker_chain(harm, exploit_rate, semantics)
    try:
        return float(mean_time_to_absorption(chain, start=ATTACKER))
    except Exception as exc:
        raise HarmError(
            f"MTTC is undefined for this surface ({exc}); a zero-probability "
            "branch may block absorption"
        ) from exc

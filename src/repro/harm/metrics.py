"""Security metrics over a HARM.

Implements the paper's five metrics:

=======  =============================================  ========================
metric   definition                                     level structure
=======  =============================================  ========================
AIM      max over attack paths of the path impact       path impact = sum of
                                                        host-tree impacts
ASP      aggregation over paths of the path success     path probability =
         probability                                    product of host-tree
                                                        probabilities
NoEV     number of exploitable vulnerabilities          sum of tree leaves over
                                                        hosts (or unique CVEs)
NoAP     number of attack paths                         upper layer
NoEP     number of entry points                         upper layer
=======  =============================================  ========================

Two network-level aggregations for ASP are provided.  *worst case* takes
the most probable single path (max).  *independent paths* treats paths as
independent attempts, ``1 - prod(1 - p_path)``; this is the semantics
consistent with the paper's observations (redundancy increases ASP, and
designs whose extra replica is off-path keep the baseline value).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from math import prod

from repro.attacktree.semantics import GateSemantics, WORST_CASE
from repro.errors import HarmError
from repro.harm.model import Harm

__all__ = ["PathAggregation", "SecurityMetrics", "evaluate_security"]


class PathAggregation(str, Enum):
    """How per-path success probabilities combine into the network ASP."""

    WORST_CASE = "worst_case"
    INDEPENDENT_PATHS = "independent_paths"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class SecurityMetrics:
    """The paper's five metrics plus supporting detail.

    ``attack_paths`` holds the enumerated paths (host-name lists);
    ``path_impacts`` and ``path_probabilities`` align with it.  The extra
    metrics (``max_path_probability``, ``shortest_attack_path``,
    ``mean_path_length``, ``total_risk``, ``unique_cve_count``) come from
    the systems-security-metrics survey the paper cites.
    """

    attack_impact: float
    attack_success_probability: float
    number_of_exploitable_vulnerabilities: int
    number_of_attack_paths: int
    number_of_entry_points: int
    attack_paths: tuple[tuple[str, ...], ...]
    path_impacts: tuple[float, ...]
    path_probabilities: tuple[float, ...]
    max_path_probability: float
    shortest_attack_path: int
    mean_path_length: float
    total_risk: float
    unique_cve_count: int

    def as_dict(self) -> dict[str, float | int]:
        """The five headline metrics keyed by their paper abbreviations."""
        return {
            "AIM": self.attack_impact,
            "ASP": self.attack_success_probability,
            "NoEV": self.number_of_exploitable_vulnerabilities,
            "NoAP": self.number_of_attack_paths,
            "NoEP": self.number_of_entry_points,
        }


def evaluate_security(
    harm: Harm,
    semantics: GateSemantics = WORST_CASE,
    aggregation: PathAggregation = PathAggregation.INDEPENDENT_PATHS,
    max_path_length: int | None = None,
) -> SecurityMetrics:
    """Compute :class:`SecurityMetrics` for *harm*.

    Parameters
    ----------
    harm:
        The model to evaluate.
    semantics:
        AND/OR gate semantics for the lower-layer trees.
    aggregation:
        Network-level combination of path probabilities.
    max_path_length:
        Optional bound on path length (hosts per path) for large networks.
    """
    surface = harm.attack_surface()
    trees = harm.trees

    if surface.targets:
        paths = [tuple(p) for p in surface.attack_paths(max_path_length)]
    else:
        paths = []
    entry_points = surface.entry_points() if surface.targets else []

    host_impact: dict[str, float] = {}
    host_probability: dict[str, float] = {}
    for host, tree in trees.items():
        host_impact[host] = tree.impact(semantics)
        host_probability[host] = tree.probability(semantics)

    path_impacts = tuple(
        sum(host_impact[host] for host in path) for path in paths
    )
    path_probabilities = tuple(
        prod(host_probability[host] for host in path) for path in paths
    )

    aim = max(path_impacts, default=0.0)
    if not path_probabilities:
        asp = 0.0
        max_path_prob = 0.0
    else:
        max_path_prob = max(path_probabilities)
        if aggregation is PathAggregation.WORST_CASE:
            asp = max_path_prob
        elif aggregation is PathAggregation.INDEPENDENT_PATHS:
            asp = 1.0 - prod(1.0 - p for p in path_probabilities)
        else:  # pragma: no cover - exhaustive enum
            raise HarmError(f"unknown aggregation {aggregation!r}")

    noev = sum(len(tree.leaves()) for tree in trees.values())
    unique_cves = {leaf.name for tree in trees.values() for leaf in tree.leaves()}

    lengths = [len(path) for path in paths]
    total_risk = sum(
        impact * probability
        for impact, probability in zip(path_impacts, path_probabilities)
    )

    return SecurityMetrics(
        attack_impact=aim,
        attack_success_probability=asp,
        number_of_exploitable_vulnerabilities=noev,
        number_of_attack_paths=len(paths),
        number_of_entry_points=len(entry_points),
        attack_paths=tuple(paths),
        path_impacts=path_impacts,
        path_probabilities=path_probabilities,
        max_path_probability=max_path_prob,
        shortest_attack_path=min(lengths, default=0),
        mean_path_length=(sum(lengths) / len(lengths)) if lengths else 0.0,
        total_risk=total_risk,
        unique_cve_count=len(unique_cves),
    )

"""Two-layered Hierarchical Attack Representation Model (HARM).

The upper layer is an :class:`repro.attackgraph.AttackGraph` over hosts;
the lower layer attaches an :class:`repro.attacktree.AttackTree` to each
host.  :mod:`repro.harm.metrics` computes the paper's five security
metrics (AIM, ASP, NoEV, NoAP, NoEP) plus several survey-style extras.
"""

from repro.harm.attacker_process import attacker_chain, mean_time_to_compromise
from repro.harm.builder import build_harm
from repro.harm.metrics import (
    PathAggregation,
    SecurityMetrics,
    evaluate_security,
)
from repro.harm.model import Harm

__all__ = [
    "Harm",
    "SecurityMetrics",
    "PathAggregation",
    "evaluate_security",
    "build_harm",
    "attacker_chain",
    "mean_time_to_compromise",
]

"""Small argument-validation helpers used across the library.

These helpers raise :class:`repro.errors.ValidationError` with uniform,
descriptive messages.  They return the validated value so they can be used
inline in assignments.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import TypeVar

from repro.errors import ValidationError

T = TypeVar("T")

__all__ = [
    "require",
    "check_name",
    "check_probability",
    "check_non_negative",
    "check_positive",
    "check_positive_int",
    "check_non_negative_int",
    "check_rate",
    "check_in",
    "check_unique",
]


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValidationError` with *message* unless *condition*."""
    if not condition:
        raise ValidationError(message)


def check_name(value: object, what: str = "name") -> str:
    """Validate that *value* is a non-empty string and return it."""
    if not isinstance(value, str) or not value:
        raise ValidationError(f"{what} must be a non-empty string, got {value!r}")
    return value


def check_probability(value: object, what: str = "probability") -> float:
    """Validate that *value* lies in the closed interval [0, 1]."""
    number = _as_float(value, what)
    if not 0.0 <= number <= 1.0:
        raise ValidationError(f"{what} must be within [0, 1], got {number!r}")
    return number


def check_non_negative(value: object, what: str = "value") -> float:
    """Validate that *value* is a finite float >= 0."""
    number = _as_float(value, what)
    if number < 0.0:
        raise ValidationError(f"{what} must be >= 0, got {number!r}")
    return number


def check_positive(value: object, what: str = "value") -> float:
    """Validate that *value* is a finite float > 0."""
    number = _as_float(value, what)
    if number <= 0.0:
        raise ValidationError(f"{what} must be > 0, got {number!r}")
    return number


def check_positive_int(value: object, what: str = "value") -> int:
    """Validate that *value* is an integer >= 1."""
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        raise ValidationError(f"{what} must be a positive integer, got {value!r}")
    return value


def check_non_negative_int(value: object, what: str = "value") -> int:
    """Validate that *value* is an integer >= 0."""
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise ValidationError(f"{what} must be a non-negative integer, got {value!r}")
    return value


def check_rate(value: object, what: str = "rate") -> float:
    """Validate an exponential-transition rate (finite, strictly positive)."""
    return check_positive(value, what)


def check_in(value: T, allowed: Iterable[T], what: str = "value") -> T:
    """Validate that *value* is one of *allowed* and return it."""
    options = tuple(allowed)
    if value not in options:
        raise ValidationError(f"{what} must be one of {options!r}, got {value!r}")
    return value


def check_unique(values: Iterable[object], what: str = "values") -> None:
    """Validate that *values* contains no duplicates."""
    seen = set()
    for value in values:
        if value in seen:
            raise ValidationError(f"duplicate {what}: {value!r}")
        seen.add(value)


def _as_float(value: object, what: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValidationError(f"{what} must be a number, got {value!r}")
    number = float(value)
    if number != number or number in (float("inf"), float("-inf")):
        raise ValidationError(f"{what} must be finite, got {number!r}")
    return number

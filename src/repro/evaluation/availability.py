"""Availability evaluation of designs (lower-layer solve + aggregation +
upper-layer COA), with caching of the per-role and per-variant aggregates
and structure sharing of the upper-layer SRN solves."""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.availability.aggregation import ServiceAggregate, aggregate_service
from repro.availability.grouped import (
    CanonicalLayout,
    CoaStructure,
    SlotRef,
    coa_structure,
    design_layout,
)
from repro.availability.heterogeneous import HeterogeneousAvailabilityModel
from repro.availability.network import NetworkAvailabilityModel
from repro.availability.product_form import product_form_coa
from repro.enterprise.casestudy import EnterpriseCaseStudy
from repro.enterprise.design import DesignSpec
from repro.enterprise.heterogeneous import (
    HeterogeneousDesign,
    check_design_kind as _check_spec_kind,
)
from repro.enterprise.roles import ServerRole
from repro.errors import EvaluationError
from repro.patching.policy import PatchPolicy
from repro.vulnerability.database import VulnerabilityDatabase

__all__ = ["AvailabilityEvaluator", "scale_patch_rates"]


def scale_patch_rates(rates: np.ndarray, multiplier: float) -> np.ndarray:
    """Flat slot-rate vector with every *patch* entry scaled.

    Rate vectors interleave ``(patch, recovery)`` pairs per slot (see
    :meth:`AvailabilityEvaluator.slot_rates`); a campaign phase scales
    the even (patch) entries and leaves recovery untouched.  A
    multiplier of exactly 1.0 returns the input unchanged, keeping the
    stationary path bit-identical.
    """
    if multiplier == 1.0:
        return rates
    scaled = np.array(rates, dtype=float, copy=True)
    scaled[0::2] *= multiplier
    return scaled


class AvailabilityEvaluator:
    """Compute COA and related availability measures for designs.

    Accepts any :class:`~repro.enterprise.design.DesignSpec`.  The
    expensive part — solving each stack's lower-layer SRN and
    aggregating it into (lambda_eq, mu_eq) — depends only on the stack
    and the patch policy, not on the replica counts, so aggregates are
    cached per role (homogeneous designs) and per variant (heterogeneous
    designs) and reused across every design the evaluator scores.

    The upper-layer COA solve goes through the canonical
    pattern-grouped pipeline (:mod:`repro.availability.grouped`): each
    design maps onto the canonical layout of its transition pattern and,
    with *structure_sharing* on, designs with the same counts multiset
    share one reachability exploration and one
    :class:`~repro.ctmc.steady.BatchSteadySolver` — bit-identical to
    solving each design's canonical net on its own (the
    ``structure_sharing=False`` path), because the shared structure is a
    pure function of the layout.

    Parameters
    ----------
    case_study:
        The enterprise description.
    policy:
        The patch policy selecting which vulnerabilities get patched.
    database:
        Vulnerability database for variant lookups of heterogeneous
        designs (default: the case study's own database).
    structure_sharing:
        Share one canonical exploration per transition pattern across
        designs (default).  Turning it off re-explores per design —
        byte-identical results, more work; the sweep benchmarks use it
        as the baseline.
    """

    def __init__(
        self,
        case_study: EnterpriseCaseStudy,
        policy: PatchPolicy,
        database: VulnerabilityDatabase | None = None,
        structure_sharing: bool = True,
    ) -> None:
        self.case_study = case_study
        self.policy = policy
        self.database = database if database is not None else case_study.database
        self.structure_sharing = bool(structure_sharing)
        self._aggregates: dict[str, ServiceAggregate] = {}
        self._variant_aggregates: dict[tuple[str, ServerRole], ServiceAggregate] = {}
        self._structures: dict[tuple, CoaStructure] = {}
        self._aggregate_solves = 0
        self._structure_builds = 0

    # -- per-role aggregation (Table V) ------------------------------------

    def aggregate(self, role: str) -> ServiceAggregate:
        """The (cached) Table V row for *role*."""
        if role not in self._aggregates:
            parameters = self.case_study.server_parameters(role, self.policy)
            self._aggregate_solves += 1
            self._aggregates[role] = aggregate_service(parameters)
        return self._aggregates[role]

    def variant_aggregate(
        self, variant: ServerRole, role: str | None = None
    ) -> ServiceAggregate:
        """The (cached) lower-layer aggregate for a variant stack.

        *role* is the tier the variant serves; it only matters for
        component-rate override lookup (variant name first, then role).
        """
        key = (role or "", variant)
        if key not in self._variant_aggregates:
            parameters = self.case_study.variant_parameters(
                variant, self.policy, database=self.database, role=role
            )
            self._aggregate_solves += 1
            self._variant_aggregates[key] = aggregate_service(parameters)
        return self._variant_aggregates[key]

    def aggregates_for(self, design: DesignSpec) -> dict[str, ServiceAggregate]:
        """Aggregates for every role (or variant) the design uses."""
        if isinstance(design, HeterogeneousDesign):
            return {
                variant.name: self.variant_aggregate(variant, role)
                for role in design.roles
                for variant in design.variants(role)
            }
        _check_spec_kind(design)
        return {role: self.aggregate(role) for role in design.roles}

    # -- precomputed state (shared-memory workers) --------------------------

    def prime_aggregates(
        self,
        roles: Mapping[str, ServiceAggregate] | None = None,
        variants: Mapping[tuple[str, ServerRole], ServiceAggregate] | None = None,
    ) -> None:
        """Seed the aggregate caches with already-solved Table V rows.

        Used by the shared-memory sweep pipeline: the parent solves the
        lower-layer SRNs once and ships the rows to pool workers, which
        prime their evaluators instead of re-solving.
        """
        if roles:
            self._aggregates.update(roles)
        if variants:
            self._variant_aggregates.update(variants)

    def prime_structures(
        self, structures: Mapping[tuple, CoaStructure]
    ) -> None:
        """Seed the canonical-structure cache (keyed by layout tiers)."""
        self._structures.update(structures)

    # -- canonical upper layer ----------------------------------------------

    def design_slots(
        self, design: DesignSpec
    ) -> tuple[CanonicalLayout, tuple[SlotRef, ...]]:
        """The design's canonical layout and slot assignment."""
        return design_layout(design)

    def slot_rates(self, slots: Sequence[SlotRef]) -> np.ndarray:
        """Flat ``(patch, recovery)`` rate vector for canonical *slots*."""
        rates = np.empty(2 * len(slots), dtype=float)
        for position, slot in enumerate(slots):
            if slot.variant is not None:
                aggregate = self.variant_aggregate(slot.variant, slot.role)
            else:
                aggregate = self.aggregate(slot.role)
            rates[2 * position] = aggregate.patch_rate
            rates[2 * position + 1] = aggregate.recovery_rate
        return rates

    def coa_structure_for(
        self, design: DesignSpec
    ) -> tuple[CoaStructure, np.ndarray]:
        """The design's (possibly shared) structure and its rate vector."""
        layout, slots = self.design_slots(design)
        rates = self.slot_rates(slots)
        if self.structure_sharing:
            structure = self._structures.get(layout.tiers)
            if structure is not None:
                return structure, rates
        self._structure_builds += 1
        rate_pairs = [
            (float(rates[2 * i]), float(rates[2 * i + 1]))
            for i in range(len(slots))
        ]
        structure = coa_structure(layout, rate_pairs)
        if self.structure_sharing:
            self._structures[layout.tiers] = structure
        return structure, rates

    # -- per-design measures ------------------------------------------------

    def network_model(
        self, design: DesignSpec
    ) -> NetworkAvailabilityModel | HeterogeneousAvailabilityModel:
        """The upper-layer SRN model for *design*, per spec kind."""
        if isinstance(design, HeterogeneousDesign):
            return HeterogeneousAvailabilityModel(
                design.tiers(), self.aggregates_for(design)
            )
        _check_spec_kind(design)
        return NetworkAvailabilityModel(design.counts, self.aggregates_for(design))

    def coa(self, design: DesignSpec) -> float:
        """Capacity-oriented availability of *design*.

        Solved over the design's canonical layout, so every design with
        the same transition pattern shares one exploration when
        structure sharing is on.
        """
        structure, rates = self.coa_structure_for(design)
        return structure.coa(rates)

    def transient_coa(
        self,
        design: DesignSpec,
        times: Sequence[float],
        tolerance: float = 1e-10,
        method: str = "uniformisation",
    ) -> np.ndarray:
        """Expected COA of *design* at each time, from the all-up marking.

        One batched transient pass serves the whole time grid; the
        exploration and reward vector come from the (shared) canonical
        structure.  *method* selects the propagation backend (see
        :class:`~repro.ctmc.transient.BatchTransientSolver`).
        """
        structure, rates = self.coa_structure_for(design)
        return structure.transient_coa(
            rates, times, tolerance=tolerance, method=method
        )

    def transient_coa_piecewise(
        self,
        design: DesignSpec,
        times: Sequence[float],
        multipliers: Sequence[float],
        durations: Sequence[float],
        tolerance: float = 1e-10,
        method: str = "uniformisation",
    ) -> np.ndarray:
        """Expected COA under piecewise-constant patch-rate scaling.

        *multipliers* and *durations* describe one rollout phase each
        (the last duration is open-ended): during phase *p* every patch
        rate is scaled by ``multipliers[p]`` while recovery rates stay
        fixed.  Each phase is uniformised once over the design's
        (shared) canonical structure and the state vector is carried
        across phase boundaries, so the whole curve costs one batch
        pass per phase (:func:`repro.ctmc.transient.transient_piecewise`).
        A single phase at multiplier 1.0 is bit-identical to
        :meth:`transient_coa`.
        """
        from repro.ctmc.transient import transient_piecewise

        if len(multipliers) != len(durations) or not multipliers:
            raise EvaluationError(
                f"piecewise COA needs one duration per multiplier, got "
                f"{len(multipliers)} multipliers and {len(durations)} durations"
            )
        structure, rates = self.coa_structure_for(design)
        solvers: dict[float, object] = {}
        segments = []
        for multiplier, duration in zip(multipliers, durations):
            solver = solvers.get(multiplier)
            if solver is None:
                solver = structure.transient_solver(
                    scale_patch_rates(rates, multiplier),
                    tolerance=tolerance,
                    method=method,
                )
                solvers[multiplier] = solver
            segments.append((solver, duration))
        dists = transient_piecewise(segments, structure.initial, times)
        # Per-row dots, NOT `dists @ reward`: this mirrors the exact op
        # order of BatchTransientSolver.rewards (a gemv may sum in a
        # different order), which is what makes the single-phase
        # campaign bit-identical to transient_coa.
        out = np.empty(len(dists))
        for i in range(len(dists)):
            out[i] = float(dists[i] @ structure.reward)
        return out

    def coa_closed_form(self, design: DesignSpec) -> float:
        """Product-form COA (validation path, no SRN solve)."""
        if isinstance(design, HeterogeneousDesign):
            raise EvaluationError(
                "closed-form COA is defined for homogeneous designs only; "
                "heterogeneous tiers couple variants through the tier-up "
                "condition"
            )
        aggregates = self.aggregates_for(design)
        return product_form_coa(
            design.counts,
            {role: agg.patch_rate for role, agg in aggregates.items()},
            {role: agg.recovery_rate for role, agg in aggregates.items()},
        )

    def system_availability(self, design: DesignSpec) -> float:
        """P(every tier has a running server) for *design*."""
        return self.network_model(design).system_availability()

    def mean_time_to_outage(self, design: DesignSpec) -> float:
        """Expected hours from all-up until some tier first loses all
        servers, for any design kind (per-spec-kind model dispatch)."""
        from repro.availability.survivability import mean_time_to_outage

        return mean_time_to_outage(self.network_model(design))

    # -- instrumentation ------------------------------------------------------

    @property
    def solve_stats(self) -> dict[str, int]:
        """Counters for the benchmarks: lower-layer aggregate solves,
        canonical structures built (= reachability explorations) and
        structures currently shared."""
        return {
            "aggregate_solves": self._aggregate_solves,
            "structure_builds": self._structure_builds,
            "structures_cached": len(self._structures),
        }

"""Availability evaluation of designs (lower-layer solve + aggregation +
upper-layer COA), with caching of the per-role aggregates."""

from __future__ import annotations

from repro.availability.aggregation import ServiceAggregate, aggregate_service
from repro.availability.network import NetworkAvailabilityModel
from repro.availability.product_form import product_form_coa
from repro.enterprise.casestudy import EnterpriseCaseStudy
from repro.enterprise.design import RedundancyDesign
from repro.patching.policy import PatchPolicy

__all__ = ["AvailabilityEvaluator"]


class AvailabilityEvaluator:
    """Compute COA and related availability measures for designs.

    The expensive part — solving each role's lower-layer SRN and
    aggregating it into (lambda_eq, mu_eq) — depends only on the role and
    the patch policy, not on the replica counts, so aggregates are cached
    per role and reused across designs.
    """

    def __init__(
        self, case_study: EnterpriseCaseStudy, policy: PatchPolicy
    ) -> None:
        self.case_study = case_study
        self.policy = policy
        self._aggregates: dict[str, ServiceAggregate] = {}

    # -- per-role aggregation (Table V) ------------------------------------

    def aggregate(self, role: str) -> ServiceAggregate:
        """The (cached) Table V row for *role*."""
        if role not in self._aggregates:
            parameters = self.case_study.server_parameters(role, self.policy)
            self._aggregates[role] = aggregate_service(parameters)
        return self._aggregates[role]

    def aggregates_for(self, design: RedundancyDesign) -> dict[str, ServiceAggregate]:
        """Aggregates for every role the design uses."""
        return {role: self.aggregate(role) for role in design.roles}

    # -- per-design measures ------------------------------------------------

    def network_model(self, design: RedundancyDesign) -> NetworkAvailabilityModel:
        """The upper-layer SRN model for *design*."""
        return NetworkAvailabilityModel(design.counts, self.aggregates_for(design))

    def coa(self, design: RedundancyDesign) -> float:
        """Capacity-oriented availability of *design*."""
        return self.network_model(design).capacity_oriented_availability()

    def coa_closed_form(self, design: RedundancyDesign) -> float:
        """Product-form COA (validation path, no SRN solve)."""
        aggregates = self.aggregates_for(design)
        return product_form_coa(
            design.counts,
            {role: agg.patch_rate for role, agg in aggregates.items()},
            {role: agg.recovery_rate for role, agg in aggregates.items()},
        )

    def system_availability(self, design: RedundancyDesign) -> float:
        """P(every tier has a running server) for *design*."""
        return self.network_model(design).system_availability()

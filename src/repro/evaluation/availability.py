"""Availability evaluation of designs (lower-layer solve + aggregation +
upper-layer COA), with caching of the per-role and per-variant aggregates."""

from __future__ import annotations

from repro.availability.aggregation import ServiceAggregate, aggregate_service
from repro.availability.heterogeneous import HeterogeneousAvailabilityModel
from repro.availability.network import NetworkAvailabilityModel
from repro.availability.product_form import product_form_coa
from repro.enterprise.casestudy import EnterpriseCaseStudy
from repro.enterprise.design import DesignSpec
from repro.enterprise.heterogeneous import (
    HeterogeneousDesign,
    check_design_kind as _check_spec_kind,
)
from repro.enterprise.roles import ServerRole
from repro.errors import EvaluationError
from repro.patching.policy import PatchPolicy
from repro.vulnerability.database import VulnerabilityDatabase

__all__ = ["AvailabilityEvaluator"]


class AvailabilityEvaluator:
    """Compute COA and related availability measures for designs.

    Accepts any :class:`~repro.enterprise.design.DesignSpec`.  The
    expensive part — solving each stack's lower-layer SRN and
    aggregating it into (lambda_eq, mu_eq) — depends only on the stack
    and the patch policy, not on the replica counts, so aggregates are
    cached per role (homogeneous designs) and per variant (heterogeneous
    designs) and reused across every design the evaluator scores.

    Parameters
    ----------
    case_study:
        The enterprise description.
    policy:
        The patch policy selecting which vulnerabilities get patched.
    database:
        Vulnerability database for variant lookups of heterogeneous
        designs (default: the case study's own database).
    """

    def __init__(
        self,
        case_study: EnterpriseCaseStudy,
        policy: PatchPolicy,
        database: VulnerabilityDatabase | None = None,
    ) -> None:
        self.case_study = case_study
        self.policy = policy
        self.database = database if database is not None else case_study.database
        self._aggregates: dict[str, ServiceAggregate] = {}
        self._variant_aggregates: dict[tuple[str, ServerRole], ServiceAggregate] = {}

    # -- per-role aggregation (Table V) ------------------------------------

    def aggregate(self, role: str) -> ServiceAggregate:
        """The (cached) Table V row for *role*."""
        if role not in self._aggregates:
            parameters = self.case_study.server_parameters(role, self.policy)
            self._aggregates[role] = aggregate_service(parameters)
        return self._aggregates[role]

    def variant_aggregate(
        self, variant: ServerRole, role: str | None = None
    ) -> ServiceAggregate:
        """The (cached) lower-layer aggregate for a variant stack.

        *role* is the tier the variant serves; it only matters for
        component-rate override lookup (variant name first, then role).
        """
        key = (role or "", variant)
        if key not in self._variant_aggregates:
            parameters = self.case_study.variant_parameters(
                variant, self.policy, database=self.database, role=role
            )
            self._variant_aggregates[key] = aggregate_service(parameters)
        return self._variant_aggregates[key]

    def aggregates_for(self, design: DesignSpec) -> dict[str, ServiceAggregate]:
        """Aggregates for every role (or variant) the design uses."""
        if isinstance(design, HeterogeneousDesign):
            return {
                variant.name: self.variant_aggregate(variant, role)
                for role in design.roles
                for variant in design.variants(role)
            }
        _check_spec_kind(design)
        return {role: self.aggregate(role) for role in design.roles}

    # -- per-design measures ------------------------------------------------

    def network_model(
        self, design: DesignSpec
    ) -> NetworkAvailabilityModel | HeterogeneousAvailabilityModel:
        """The upper-layer SRN model for *design*, per spec kind."""
        if isinstance(design, HeterogeneousDesign):
            return HeterogeneousAvailabilityModel(
                design.tiers(), self.aggregates_for(design)
            )
        _check_spec_kind(design)
        return NetworkAvailabilityModel(design.counts, self.aggregates_for(design))

    def coa(self, design: DesignSpec) -> float:
        """Capacity-oriented availability of *design*."""
        return self.network_model(design).capacity_oriented_availability()

    def coa_closed_form(self, design: DesignSpec) -> float:
        """Product-form COA (validation path, no SRN solve)."""
        if isinstance(design, HeterogeneousDesign):
            raise EvaluationError(
                "closed-form COA is defined for homogeneous designs only; "
                "heterogeneous tiers couple variants through the tier-up "
                "condition"
            )
        aggregates = self.aggregates_for(design)
        return product_form_coa(
            design.counts,
            {role: agg.patch_rate for role, agg in aggregates.items()},
            {role: agg.recovery_rate for role, agg in aggregates.items()},
        )

    def system_availability(self, design: DesignSpec) -> float:
        """P(every tier has a running server) for *design*."""
        return self.network_model(design).system_availability()

"""Combined security/availability evaluation (the paper's phase 3).

:class:`SecurityEvaluator` and :class:`AvailabilityEvaluator` wrap the
two model pipelines; :func:`evaluate_design` produces the
before/after-patch snapshot a design gets in Figs. 6-7;
:mod:`repro.evaluation.requirements` implements the Eq. (3) and Eq. (4)
decision functions; :mod:`repro.evaluation.report` renders the paper's
tables; :mod:`repro.evaluation.charts` produces the scatter/radar data
(and ASCII renderings); :mod:`repro.evaluation.sweep` explores larger
design spaces — homogeneous replica counts and heterogeneous variant
assignments alike, unified behind the
:class:`~repro.enterprise.design.DesignSpec` protocol;
:mod:`repro.evaluation.engine` scales those sweeps with caching and
pluggable (serial/thread/process-pool) executors — including warm
persistent pools; :mod:`repro.evaluation.service` keeps one warm engine
resident behind an HTTP/JSON API (``repro serve``);
:mod:`repro.evaluation.cost` adds the operational-cost
extension sketched in Section V.
"""

from repro.evaluation.artifacts import write_experiment_bundle
from repro.evaluation.availability import AvailabilityEvaluator
from repro.evaluation.cache import PersistentEvaluationCache
from repro.evaluation.combined import (
    DesignEvaluation,
    DesignSnapshot,
    evaluate_design,
    evaluate_designs,
    evaluate_designs_shared,
)
from repro.evaluation.engine import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    SweepEngine,
    ThreadExecutor,
)
from repro.evaluation.requirements import (
    MultiMetricRequirement,
    TwoMetricRequirement,
    satisfying_designs,
)
from repro.evaluation.security import SecurityEvaluator
from repro.evaluation.service import EvaluationService, ServiceClient
from repro.evaluation.sensitivity import SensitivityEntry, coa_sensitivity
from repro.evaluation.sweep import (
    enumerate_designs,
    enumerate_heterogeneous_designs,
    pareto_front,
    pareto_front_loop,
    sweep_designs,
)
from repro.evaluation.timeline import (
    DesignTimeline,
    default_time_grid,
    evaluate_timeline,
    evaluate_timelines,
    evaluate_timelines_shared,
)

__all__ = [
    "SecurityEvaluator",
    "AvailabilityEvaluator",
    "DesignSnapshot",
    "DesignEvaluation",
    "evaluate_design",
    "evaluate_designs",
    "evaluate_designs_shared",
    "SweepEngine",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "TwoMetricRequirement",
    "MultiMetricRequirement",
    "satisfying_designs",
    "enumerate_designs",
    "enumerate_heterogeneous_designs",
    "sweep_designs",
    "pareto_front",
    "pareto_front_loop",
    "SensitivityEntry",
    "coa_sensitivity",
    "write_experiment_bundle",
    "DesignTimeline",
    "default_time_grid",
    "evaluate_timeline",
    "evaluate_timelines",
    "evaluate_timelines_shared",
    "PersistentEvaluationCache",
    "EvaluationService",
    "ServiceClient",
]

"""The paper's requirement functions (Eqs. (3) and (4)).

Eq. (3) accepts a design when ``ASP <= phi`` and ``COA >= psi``.
Eq. (4) additionally bounds NoEV (xi), NoAP (omega) and NoEP (kappa).
Both return 1 (satisfied) or 0, here exposed as booleans with the same
intersection semantics.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro._validation import check_non_negative, check_probability
from repro.evaluation.combined import DesignEvaluation, DesignSnapshot

__all__ = [
    "TwoMetricRequirement",
    "MultiMetricRequirement",
    "satisfying_designs",
    "PAPER_REGION_1_TWO_METRIC",
    "PAPER_REGION_2_TWO_METRIC",
    "PAPER_REGION_1_MULTI_METRIC",
    "PAPER_REGION_2_MULTI_METRIC",
]


@dataclass(frozen=True)
class TwoMetricRequirement:
    """Eq. (3): an ASP upper bound (phi) and a COA lower bound (psi)."""

    asp_upper: float
    coa_lower: float
    label: str = ""

    def __post_init__(self) -> None:
        check_probability(self.asp_upper, "asp_upper (phi)")
        check_probability(self.coa_lower, "coa_lower (psi)")

    def satisfied_by(self, snapshot: DesignSnapshot) -> bool:
        """Eq. (3) evaluated on one design snapshot."""
        return (
            snapshot.security.attack_success_probability <= self.asp_upper
            and snapshot.coa >= self.coa_lower
        )


@dataclass(frozen=True)
class MultiMetricRequirement:
    """Eq. (4): bounds on ASP, NoEV, NoAP, NoEP and COA."""

    asp_upper: float
    noev_upper: int
    noap_upper: int
    noep_upper: int
    coa_lower: float
    label: str = ""

    def __post_init__(self) -> None:
        check_probability(self.asp_upper, "asp_upper (phi)")
        check_non_negative(self.noev_upper, "noev_upper (xi)")
        check_non_negative(self.noap_upper, "noap_upper (omega)")
        check_non_negative(self.noep_upper, "noep_upper (kappa)")
        check_probability(self.coa_lower, "coa_lower (psi)")

    def satisfied_by(self, snapshot: DesignSnapshot) -> bool:
        """Eq. (4) evaluated on one design snapshot."""
        security = snapshot.security
        return (
            security.attack_success_probability <= self.asp_upper
            and security.number_of_exploitable_vulnerabilities <= self.noev_upper
            and security.number_of_attack_paths <= self.noap_upper
            and security.number_of_entry_points <= self.noep_upper
            and snapshot.coa >= self.coa_lower
        )


def satisfying_designs(
    evaluations: Iterable[DesignEvaluation],
    requirement: TwoMetricRequirement | MultiMetricRequirement,
    after_patch: bool = True,
) -> list[DesignEvaluation]:
    """Designs whose (after-patch, by default) snapshot satisfies
    *requirement*, preserving input order."""
    selected = []
    for evaluation in evaluations:
        snapshot = evaluation.after if after_patch else evaluation.before
        if requirement.satisfied_by(snapshot):
            selected.append(evaluation)
    return selected


#: Section IV-A region 1: phi = 0.2, psi = 0.9962.
PAPER_REGION_1_TWO_METRIC = TwoMetricRequirement(0.2, 0.9962, label="region 1")
#: Section IV-A region 2: phi = 0.1, psi = 0.9961.
PAPER_REGION_2_TWO_METRIC = TwoMetricRequirement(0.1, 0.9961, label="region 2")
#: Section IV-B region 1: phi=0.2, xi=9, omega=2, kappa=1, psi=0.9962.
PAPER_REGION_1_MULTI_METRIC = MultiMetricRequirement(
    0.2, 9, 2, 1, 0.9962, label="region 1"
)
#: Section IV-B region 2: phi=0.1, xi=7, omega=1, kappa=1, psi=0.9961.
PAPER_REGION_2_MULTI_METRIC = MultiMetricRequirement(
    0.1, 7, 1, 1, 0.9961, label="region 2"
)

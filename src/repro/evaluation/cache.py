"""Persistent on-disk cache for design evaluations (sqlite-backed).

The sweep engine's in-memory memo dies with the engine instance; this
module persists evaluated :class:`~repro.evaluation.combined.DesignEvaluation`
and :class:`~repro.evaluation.timeline.DesignTimeline` records across
processes, keyed by ``DesignSpec.cache_key()`` plus a fingerprint of the
evaluation context (case study, policy, database), so repeated CLI
sweeps across sessions only pay for designs not seen before.

Payloads are pickled value objects — the same objects that already
cross the process-pool boundary.  A *scope* column separates record
kinds (``"evaluation"`` vs per-time-grid ``"timeline"`` entries) so one
cache file serves both ``repro sweep --cache`` and ``repro timeline
--cache``.
"""

from __future__ import annotations

import hashlib
import pickle
import sqlite3
from collections.abc import Hashable

from repro.errors import EvaluationError

__all__ = ["PersistentEvaluationCache", "context_fingerprint"]


def context_fingerprint(*parts: object) -> str:
    """A stable digest of the evaluation context.

    Cached results are only valid for the exact case study / policy /
    database they were computed under; the fingerprint keys them apart.
    All evaluation-context objects are plain picklable value objects
    (they already cross the process-pool boundary), and each is pickled
    independently so one unpicklable part fails loudly here rather than
    silently aliasing distinct contexts.
    """
    digest = hashlib.sha256()
    for part in parts:
        try:
            digest.update(pickle.dumps(part, protocol=4))
        except Exception as exc:
            raise EvaluationError(
                f"cannot fingerprint evaluation context part {type(part).__name__}: "
                f"{exc}"
            ) from exc
    return digest.hexdigest()[:32]


class PersistentEvaluationCache:
    """A ``(scope, key) -> pickled payload`` store in one sqlite file.

    Parameters
    ----------
    path:
        The sqlite database file; created (with its table) on first use.

    Examples
    --------
    >>> import tempfile, os
    >>> path = os.path.join(tempfile.mkdtemp(), "cache.sqlite")
    >>> cache = PersistentEvaluationCache(path)
    >>> cache.put("evaluation", "k1", {"coa": 0.99})
    >>> cache.get("evaluation", "k1")
    {'coa': 0.99}
    >>> cache.get("evaluation", "missing") is None
    True
    """

    def __init__(self, path) -> None:
        self.path = str(path)
        try:
            self._conn = sqlite3.connect(self.path)
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS entries ("
                "  scope TEXT NOT NULL,"
                "  key TEXT NOT NULL,"
                "  payload BLOB NOT NULL,"
                "  PRIMARY KEY (scope, key)"
                ")"
            )
            self._conn.commit()
        except sqlite3.Error as exc:
            raise EvaluationError(
                f"cannot open evaluation cache at {self.path!r}: {exc}"
            ) from exc

    @staticmethod
    def entry_key(fingerprint: str, *parts: Hashable) -> str:
        """The canonical text key for a cache entry."""
        return repr((fingerprint, *parts))

    def get(self, scope: str, key: str):
        """The stored payload, or ``None`` on a miss (or stale pickle)."""
        try:
            row = self._conn.execute(
                "SELECT payload FROM entries WHERE scope = ? AND key = ?",
                (scope, key),
            ).fetchone()
        except sqlite3.Error as exc:
            raise EvaluationError(
                f"evaluation cache read failed ({self.path!r}): {exc}"
            ) from exc
        if row is None:
            return None
        try:
            return pickle.loads(row[0])
        except Exception:
            # A payload written by an incompatible library version is a
            # miss, not an error: the caller recomputes and overwrites.
            return None

    def put(self, scope: str, key: str, value: object) -> None:
        """Store (or replace) *value* under ``(scope, key)``."""
        payload = pickle.dumps(value, protocol=4)
        try:
            self._conn.execute(
                "INSERT OR REPLACE INTO entries (scope, key, payload) "
                "VALUES (?, ?, ?)",
                (scope, key, sqlite3.Binary(payload)),
            )
            self._conn.commit()
        except sqlite3.Error as exc:
            raise EvaluationError(
                f"evaluation cache write failed ({self.path!r}): {exc}"
            ) from exc

    def __len__(self) -> int:
        return int(
            self._conn.execute("SELECT COUNT(*) FROM entries").fetchone()[0]
        )

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        self._conn.close()

    def __enter__(self) -> "PersistentEvaluationCache":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

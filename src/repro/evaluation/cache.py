"""Persistent on-disk cache for design evaluations (sqlite-backed).

The sweep engine's in-memory memo dies with the engine instance; this
module persists evaluated :class:`~repro.evaluation.combined.DesignEvaluation`
and :class:`~repro.evaluation.timeline.DesignTimeline` records across
processes, keyed by ``DesignSpec.cache_key()`` plus a fingerprint of the
evaluation context (case study, policy, database), so repeated CLI
sweeps across sessions only pay for designs not seen before.

Payloads are pickled value objects — the same objects that already
cross the process-pool boundary.  A *scope* column separates record
kinds (``"evaluation"`` vs per-time-grid ``"timeline"`` entries) so one
cache file serves both ``repro sweep --cache`` and ``repro timeline
--cache``.

The cache is bounded: pass ``max_entries`` and/or ``max_bytes`` and
every write evicts least-recently-used entries (reads refresh recency)
until the store fits.  ``repro cache`` exposes the maintenance surface
from the command line: ``stats``, ``purge`` (everything, one scope, or
one context fingerprint) and ``trim`` to given bounds.

Concurrency guarantees
----------------------
One :class:`PersistentEvaluationCache` instance may be shared freely
across threads: the connection is opened with
``check_same_thread=False`` and an internal lock serialises every
statement-and-commit pair, so interleaved ``get``/``put``/maintenance
calls from a multi-threaded service (``repro serve``) never observe a
half-committed write or a cross-thread sqlite error.  Multiple
*processes* may also share one cache file — each opens its own
instance: the database runs in WAL journal mode (readers never block
the writer) with a busy timeout, so a contended write retries for up to
:data:`_BUSY_TIMEOUT_S` seconds instead of surfacing ``database is
locked``.  That multi-process safety is what makes the sqlite store
the *shared result tier* of the sharded service: engine lanes within
one ``repro serve`` process, the shard processes behind ``repro shard
--endpoints ...`` and restarted services all read and write the same
per-design records, so a failed-over shard request finds the dead
shard's finished designs already on disk.  Using a cache after :meth:`~PersistentEvaluationCache.close`
(which is idempotent) raises :class:`~repro.errors.EvaluationError`
with a clear message rather than a raw ``sqlite3.ProgrammingError``.

Degraded mode
-------------
A cache is an accelerator, never a correctness dependency — so sqlite
contention must not fail a sweep.  ``busy``/``locked`` errors that
survive the busy timeout are retried under a bounded
:class:`~repro.resilience.RetryPolicy`; if they persist, the instance
*degrades*: it stops touching the database and serves reads/writes
from a process-local dict instead (``repro_cache_degraded`` gauge set
to 1, :attr:`~PersistentEvaluationCache.degraded` property, surfaced
through ``stats()`` and the service's ``/healthz``).  Degradation is
one-way for the instance's lifetime — flapping between disk and memory
would serve neither tier predictably.
"""

from __future__ import annotations

import hashlib
import logging
import pickle
import sqlite3
import threading
from collections.abc import Hashable
from contextlib import contextmanager

from repro import observability
from repro.errors import EvaluationError
from repro.resilience.faults import fault_point
from repro.resilience.retry import RetryPolicy

_logger = logging.getLogger(__name__)

_DISK_LOOKUPS = observability.counter(
    "repro_disk_cache_requests_total",
    "Persistent (sqlite) cache lookups by outcome.",
)
_DISK_HITS = _DISK_LOOKUPS.labels(outcome="hit")
_DISK_MISSES = _DISK_LOOKUPS.labels(outcome="miss")
_DISK_STALE = _DISK_LOOKUPS.labels(outcome="stale")
_DISK_WRITES = observability.counter(
    "repro_disk_cache_writes_total",
    "Persistent (sqlite) cache entries written.",
).labels()
_DEGRADED = observability.gauge(
    "repro_cache_degraded",
    "Whether the persistent cache fell back to memory-only mode (1) "
    "after exhausting its sqlite contention retries.",
).labels()

__all__ = ["PersistentEvaluationCache", "context_fingerprint"]

#: Salted into every context fingerprint.  Bump when the evaluation
#: pipeline's numerics change (even at the last-ulp level) or when a
#: cached payload class grows fields, so stale cache files miss instead
#: of mixing results from two pipelines: version 2 = the PR 4
#: canonical-structure COA path; version 3 = the campaign-aware
#: ``DesignTimeline`` (new ``campaign``/``phase_starts`` fields — old
#: pickles lack them, so they must not be served); version 4 = the
#: sparse-first solver dispatch (method-aware timeline keys, iterative
#: steady-state auto path above the size cutoff — entries keyed before
#: the dispatch change must miss cleanly).
_PIPELINE_VERSION = b"repro-evaluation-pipeline-v4"

#: How long a contended statement retries before sqlite gives up with
#: ``database is locked`` — generous, because a competing writer only
#: holds the lock for one small INSERT/UPDATE plus commit.
_BUSY_TIMEOUT_S = 10.0


def context_fingerprint(*parts: object) -> str:
    """A stable digest of the evaluation context.

    Cached results are only valid for the exact case study / policy /
    database they were computed under — and for the exact evaluation
    pipeline (:data:`_PIPELINE_VERSION` is salted in, so entries written
    by a numerically different release read as misses).  All
    evaluation-context objects are plain picklable value objects (they
    already cross the process-pool boundary), and each is pickled
    independently so one unpicklable part fails loudly here rather than
    silently aliasing distinct contexts.
    """
    digest = hashlib.sha256()
    digest.update(_PIPELINE_VERSION)
    for part in parts:
        try:
            digest.update(pickle.dumps(part, protocol=4))
        except Exception as exc:
            raise EvaluationError(
                f"cannot fingerprint evaluation context part {type(part).__name__}: "
                f"{exc}"
            ) from exc
    return digest.hexdigest()[:32]


class PersistentEvaluationCache:
    """A ``(scope, key) -> pickled payload`` store in one sqlite file.

    Parameters
    ----------
    path:
        The sqlite database file; created (with its table) on first use.
        Files written by earlier versions are migrated in place (the
        recency/size columns are added on open).
    max_entries:
        Optional cap on the number of stored entries; writes evict the
        least-recently-used entries beyond it.
    max_bytes:
        Optional cap on the summed payload size, enforced the same way.

    Examples
    --------
    >>> import tempfile, os
    >>> path = os.path.join(tempfile.mkdtemp(), "cache.sqlite")
    >>> cache = PersistentEvaluationCache(path)
    >>> cache.put("evaluation", "k1", {"coa": 0.99})
    >>> cache.get("evaluation", "k1")
    {'coa': 0.99}
    >>> cache.get("evaluation", "missing") is None
    True
    """

    #: Contention recovery: three attempts, 50 ms → 100 ms backoff.
    DEFAULT_RETRY = RetryPolicy(attempts=3, base_delay=0.05)

    def __init__(
        self,
        path,
        max_entries: int | None = None,
        max_bytes: int | None = None,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        self.path = str(path)
        for bound, name in ((max_entries, "max_entries"), (max_bytes, "max_bytes")):
            if bound is not None and bound < 1:
                raise EvaluationError(f"{name} must be >= 1, got {bound}")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.retry_policy = retry_policy or self.DEFAULT_RETRY
        self._degraded = False
        #: Memory-only fallback store once degraded: pickled payloads
        #: keyed like the table, so served values stay copies.
        self._fallback: dict[tuple[str, str], bytes] = {}
        self._seq: int | None = None
        # One instance may be shared across service threads: the lock
        # serialises every statement+commit pair, and the connection is
        # opened thread-agnostic (sqlite objects are only ever touched
        # under the lock).  `timeout` is sqlite's busy timeout: writes
        # contending with another *process* on the same file retry
        # instead of raising `database is locked`.
        self._lock = threading.Lock()
        self._closed = False
        try:
            self._conn = sqlite3.connect(
                self.path, check_same_thread=False, timeout=_BUSY_TIMEOUT_S
            )
            # WAL lets concurrent readers proceed while one process
            # writes; best-effort because some filesystems (network
            # mounts) refuse it — the busy timeout still applies then.
            try:
                self._conn.execute("PRAGMA journal_mode=WAL")
            except sqlite3.Error:
                pass
            self._conn.execute(
                f"PRAGMA busy_timeout={int(_BUSY_TIMEOUT_S * 1000)}"
            )
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS entries ("
                "  scope TEXT NOT NULL,"
                "  key TEXT NOT NULL,"
                "  payload BLOB NOT NULL,"
                "  PRIMARY KEY (scope, key)"
                ")"
            )
            self._migrate()
            self._conn.commit()
        except sqlite3.Error as exc:
            raise EvaluationError(
                f"cannot open evaluation cache at {self.path!r}: {exc}"
            ) from exc

    def _migrate(self) -> None:
        """Add the recency/size columns to pre-LRU cache files."""
        columns = {
            row[1]
            for row in self._conn.execute("PRAGMA table_info(entries)")
        }
        try:
            if "used_seq" not in columns:
                self._conn.execute(
                    "ALTER TABLE entries ADD COLUMN used_seq INTEGER NOT NULL DEFAULT 0"
                )
            if "size_bytes" not in columns:
                self._conn.execute(
                    "ALTER TABLE entries ADD COLUMN size_bytes INTEGER NOT NULL DEFAULT 0"
                )
                self._conn.execute(
                    "UPDATE entries SET size_bytes = LENGTH(payload)"
                )
        except sqlite3.OperationalError as exc:
            # Two processes opening one pre-LRU file race the ALTERs;
            # the loser's "duplicate column name" means the winner
            # already migrated — not an error.
            if "duplicate column name" not in str(exc):
                raise

    @contextmanager
    def _locked(self, operation: str):
        """Serialise one statement+commit; reject use after close."""
        with self._lock:
            if self._closed:
                raise EvaluationError(
                    f"evaluation cache at {self.path!r} is closed; "
                    f"cannot {operation} (create a new "
                    "PersistentEvaluationCache to reopen it)"
                )
            yield

    @staticmethod
    def entry_key(fingerprint: str, *parts: Hashable) -> str:
        """The canonical text key for a cache entry."""
        return repr((fingerprint, *parts))

    # -- degraded-mode plumbing ----------------------------------------------

    @property
    def degraded(self) -> bool:
        """Whether the cache fell back to memory-only operation."""
        return self._degraded

    @staticmethod
    def _is_contention(exc: BaseException) -> bool:
        if not isinstance(exc, sqlite3.OperationalError):
            return False
        text = str(exc).lower()
        return "locked" in text or "busy" in text

    def _rollback(self, *_ignored) -> None:
        """Best-effort rollback between contention retries."""
        try:
            self._conn.rollback()
        except sqlite3.Error:
            pass

    def _degrade(self, operation: str, exc: BaseException) -> None:
        self._degraded = True
        _DEGRADED.set(1)
        _logger.warning(
            "evaluation cache at %r degraded to memory-only after "
            "persistent sqlite contention on %s: %s",
            self.path,
            operation,
            exc,
        )

    def _next_seq(self) -> int:
        # The counter lives in memory after one MAX scan at first use;
        # concurrent writers may hand out equal sequence numbers, which
        # only makes their entries tie in LRU order — harmless.
        if self._seq is None:
            row = self._conn.execute(
                "SELECT IFNULL(MAX(used_seq), 0) FROM entries"
            ).fetchone()
            self._seq = int(row[0])
        self._seq += 1
        return self._seq

    def get(self, scope: str, key: str):
        """The stored payload, or ``None`` on a miss (or stale pickle).

        A hit refreshes the entry's recency (best effort), so hot
        entries survive LRU trimming.  Contended reads retry under the
        cache's :class:`~repro.resilience.RetryPolicy`; persistent
        contention degrades the instance to memory-only (a miss here,
        never a failed sweep).
        """
        if self._degraded:
            row = (
                (self._fallback[(scope, key)],)
                if (scope, key) in self._fallback
                else None
            )
        else:
            try:
                row = self.retry_policy.call(
                    lambda: self._get_row(scope, key),
                    retry_on=(sqlite3.OperationalError,),
                    should_retry=self._is_contention,
                    before_retry=self._rollback,
                )
            except sqlite3.Error as exc:
                if self._is_contention(exc):
                    self._degrade("get", exc)
                    _DISK_MISSES.inc()
                    return None
                raise EvaluationError(
                    f"evaluation cache read failed ({self.path!r}): {exc}"
                ) from exc
        if row is None:
            _DISK_MISSES.inc()
            return None
        try:
            value = pickle.loads(row[0])
        except Exception:
            # A payload written by an incompatible library version is a
            # miss, not an error: the caller recomputes and overwrites.
            _DISK_STALE.inc()
            _logger.debug(
                "stale cache payload for (%s, %s…): treating as miss",
                scope,
                key[:16],
            )
            return None
        _DISK_HITS.inc()
        return value

    def _get_row(self, scope: str, key: str):
        with self._locked("get"):
            fault_point(
                "cache.read",
                error=sqlite3.OperationalError("database is locked (injected)"),
            )
            row = self._conn.execute(
                "SELECT payload FROM entries WHERE scope = ? AND key = ?",
                (scope, key),
            ).fetchone()
            if row is not None:
                # Recency tracking must not turn reads into hard writes: a
                # read-only or contended cache file still serves hits.
                try:
                    self._conn.execute(
                        "UPDATE entries SET used_seq = ? WHERE scope = ? AND key = ?",
                        (self._next_seq(), scope, key),
                    )
                    self._conn.commit()
                except sqlite3.Error:
                    pass
        return row

    def put(self, scope: str, key: str, value: object) -> None:
        """Store (or replace) *value* under ``(scope, key)``.

        When size bounds are configured, least-recently-used entries are
        evicted until the store fits again.  Contended writes retry
        under the cache's :class:`~repro.resilience.RetryPolicy`;
        persistent contention degrades the instance to memory-only and
        the write lands in the fallback dict instead of failing.
        """
        payload = pickle.dumps(value, protocol=4)
        if not self._degraded:
            try:
                self.retry_policy.call(
                    lambda: self._put_row(scope, key, payload),
                    retry_on=(sqlite3.OperationalError,),
                    should_retry=self._is_contention,
                    before_retry=self._rollback,
                )
            except sqlite3.Error as exc:
                if not self._is_contention(exc):
                    raise EvaluationError(
                        f"evaluation cache write failed ({self.path!r}): {exc}"
                    ) from exc
                self._degrade("put", exc)
            else:
                _DISK_WRITES.inc()
                _logger.debug(
                    "cached %d-byte payload under (%s, %s…)",
                    len(payload),
                    scope,
                    key[:16],
                )
                return
        self._fallback[(scope, key)] = payload

    def _put_row(self, scope: str, key: str, payload: bytes) -> None:
        with self._locked("put"):
            fault_point(
                "cache.write",
                error=sqlite3.OperationalError("database is locked (injected)"),
            )
            self._conn.execute(
                "INSERT OR REPLACE INTO entries "
                "(scope, key, payload, used_seq, size_bytes) "
                "VALUES (?, ?, ?, ?, ?)",
                (scope, key, sqlite3.Binary(payload), self._next_seq(), len(payload)),
            )
            self._trim_locked(self.max_entries, self.max_bytes)
            self._conn.commit()

    # -- maintenance ----------------------------------------------------------

    def stats(self) -> dict:
        """Entry/byte counts, total and per scope (plus the bounds)."""
        if self._degraded:
            scopes: dict[str, dict[str, int]] = {}
            for (scope, _key), payload in self._fallback.items():
                entry = scopes.setdefault(scope, {"entries": 0, "bytes": 0})
                entry["entries"] += 1
                entry["bytes"] += len(payload)
            return {
                "path": self.path,
                "entries": len(self._fallback),
                "bytes": sum(len(p) for p in self._fallback.values()),
                "scopes": dict(sorted(scopes.items())),
                "max_entries": self.max_entries,
                "max_bytes": self.max_bytes,
                "degraded": True,
            }
        with self._locked("stats"):
            try:
                total, total_bytes = self._conn.execute(
                    "SELECT COUNT(*), IFNULL(SUM(size_bytes), 0) FROM entries"
                ).fetchone()
                scopes = {
                    scope: {"entries": count, "bytes": size}
                    for scope, count, size in self._conn.execute(
                        "SELECT scope, COUNT(*), IFNULL(SUM(size_bytes), 0) "
                        "FROM entries GROUP BY scope ORDER BY scope"
                    )
                }
            except sqlite3.Error as exc:
                raise EvaluationError(
                    f"evaluation cache stats failed ({self.path!r}): {exc}"
                ) from exc
        return {
            "path": self.path,
            "entries": int(total),
            "bytes": int(total_bytes),
            "scopes": scopes,
            "max_entries": self.max_entries,
            "max_bytes": self.max_bytes,
            "degraded": self._degraded,
        }

    def purge(
        self, fingerprint: str | None = None, scope: str | None = None
    ) -> int:
        """Delete entries; returns the number removed.

        With *fingerprint*, only entries of that evaluation context are
        removed (keys embed the fingerprint as their first component);
        with *scope*, only that record kind; with neither, everything.
        """
        clauses, params = [], []
        if scope is not None:
            clauses.append("scope = ?")
            params.append(scope)
        if fingerprint is not None:
            clauses.append("key LIKE ?")
            params.append(f"({fingerprint!r},%")
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        with self._locked("purge"):
            try:
                cursor = self._conn.execute(f"DELETE FROM entries{where}", params)
                self._conn.commit()
            except sqlite3.Error as exc:
                raise EvaluationError(
                    f"evaluation cache purge failed ({self.path!r}): {exc}"
                ) from exc
        return cursor.rowcount

    def trim(
        self, max_entries: int | None = None, max_bytes: int | None = None
    ) -> int:
        """Evict least-recently-used entries down to the given bounds.

        Returns the number of entries removed.  Bounds default to the
        cache's configured ones; passing explicit values trims a cache
        opened without bounds.
        """
        max_entries = max_entries if max_entries is not None else self.max_entries
        max_bytes = max_bytes if max_bytes is not None else self.max_bytes
        for bound, name in ((max_entries, "max_entries"), (max_bytes, "max_bytes")):
            if bound is not None and bound < 1:
                raise EvaluationError(f"{name} must be >= 1, got {bound}")
        if max_entries is None and max_bytes is None:
            return 0
        with self._locked("trim"):
            try:
                removed = self._trim_locked(max_entries, max_bytes)
                self._conn.commit()
            except sqlite3.Error as exc:
                raise EvaluationError(
                    f"evaluation cache trim failed ({self.path!r}): {exc}"
                ) from exc
        return removed

    def _trim_locked(
        self, max_entries: int | None, max_bytes: int | None
    ) -> int:
        removed = 0
        if max_entries is not None:
            count = self._conn.execute(
                "SELECT COUNT(*) FROM entries"
            ).fetchone()[0]
            excess = count - max_entries
            if excess > 0:
                cursor = self._conn.execute(
                    "DELETE FROM entries WHERE rowid IN ("
                    "  SELECT rowid FROM entries ORDER BY used_seq ASC LIMIT ?"
                    ")",
                    (excess,),
                )
                removed += cursor.rowcount
        if max_bytes is not None:
            total = self._conn.execute(
                "SELECT IFNULL(SUM(size_bytes), 0) FROM entries"
            ).fetchone()[0]
            if total > max_bytes:
                # One pass over entries by recency: accumulate the excess
                # and delete the least-recently-used prefix in one go,
                # always keeping the most recent entry.
                victims: list[int] = []
                rows = self._conn.execute(
                    "SELECT rowid, size_bytes FROM entries "
                    "ORDER BY used_seq ASC"
                ).fetchall()
                for rowid, size in rows[:-1]:
                    if total <= max_bytes:
                        break
                    victims.append(rowid)
                    total -= size
                if victims:
                    marks = ",".join("?" for _ in victims)
                    cursor = self._conn.execute(
                        f"DELETE FROM entries WHERE rowid IN ({marks})",
                        victims,
                    )
                    removed += cursor.rowcount
        return removed

    def __len__(self) -> int:
        with self._locked("count"):
            return int(
                self._conn.execute("SELECT COUNT(*) FROM entries").fetchone()[0]
            )

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def close(self) -> None:
        """Close the underlying connection (idempotent).

        Any later ``get``/``put``/``stats``/``trim``/``purge`` raises
        :class:`~repro.errors.EvaluationError` instead of a raw
        ``sqlite3.ProgrammingError``.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._conn.close()

    def __enter__(self) -> "PersistentEvaluationCache":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
